"""Workload bench artifact checker: schema, determinism, soak budget.

Run from the repository root (CI's soak-smoke job does)::

    PYTHONPATH=src python tools/check_workload.py

Checks, against the committed ``BENCH_workload.json`` baseline:

1. **Schema** — the artifact (and the freshly regenerated one) carries
   the documented shape: name, schema_version, one case per
   (n_keys, clients) grid point, a soak row, positive counters.
2. **Determinism** — the regenerated run's ``operations``,
   ``completed`` and ``events`` counts match the committed baseline
   *exactly* (simulated executions are machine-independent, so any
   difference is a real behaviour regression, not noise), and the soak
   history is atomic with every register's per-key verdict checked.
3. **Soak budget** — the fresh soak row completes ≥ 10k operations and
   its event loop plus per-key atomicity check stay under
   ``--budget`` wall seconds (default 60).
4. **Throughput drift** — freshly measured ops/sec must not regress
   more than ``--tolerance`` (default 0.40) below the committed
   baseline (skippable on heterogeneous hardware).

Exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_TOP = ("name", "schema_version", "cases", "soak")
REQUIRED_CASE = (
    "n_keys", "clients", "operations", "completed", "events", "wall_s",
    "ops_per_sec",
)
REQUIRED_SOAK = REQUIRED_CASE + ("check_s", "atomic", "keys_checked")

MIN_SOAK_OPS = 10_000


def check_schema(payload: dict, label: str) -> list:
    problems = []
    for key in REQUIRED_TOP:
        if key not in payload:
            problems.append(f"{label}: missing top-level key {key!r}")
    if problems:
        return problems
    if payload["name"] != "workload":
        problems.append(f"{label}: name is {payload['name']!r}")
    for case in payload["cases"]:
        for key in REQUIRED_CASE:
            if key not in case:
                problems.append(f"{label}: case missing {key!r}: {case}")
                break
        else:
            if case["operations"] <= 0 or case["ops_per_sec"] <= 0:
                problems.append(f"{label}: non-positive counters in {case}")
    soak = payload["soak"]
    for key in REQUIRED_SOAK:
        if key not in soak:
            problems.append(f"{label}: soak missing {key!r}")
    if not problems:
        if soak["operations"] < MIN_SOAK_OPS:
            problems.append(
                f"{label}: soak ran {soak['operations']} ops "
                f"(< {MIN_SOAK_OPS})"
            )
        if not soak["atomic"]:
            problems.append(f"{label}: soak history is NOT atomic")
        if soak["keys_checked"] != soak["n_keys"]:
            problems.append(
                f"{label}: soak checked {soak['keys_checked']} of "
                f"{soak['n_keys']} registers"
            )
    return problems


def case_index(payload: dict) -> dict:
    return {(c["n_keys"], c["clients"]): c for c in payload["cases"]}


def check_determinism(baseline: dict, fresh: dict) -> list:
    problems = []
    base, new = case_index(baseline), case_index(fresh)
    if set(base) != set(new):
        problems.append(
            f"case grid changed: baseline {sorted(set(base) - set(new))} "
            f"only / fresh {sorted(set(new) - set(base))} only"
        )
        return problems
    rows = [((key, base[key], new[key])) for key in sorted(base)]
    rows.append((("soak",), baseline["soak"], fresh["soak"]))
    for key, committed, measured in rows:
        for field in ("operations", "completed", "events"):
            if measured[field] != committed[field]:
                problems.append(
                    f"{key}: {field} changed "
                    f"{committed[field]} -> {measured[field]} "
                    f"(simulated executions are deterministic; this is "
                    f"a behaviour regression, not noise)"
                )
    return problems


def check_budget(fresh: dict, budget: float) -> list:
    soak = fresh["soak"]
    spent = soak["wall_s"] + soak["check_s"]
    if spent > budget:
        return [
            f"soak blew the wall-clock budget: {spent:.2f}s "
            f"(execute {soak['wall_s']}s + check {soak['check_s']}s) "
            f"> {budget}s"
        ]
    return []


def check_drift(baseline: dict, fresh: dict, tolerance: float) -> list:
    problems = []
    base, new = case_index(baseline), case_index(fresh)
    for key in sorted(set(base) & set(new)):
        committed = base[key]["ops_per_sec"]
        measured = new[key]["ops_per_sec"]
        if measured < committed * (1.0 - tolerance):
            problems.append(
                f"{key}: ops/sec regressed {committed} -> {measured} "
                f"(more than {tolerance:.0%} below baseline)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_workload.json",
        help="committed artifact (default: BENCH_workload.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-generated fresh artifact; omitted = regenerate now",
    )
    parser.add_argument(
        "--budget", type=float, default=60.0,
        help="soak wall-clock budget in seconds (default 60)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed fractional ops/sec regression (default 0.40)",
    )
    parser.add_argument(
        "--skip-drift", action="store_true",
        help="skip the wall-clock drift check (heterogeneous hardware)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"FAIL: baseline {baseline_path} does not exist")
        return 1
    baseline = json.loads(baseline_path.read_text())

    if args.fresh is not None:
        fresh = json.loads(Path(args.fresh).read_text())
    else:
        # Running as `python tools/check_workload.py` puts tools/ first
        # on sys.path; the bench package lives at the repository root.
        root = str(Path(__file__).resolve().parent.parent)
        if root not in sys.path:
            sys.path.insert(0, root)
        from benchmarks.bench_workload import collect

        fresh = collect()

    problems = []
    problems += check_schema(baseline, "baseline")
    problems += check_schema(fresh, "fresh")
    if not problems:
        problems += check_determinism(baseline, fresh)
        problems += check_budget(fresh, args.budget)
        if not args.skip_drift:
            problems += check_drift(baseline, fresh, args.tolerance)

    if problems:
        print(f"FAIL: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    soak = fresh["soak"]
    print(
        f"ok: schema valid, executions deterministic, soak "
        f"{soak['completed']} ops atomic across {soak['keys_checked']} "
        f"registers in {soak['wall_s'] + soak['check_s']:.2f}s "
        f"(budget {args.budget}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
