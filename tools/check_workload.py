"""Workload bench artifact checker: schema, determinism, soak budgets.

Run from the repository root (CI's soak-smoke job does)::

    PYTHONPATH=src python tools/check_workload.py

Checks, against the committed ``BENCH_workload.json`` baseline:

1. **Schema** — the artifact (and the freshly regenerated one) carries
   the documented shape: name, schema_version, one case per
   (n_keys, clients) grid point, a closed-loop soak row, a ``stream``
   section of horizon-free rows, positive counters.
2. **Determinism** — the regenerated grid/soak/stream ``operations``,
   ``completed`` and ``events`` counts match the committed baseline
   *exactly* (simulated executions are machine-independent, so any
   difference is a real behaviour regression, not noise), the soak is
   online-checked atomic on every register, and every stream row's
   windowed verdict is atomic.  Stream rows are keyed by
   ``(label, max_ops)`` — the labelled families are the ABD baseline
   (``abd-sw``), bounded-history RQS (``rqs-bounded``), multi-writer
   ABD (``abd-mw``) and the batched hot path (``abd-sw-batched``,
   ``batch_size=16``); each row must report the checker mode its writer
   count demands (``sw`` vs ``mw``), carry its family's ``batch_size``,
   and bounded-history rows must report garbage collection actually
   happening with the server-side retained-cell high-water mark under
   the flat-memory cap.  The **batch speedup gate** requires, at every
   size both families record, the batched family to process ≥5× fewer
   simulated events than ``abd-sw`` (deterministic, held strictly on
   baseline and fresh) and its ops/sec (quoted on simulator-only
   ``execute_seconds``) to beat the baseline's by ≥5× in the committed
   artifact — the fresh run's wall-clock form of the ratio is derated
   by ``--tolerance`` like every other single-shot timing here.
3. **Budgets** — the fresh closed soak stays under ``--budget`` wall
   seconds; the fresh stream rows stay under ``--stream-budget``
   seconds each (scaled: a row's budget is proportional to its op
   count — full budget at one million ops — times its family's
   relative cost; RQS predicate evaluation is ~4× ABD).
4. **Memory** — the committed stream section proves sublinear memory
   *per family*: each million-op row's peak RSS must be below
   ``--rss-ratio`` × its family's 100k row (10× the ops, bounded extra
   resident memory), and below ``--rss-cap`` KiB absolutely.  The
   windowed checker's retained-state high-water mark must stay under
   10k entries on every row.
5. **Throughput drift** — freshly measured ops/sec must not regress
   more than ``--tolerance`` (default 0.40) below the committed
   baseline (skippable on heterogeneous hardware).
6. **Sharded scaling** (schema v5) — the ``sharded`` section's rows
   (the batched soak through the multi-process shard engine, keyed by
   ``(shards, max_ops)``) must be online-atomic with exact
   deterministic counters, every size recording both a ``shards=1``
   reference and a ``shards>=4`` row must show the sharded row's
   ``capacity_ops_per_sec`` (Σ per-shard completed/CPU-seconds —
   timesharing-immune, so the gate holds on 1-core runners) at
   ≥3× the reference (strict on the committed artifact, tolerance-
   derated fresh), per-shard peak RSS must stay under the same
   absolute cap and flat versus the shards=1 row, and the committed
   baseline must include the 1e7-op acceptance rows at shards=1 and
   shards≥4.  ``--sharded-only`` regenerates and gates just this
   section (CI's shard-smoke job).
7. **Skew balance** (schema v6) — the ``sharded_zipf`` section's rows
   (the batched soak under a zipfian ``skew=1.2`` draw, keyed by
   ``(shards, duration)`` — duration-bounded, since an op budget is
   split evenly across shards and would pin the balance figure at 1.0
   by fiat) must be online-atomic with exact deterministic counters;
   every ``shards>=2`` row must hold ``imbalance`` (max/mean completed
   ops per shard, from the weighted LPT key partition) at
   ≤ :data:`MAX_SHARD_IMBALANCE`, and every duration recording both a
   ``shards=1`` reference and a ``shards>=4`` row must show capacity
   ≥ :data:`MIN_ZIPF_CAPACITY_SPEEDUP` × the *zipfian* reference —
   near-linear scaling surviving hot-key contention, not just the
   uniform draw.  ``--sharded-only`` regenerates and gates this
   section too.

CI regenerates the grid, the soak and the 100k stream rows; the
million-op rows are recorded by full local runs
(``python -m benchmarks.bench_workload --full-stream``) and validated
here from the committed artifact.  Exits non-zero listing every
violation.
"""

from __future__ import annotations

import argparse
import sys

from _gate import (
    determinism_problems,
    drift_problems,
    finish,
    load_baseline,
    load_fresh,
    missing_case_keys,
    missing_keys,
    repo_root_on_path,
)

REQUIRED_TOP = (
    "name", "schema_version", "cases", "soak", "stream", "sharded",
    "sharded_zipf",
)
REQUIRED_CASE = (
    "n_keys", "clients", "operations", "completed", "events",
    "execute_seconds", "wall_s", "ops_per_sec",
)
REQUIRED_SOAK = REQUIRED_CASE + ("atomic", "keys_checked")
REQUIRED_STREAM = REQUIRED_CASE + (
    "label", "protocol", "n_writers", "bounded_history", "batch_size",
    "checker_mode", "max_ops", "atomic", "violations", "keys_checked",
    "checker_max_retained", "server_max_retained_cells",
    "server_gc_removed_cells", "peak_rss_kb",
)

MIN_SOAK_OPS = 10_000
#: The acceptance rows: million-op horizon-free soaks must be recorded.
FULL_STREAM_OPS = 1_000_000
#: Bounded online-checker state, whatever the op count.
MAX_CHECKER_RETAINED = 10_000
#: Bounded server-side history cells on bounded-history rows — the
#: flat-memory claim is ~O(servers × keys × rounds), far below this.
MAX_SERVER_RETAINED = 20_000

#: The stream families the artifact must carry.  ``full_row`` marks
#: families whose million-op acceptance row is required in the
#: committed baseline; ``budget_scale`` is the family's wall-clock cost
#: relative to the ABD baseline (RQS evaluates quorum predicates per
#: round; MW writes add a discovery round).
STREAM_LABELS = {
    "abd-sw": {"full_row": True, "budget_scale": 1.0, "batch_size": 1},
    "rqs-bounded": {"full_row": True, "budget_scale": 4.0, "batch_size": 1},
    "abd-mw": {"full_row": False, "budget_scale": 2.0, "batch_size": 1},
    "abd-sw-batched": {
        "full_row": True, "budget_scale": 1.0, "batch_size": 16,
    },
}

#: The tentpole exhibit: the batched family must beat the unbatched
#: abd-sw baseline by at least this ops/sec factor at equal sizes.
MIN_BATCH_SPEEDUP = 5.0
BATCHED_LABEL = "abd-sw-batched"
UNBATCHED_LABEL = "abd-sw"

REQUIRED_SHARDED = (
    "shards", "max_ops", "protocol", "batch_size", "n_keys", "clients",
    "workers", "operations", "completed", "events", "execute_seconds",
    "cpu_seconds", "wall_s", "ops_per_sec", "capacity_ops_per_sec",
    "atomic", "violations", "keys_checked", "checker_mode",
    "shard_rss_kb", "max_shard_rss_kb",
)

REQUIRED_ZIPF = (
    "shards", "duration", "protocol", "distribution", "skew",
    "batch_size", "n_keys", "clients", "workers", "operations",
    "completed", "events", "execute_seconds", "cpu_seconds", "wall_s",
    "ops_per_sec", "capacity_ops_per_sec", "imbalance", "atomic",
    "violations", "keys_checked", "checker_mode", "shard_rss_kb",
    "max_shard_rss_kb",
)

#: The skew-balance gate: a zipfian row's per-shard completed-ops
#: imbalance (max/mean) may not exceed this — the weighted LPT key
#: partition's balance budget at skew 1.2 (a crc32 partition of the
#: same draw sits at ~1.8 expected load).
MAX_SHARD_IMBALANCE = 1.3
#: The zipfian capacity gate: the >=4-shard zipfian row must sustain at
#: least this multiple of the zipfian shards=1 reference's capacity —
#: lower than the uniform gate's 3.0 because the hot shard is the
#: critical path even when balanced to <=1.3.
MIN_ZIPF_CAPACITY_SPEEDUP = 2.5

#: The sharded acceptance rows: the committed baseline must record the
#: ten-million-op soak both unsharded and through the shard fleet.
FULL_SHARDED_OPS = 10_000_000
#: The sharded-engine gate: at every size with both a shards=1 row and
#: a shards>=4 row, the fleet's summed capacity (Σ completed /
#: cpu_seconds — timesharing-immune, so the gate holds on 1-core
#: runners) must be at least this multiple of the unsharded row's.
MIN_SHARD_CAPACITY_SPEEDUP = 3.0
#: Sharded rows ride the batched abd-sw family → same relative cost.
SHARDED_BUDGET_SCALE = 1.0


def check_schema(payload: dict, label: str, full_baseline: bool) -> list:
    problems = missing_keys(payload, REQUIRED_TOP, label)
    if problems:
        return problems
    if payload["name"] != "workload":
        problems.append(f"{label}: name is {payload['name']!r}")
    for case in payload["cases"]:
        case_problems = missing_case_keys(case, REQUIRED_CASE, label)
        problems += case_problems
        if not case_problems and (
            case["operations"] <= 0 or case["ops_per_sec"] <= 0
        ):
            problems.append(f"{label}: non-positive counters in {case}")
    soak = payload["soak"]
    problems += missing_case_keys(soak, REQUIRED_SOAK, label)
    if not problems:
        if soak["operations"] < MIN_SOAK_OPS:
            problems.append(
                f"{label}: soak ran {soak['operations']} ops "
                f"(< {MIN_SOAK_OPS})"
            )
        if not soak["atomic"]:
            problems.append(f"{label}: soak history is NOT atomic")
        if soak["keys_checked"] != soak["n_keys"]:
            problems.append(
                f"{label}: soak checked {soak['keys_checked']} of "
                f"{soak['n_keys']} registers"
            )
    for row in payload["stream"]:
        row_problems = missing_case_keys(row, REQUIRED_STREAM, label)
        problems += row_problems
        if row_problems:
            continue
        where = f"stream row {row.get('label')}/{row['max_ops']}"
        if row.get("label") not in STREAM_LABELS:
            problems.append(
                f"{label}: {where} has unknown label "
                f"(expected one of {sorted(STREAM_LABELS)})"
            )
            continue
        if not row["atomic"] or row["violations"]:
            problems.append(
                f"{label}: {where} is NOT "
                f"atomic ({row['violations']} violations)"
            )
        if row["checker_max_retained"] > MAX_CHECKER_RETAINED:
            problems.append(
                f"{label}: {where} retained "
                f"{row['checker_max_retained']} checker entries "
                f"(> {MAX_CHECKER_RETAINED}; the window is not bounded)"
            )
        # The checker mode the writer count demands: multi-writer rows
        # must carry the stamp-ordered MW verdict, single-writer rows
        # the SW one — "mw" on a 1-writer row would mean the runner
        # silently lost the cheaper checker.
        expected_mode = "mw" if row["n_writers"] > 1 else "sw"
        if row["checker_mode"] != expected_mode:
            problems.append(
                f"{label}: {where} ran checker_mode="
                f"{row['checker_mode']!r} with {row['n_writers']} "
                f"writer(s) (expected {expected_mode!r})"
            )
        expected_batch = STREAM_LABELS[row["label"]]["batch_size"]
        if row["batch_size"] != expected_batch:
            problems.append(
                f"{label}: {where} ran batch_size={row['batch_size']} "
                f"(family records {expected_batch})"
            )
        if row["bounded_history"]:
            if row["server_gc_removed_cells"] <= 0:
                problems.append(
                    f"{label}: {where} claims bounded_history but "
                    f"GC'd 0 server cells (the knob is not wired)"
                )
            if row["server_max_retained_cells"] > MAX_SERVER_RETAINED:
                problems.append(
                    f"{label}: {where} retained "
                    f"{row['server_max_retained_cells']} server history "
                    f"cells (> {MAX_SERVER_RETAINED}; server memory is "
                    f"not flat)"
                )
    if full_baseline:
        seen = {
            (row.get("label"), row["max_ops"]) for row in payload["stream"]
        }
        for family, meta in STREAM_LABELS.items():
            if meta["full_row"] and (family, FULL_STREAM_OPS) not in seen:
                problems.append(
                    f"{label}: stream section lacks the {family} "
                    f"{FULL_STREAM_OPS}-op acceptance row (record it with "
                    f"`python -m benchmarks.bench_workload --full-stream`)"
                )
    problems += check_sharded_schema(
        payload["sharded"], label, full_baseline
    )
    problems += check_zipf_schema(payload["sharded_zipf"], label)
    return problems


def check_zipf_schema(rows: list, label: str) -> list:
    """Shape + correctness invariants of the ``sharded_zipf`` section.

    Beyond the sharded section's invariants (atomic, sw-checked, every
    register checked, per-shard RSS accounted), every row must carry
    the zipfian family fields, and the **skew-balance gate** holds:
    a ``shards>=2`` row's ``imbalance`` stays at or under
    :data:`MAX_SHARD_IMBALANCE` (the shards=1 reference is trivially
    1.0).  Rows are duration-bounded, so ``completed`` is checked
    positive rather than against an op budget.
    """
    problems = []
    for row in rows:
        row_problems = missing_case_keys(row, REQUIRED_ZIPF, label)
        problems += row_problems
        if row_problems:
            continue
        where = f"sharded_zipf row {row['shards']}x{row['duration']}"
        if row["distribution"] != "zipfian" or row["skew"] <= 0:
            problems.append(
                f"{label}: {where} is not a zipfian cell "
                f"(distribution={row['distribution']!r}, "
                f"skew={row['skew']})"
            )
        if row["completed"] <= 0 or row["operations"] <= 0:
            problems.append(
                f"{label}: {where} completed no operations"
            )
        if not row["atomic"] or row["violations"]:
            problems.append(
                f"{label}: {where} is NOT atomic "
                f"({row['violations']} violations)"
            )
        if row["checker_mode"] != "sw":
            problems.append(
                f"{label}: {where} ran checker_mode="
                f"{row['checker_mode']!r} (single-writer soak "
                f"expects 'sw')"
            )
        if row["keys_checked"] != row["n_keys"]:
            problems.append(
                f"{label}: {where} checked {row['keys_checked']} of "
                f"{row['n_keys']} registers"
            )
        if len(row["shard_rss_kb"]) != row["shards"]:
            problems.append(
                f"{label}: {where} reports {len(row['shard_rss_kb'])} "
                f"per-shard RSS peaks for {row['shards']} shard(s)"
            )
        elif row["max_shard_rss_kb"] != max(row["shard_rss_kb"]):
            problems.append(
                f"{label}: {where} max_shard_rss_kb="
                f"{row['max_shard_rss_kb']} is not the max of "
                f"shard_rss_kb={row['shard_rss_kb']}"
            )
        if row["capacity_ops_per_sec"] <= 0 or row["workers"] < 1:
            problems.append(
                f"{label}: {where} has non-positive capacity/workers"
            )
        if row["imbalance"] < 1.0:
            problems.append(
                f"{label}: {where} reports imbalance="
                f"{row['imbalance']} (max/mean cannot be < 1)"
            )
        if row["shards"] >= 2 and row["imbalance"] > MAX_SHARD_IMBALANCE:
            problems.append(
                f"{label}: {where} holds imbalance={row['imbalance']} "
                f"(> {MAX_SHARD_IMBALANCE}; the weighted partition is "
                f"not balancing the zipfian draw)"
            )
    return problems


def check_sharded_schema(
    rows: list, label: str, full_baseline: bool
) -> list:
    """Shape + correctness invariants of the ``sharded`` section.

    Every row — sharded or the shards=1 reference — ran the same
    deterministic batched soak, so the online verdict must be atomic
    with zero violations under the single-writer checker, the op
    budget must be met exactly, and the per-shard RSS list must carry
    one worker-measured peak per shard with ``max_shard_rss_kb`` its
    maximum.  The committed baseline must additionally record the
    :data:`FULL_SHARDED_OPS` acceptance rows at shards=1 and
    shards>=4 (a full run's output, like the million-op stream rows).
    """
    problems = []
    for row in rows:
        row_problems = missing_case_keys(row, REQUIRED_SHARDED, label)
        problems += row_problems
        if row_problems:
            continue
        where = f"sharded row {row['shards']}x{row['max_ops']}"
        if row["completed"] != row["max_ops"] or row["operations"] <= 0:
            problems.append(
                f"{label}: {where} completed {row['completed']} of "
                f"{row['max_ops']} budgeted ops"
            )
        if not row["atomic"] or row["violations"]:
            problems.append(
                f"{label}: {where} is NOT atomic "
                f"({row['violations']} violations)"
            )
        if row["checker_mode"] != "sw":
            problems.append(
                f"{label}: {where} ran checker_mode="
                f"{row['checker_mode']!r} (single-writer soak "
                f"expects 'sw')"
            )
        if row["keys_checked"] != row["n_keys"]:
            problems.append(
                f"{label}: {where} checked {row['keys_checked']} of "
                f"{row['n_keys']} registers"
            )
        if len(row["shard_rss_kb"]) != row["shards"]:
            problems.append(
                f"{label}: {where} reports {len(row['shard_rss_kb'])} "
                f"per-shard RSS peaks for {row['shards']} shard(s)"
            )
        elif row["max_shard_rss_kb"] != max(row["shard_rss_kb"]):
            problems.append(
                f"{label}: {where} max_shard_rss_kb="
                f"{row['max_shard_rss_kb']} is not the max of "
                f"shard_rss_kb={row['shard_rss_kb']}"
            )
        if row["capacity_ops_per_sec"] <= 0 or row["workers"] < 1:
            problems.append(
                f"{label}: {where} has non-positive capacity/workers"
            )
    if full_baseline:
        seen_one = {
            row["max_ops"] for row in rows
            if "max_ops" in row and row.get("shards") == 1
        }
        seen_fleet = {
            row["max_ops"] for row in rows
            if "max_ops" in row and row.get("shards", 0) >= 4
        }
        if FULL_SHARDED_OPS not in (seen_one & seen_fleet):
            problems.append(
                f"{label}: sharded section lacks the {FULL_SHARDED_OPS}-op "
                f"acceptance rows at shards=1 and shards>=4 (record them "
                f"with `python -m benchmarks.bench_workload --full-stream`)"
            )
    return problems


def case_index(payload: dict) -> dict:
    return {(c["n_keys"], c["clients"]): c for c in payload["cases"]}


def stream_index(payload: dict) -> dict:
    return {(r["label"], r["max_ops"]): r for r in payload["stream"]}


def sharded_index(rows: list) -> dict:
    return {(r["shards"], r["max_ops"]): r for r in rows}


def zipf_index(rows: list) -> dict:
    return {(r["shards"], r["duration"]): r for r in rows}


def check_determinism(baseline: dict, fresh: dict) -> list:
    problems = determinism_problems(
        case_index(baseline), case_index(fresh),
        ("operations", "completed", "events"),
    )
    problems += determinism_problems(
        {("soak",): baseline["soak"]}, {("soak",): fresh["soak"]},
        ("operations", "completed", "events"),
    )
    # Stream rows compare only where both sides measured the same size
    # (CI regenerates the small row; the million-op row is baseline-only).
    base, new = stream_index(baseline), stream_index(fresh)
    shared = set(base) & set(new)
    problems += determinism_problems(
        {k: base[k] for k in shared}, {k: new[k] for k in shared},
        ("operations", "completed", "events"),
    )
    problems += check_sharded_determinism(
        baseline["sharded"], fresh["sharded"]
    )
    problems += check_zipf_determinism(
        baseline["sharded_zipf"], fresh["sharded_zipf"]
    )
    return problems


def check_sharded_determinism(base_rows: list, fresh_rows: list) -> list:
    """Sharded counters are exact: the shard partition is a fixed
    function of the spec seed, so op/event counts must reproduce bit
    for bit on every (shards, max_ops) point both sides measured."""
    base, new = sharded_index(base_rows), sharded_index(fresh_rows)
    shared = set(base) & set(new)
    return determinism_problems(
        {k: base[k] for k in shared}, {k: new[k] for k in shared},
        ("operations", "completed", "events"),
    )


def check_zipf_determinism(base_rows: list, fresh_rows: list) -> list:
    """Zipfian counters are exact too: duration-bounding cuts the same
    seeded schedule at the same simulated instant everywhere, and the
    imbalance figure is a pure function of the per-shard counts."""
    base, new = zipf_index(base_rows), zipf_index(fresh_rows)
    shared = set(base) & set(new)
    return determinism_problems(
        {k: base[k] for k in shared}, {k: new[k] for k in shared},
        ("operations", "completed", "events", "imbalance"),
    )


def check_zipf_scaling(
    rows: list, label: str, tolerance: float = 0.0
) -> list:
    """The zipfian capacity gate: at every duration recording both a
    shards=1 reference and a shards>=4 fleet row, the fleet's
    ``capacity_ops_per_sec`` must be at least
    :data:`MIN_ZIPF_CAPACITY_SPEEDUP` × the zipfian reference's —
    the near-linear-scaling claim held under hot-key contention, not
    just the uniform draw."""
    index = zipf_index(rows)
    problems = []
    compared = 0
    need = MIN_ZIPF_CAPACITY_SPEEDUP * (1.0 - tolerance)
    for (shards, duration), fleet in index.items():
        if shards < 4:
            continue
        reference = index.get((1, duration))
        if reference is None:
            continue
        compared += 1
        ratio = (
            fleet["capacity_ops_per_sec"]
            / reference["capacity_ops_per_sec"]
        )
        if ratio < need:
            problems.append(
                f"{label}: sharded_zipf row {shards}x{duration} sustains "
                f"only {ratio:.2f}x the shards=1 zipfian capacity "
                f"({fleet['capacity_ops_per_sec']} vs "
                f"{reference['capacity_ops_per_sec']} ops/s; "
                f"need >= {need:.2f}x)"
            )
    if compared == 0:
        problems.append(
            f"{label}: no duration has both shards=1 and shards>=4 "
            f"sharded_zipf rows — the zipf capacity gate cannot run"
        )
    return problems


def check_zipf_budgets(fresh_rows: list, stream_budget: float) -> list:
    """Fresh zipfian rows obey the stream-row wall-clock formula,
    scaled by *completed* ops (duration-bounded rows carry no op
    budget; the deterministic completed count is the same size
    figure)."""
    problems = []
    for row in fresh_rows:
        row_budget = (
            stream_budget * SHARDED_BUDGET_SCALE
            * row["completed"] / FULL_STREAM_OPS
        )
        if row["wall_s"] > row_budget:
            problems.append(
                f"sharded_zipf row {row['shards']}x{row['duration']} "
                f"blew its budget: {row['wall_s']}s > {row_budget:.1f}s"
            )
    return problems


def check_zipf_memory(
    base_rows: list, fresh_rows: list, rss_cap: int
) -> list:
    """Every zipfian row's per-shard peak obeys the same absolute cap
    as a stream row (both committed and fresh; there is only one
    recorded duration, so no cross-size flatness check here)."""
    problems = []
    for label, rows in (("baseline", base_rows), ("fresh", fresh_rows)):
        for row in rows:
            if row["max_shard_rss_kb"] > rss_cap:
                problems.append(
                    f"{label} sharded_zipf row "
                    f"{row['shards']}x{row['duration']} peaked at "
                    f"{row['max_shard_rss_kb']} KiB per shard "
                    f"(> cap {rss_cap})"
                )
    return problems


def check_sharded_scaling(
    rows: list, label: str, tolerance: float = 0.0
) -> list:
    """The sharded-engine gate: at every op budget recording both a
    shards=1 reference and a shards>=4 fleet row, the fleet's
    ``capacity_ops_per_sec`` must be at least
    :data:`MIN_SHARD_CAPACITY_SPEEDUP` × the reference's — strict on
    the committed artifact (recorded by one unloaded full run), derated
    by ``tolerance`` on the fresh regeneration like every other
    single-shot timing here."""
    index = sharded_index(rows)
    problems = []
    compared = 0
    need = MIN_SHARD_CAPACITY_SPEEDUP * (1.0 - tolerance)
    for (shards, size), fleet in index.items():
        if shards < 4:
            continue
        reference = index.get((1, size))
        if reference is None:
            continue
        compared += 1
        ratio = (
            fleet["capacity_ops_per_sec"]
            / reference["capacity_ops_per_sec"]
        )
        if ratio < need:
            problems.append(
                f"{label}: sharded row {shards}x{size} sustains only "
                f"{ratio:.2f}x the shards=1 capacity "
                f"({fleet['capacity_ops_per_sec']} vs "
                f"{reference['capacity_ops_per_sec']} ops/s; "
                f"need >= {need:.2f}x)"
            )
    if compared == 0:
        problems.append(
            f"{label}: no op budget has both shards=1 and shards>=4 "
            f"rows — the shard capacity gate cannot run"
        )
    return problems


def check_sharded_memory(
    base_rows: list, fresh_rows: list, rss_ratio: float, rss_cap: int
) -> list:
    """Per-shard peak RSS acceptance: each worker simulates only its
    key slice, so every shard's peak obeys the same absolute cap as a
    stream row, a fleet row's per-shard peak stays within
    ``rss_ratio`` × the same-size shards=1 reference, and (on the
    committed sizes) within ``rss_ratio`` of the same fleet at 100×
    fewer ops — flat per-shard memory in the op budget."""
    base, fresh = sharded_index(base_rows), sharded_index(fresh_rows)
    problems = []
    for label, index in (("baseline", base), ("fresh", fresh)):
        for (shards, size), row in index.items():
            if row["max_shard_rss_kb"] > rss_cap:
                problems.append(
                    f"{label} sharded row {shards}x{size} peaked at "
                    f"{row['max_shard_rss_kb']} KiB per shard "
                    f"(> cap {rss_cap})"
                )
            reference = index.get((1, size))
            if shards > 1 and reference is not None:
                allowed = reference["max_shard_rss_kb"] * rss_ratio
                if row["max_shard_rss_kb"] > allowed:
                    problems.append(
                        f"{label} sharded row {shards}x{size}: per-shard "
                        f"peak {row['max_shard_rss_kb']} KiB exceeds "
                        f"{rss_ratio} x the shards=1 row "
                        f"({reference['max_shard_rss_kb']} KiB)"
                    )
    sizes = sorted({size for (_, size) in base})
    if len(sizes) > 1:
        small_size, big_size = sizes[0], sizes[-1]
        for (shards, size), big in base.items():
            if size != big_size or shards < 2:
                continue
            small = base.get((shards, small_size))
            if small is None:
                continue
            allowed = small["max_shard_rss_kb"] * rss_ratio
            if big["max_shard_rss_kb"] > allowed:
                problems.append(
                    f"sharded memory is not flat: {shards} shards at "
                    f"{big_size} ops peaked at {big['max_shard_rss_kb']} "
                    f"KiB/shard vs {small['max_shard_rss_kb']} KiB at "
                    f"{small_size} ops (> ratio {rss_ratio})"
                )
    return problems


def check_sharded_budgets(fresh_rows: list, stream_budget: float) -> list:
    """Fresh sharded rows obey the stream-row wall-clock formula (the
    batched family's scale, proportional to op count).  On a 1-core
    host the fleet timeshares, so no extra headroom per shard."""
    problems = []
    for row in fresh_rows:
        row_budget = (
            stream_budget * SHARDED_BUDGET_SCALE
            * row["max_ops"] / FULL_STREAM_OPS
        )
        if row["wall_s"] > row_budget:
            problems.append(
                f"sharded row {row['shards']}x{row['max_ops']} blew its "
                f"budget: {row['wall_s']}s > {row_budget:.1f}s"
            )
    return problems


def check_batch_speedup(
    payload: dict, label: str, tolerance: float = 0.0
) -> list:
    """The tentpole gate, at every size both families recorded:

    - the batched row must process ≥ :data:`MIN_BATCH_SPEEDUP` × fewer
      simulated **events** than the unbatched baseline — the
      machine-independent form of the claim (event counts are
      deterministic), always held strictly;
    - the batched row's **ops/sec** (quoted on simulator-only
      ``execute_seconds``) must be ≥ :data:`MIN_BATCH_SPEEDUP` × the
      unbatched baseline's, derated by ``tolerance`` — pass 0 for the
      committed artifact (both rows recorded by one unloaded full run)
      and the drift tolerance for the fresh regeneration, whose
      single-shot wall clocks are noisy like every other wall-clock
      check here.
    """
    rows = stream_index(payload)
    problems = []
    compared = 0
    min_measured = MIN_BATCH_SPEEDUP * (1.0 - tolerance)
    for (family, size), batched in rows.items():
        if family != BATCHED_LABEL:
            continue
        plain = rows.get((UNBATCHED_LABEL, size))
        if plain is None:
            continue
        compared += 1
        event_ratio = plain["events"] / batched["events"]
        if event_ratio < MIN_BATCH_SPEEDUP:
            problems.append(
                f"{label}: batched stream row {BATCHED_LABEL}/{size} "
                f"processes only {event_ratio:.2f}x fewer events than "
                f"{UNBATCHED_LABEL} ({batched['events']} vs "
                f"{plain['events']}; need >= {MIN_BATCH_SPEEDUP}x)"
            )
        ratio = batched["ops_per_sec"] / plain["ops_per_sec"]
        if ratio < min_measured:
            problems.append(
                f"{label}: batched stream row {BATCHED_LABEL}/{size} is "
                f"only {ratio:.2f}x the {UNBATCHED_LABEL} baseline "
                f"({batched['ops_per_sec']} vs {plain['ops_per_sec']} "
                f"ops/s; need >= {min_measured:.2f}x)"
            )
    if compared == 0:
        problems.append(
            f"{label}: no size has both {BATCHED_LABEL} and "
            f"{UNBATCHED_LABEL} stream rows — the batch speedup gate "
            f"cannot run"
        )
    return problems


def check_budgets(
    fresh: dict, budget: float, stream_budget: float
) -> list:
    problems = []
    soak = fresh["soak"]
    # The online checker runs inline, so wall_s is execute + check.
    if soak["wall_s"] > budget:
        problems.append(
            f"soak blew the wall-clock budget: {soak['wall_s']:.2f}s "
            f"> {budget}s"
        )
    for row in fresh["stream"]:
        scale = STREAM_LABELS[row["label"]]["budget_scale"]
        row_budget = stream_budget * scale * row["max_ops"] / FULL_STREAM_OPS
        if row["wall_s"] > row_budget:
            problems.append(
                f"stream row {row['label']}/{row['max_ops']} blew its "
                f"budget: {row['wall_s']}s > {row_budget:.1f}s"
            )
    return problems


def check_memory(
    baseline: dict, fresh: dict, rss_ratio: float, rss_cap: int
) -> list:
    """Peak-RSS acceptance: absolute caps on committed *and freshly
    measured* rows, per-family sublinearity across the committed sizes,
    and no regression of a fresh row beyond ``rss_ratio`` × its
    committed counterpart — so CI catches a memory regression the
    moment a regenerated 100k row balloons, not only at the next full
    run."""
    base_rows, fresh_rows = stream_index(baseline), stream_index(fresh)
    problems = []
    for label, rows in (("baseline", base_rows), ("fresh", fresh_rows)):
        for (family, size), row in rows.items():
            if row["peak_rss_kb"] > rss_cap:
                problems.append(
                    f"{label} stream row {family}/{size} peaked "
                    f"at {row['peak_rss_kb']} KiB RSS (> cap {rss_cap})"
                )
    for family in STREAM_LABELS:
        small = base_rows.get((family, 100_000))
        big = base_rows.get((family, FULL_STREAM_OPS))
        if small and big:
            allowed = small["peak_rss_kb"] * rss_ratio
            if big["peak_rss_kb"] > allowed:
                problems.append(
                    f"{family} memory is not sublinear: {FULL_STREAM_OPS} "
                    f"ops peaked at {big['peak_rss_kb']} KiB vs "
                    f"{small['peak_rss_kb']} KiB at 100k ops "
                    f"(> ratio {rss_ratio})"
                )
    for key in sorted(set(base_rows) & set(fresh_rows)):
        committed = base_rows[key]["peak_rss_kb"]
        measured = fresh_rows[key]["peak_rss_kb"]
        if measured > committed * rss_ratio:
            problems.append(
                f"stream row {key[0]}/{key[1]} peak RSS regressed: "
                f"{committed} -> {measured} KiB (> ratio {rss_ratio})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_workload.json",
        help="committed artifact (default: BENCH_workload.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-generated fresh artifact; omitted = regenerate now",
    )
    parser.add_argument(
        "--budget", type=float, default=60.0,
        help="closed-soak wall-clock budget in seconds (default 60)",
    )
    parser.add_argument(
        "--stream-budget", type=float, default=300.0,
        help="wall-clock budget for a million-op stream row, scaled "
             "down proportionally for smaller rows (default 300)",
    )
    parser.add_argument(
        "--rss-ratio", type=float, default=2.0,
        help="max allowed peak-RSS ratio of the 1e6-op row over the "
             "1e5-op row (default 2.0; sublinear memory)",
    )
    parser.add_argument(
        "--rss-cap", type=int, default=262_144,
        help="absolute peak-RSS cap per stream row in KiB (default 256Mi)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed fractional ops/sec regression (default 0.40)",
    )
    parser.add_argument(
        "--skip-drift", action="store_true",
        help="skip the wall-clock drift check (heterogeneous hardware)",
    )
    parser.add_argument(
        "--sharded-only", action="store_true",
        help="regenerate and gate only the sharded section (CI's "
             "shard-smoke job); the baseline is still the full artifact",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"FAIL: baseline {args.baseline} does not exist")
        return 1

    if args.sharded_only:
        return check_sharded_only(baseline, args)

    def regenerate() -> dict:
        repo_root_on_path(__file__)
        from benchmarks.bench_workload import collect

        return collect()

    fresh = load_fresh(args.fresh, regenerate)

    problems = []
    problems += check_schema(baseline, "baseline", full_baseline=True)
    problems += check_schema(fresh, "fresh", full_baseline=False)
    if problems:
        # Schema-invalid inputs: report, never touch the missing keys.
        return finish(problems, "")
    problems += check_determinism(baseline, fresh)
    problems += check_batch_speedup(baseline, "baseline")
    problems += check_batch_speedup(fresh, "fresh", args.tolerance)
    problems += check_sharded_scaling(baseline["sharded"], "baseline")
    problems += check_sharded_scaling(
        fresh["sharded"], "fresh", args.tolerance
    )
    problems += check_zipf_scaling(baseline["sharded_zipf"], "baseline")
    problems += check_zipf_scaling(
        fresh["sharded_zipf"], "fresh", args.tolerance
    )
    problems += check_budgets(fresh, args.budget, args.stream_budget)
    problems += check_sharded_budgets(fresh["sharded"], args.stream_budget)
    problems += check_zipf_budgets(
        fresh["sharded_zipf"], args.stream_budget
    )
    problems += check_memory(baseline, fresh, args.rss_ratio, args.rss_cap)
    problems += check_sharded_memory(
        baseline["sharded"], fresh["sharded"],
        args.rss_ratio, args.rss_cap,
    )
    problems += check_zipf_memory(
        baseline["sharded_zipf"], fresh["sharded_zipf"], args.rss_cap
    )
    if not args.skip_drift:
        problems += drift_problems(
            case_index(baseline), case_index(fresh),
            "ops_per_sec", args.tolerance,
        )
    soak = fresh["soak"]
    stream_sizes = ", ".join(
        f"{row['label']}/{row['max_ops']}" for row in fresh["stream"]
    )
    sharded_sizes = ", ".join(
        f"{row['shards']}x{row['max_ops']}" for row in fresh["sharded"]
    )
    zipf_sizes = ", ".join(
        f"{row['shards']}x{row['duration']}"
        for row in fresh["sharded_zipf"]
    )
    return finish(
        problems,
        f"ok: schema valid, executions deterministic, soak "
        f"{soak['completed']} ops online-atomic across "
        f"{soak['keys_checked']} registers in "
        f"{soak['wall_s']:.2f}s (budget "
        f"{args.budget}s); stream rows [{stream_sizes}] atomic, "
        f"memory sublinear; sharded rows [{sharded_sizes}] atomic, "
        f"capacity scaling >= {MIN_SHARD_CAPACITY_SPEEDUP}x; "
        f"sharded_zipf rows [{zipf_sizes}] atomic, imbalance <= "
        f"{MAX_SHARD_IMBALANCE}, capacity scaling >= "
        f"{MIN_ZIPF_CAPACITY_SPEEDUP}x",
    )


def check_sharded_only(baseline: dict, args) -> int:
    """The shard-smoke path: regenerate just the sharded and
    sharded_zipf sections and gate them (schema, exact determinism
    against the committed rows, the capacity-speedup and skew-balance
    gates, per-shard memory, wall budgets).  The full committed
    artifact still validates — both sections are part of
    ``check_schema`` — but nothing else is re-measured."""
    def regenerate() -> dict:
        repo_root_on_path(__file__)
        from benchmarks.bench_workload import (
            collect_sharded,
            collect_sharded_zipf,
        )

        return {
            "sharded": collect_sharded(),
            "sharded_zipf": collect_sharded_zipf(),
        }

    fresh = load_fresh(args.fresh, regenerate)
    fresh_rows = fresh["sharded"] if "sharded" in fresh else []
    fresh_zipf = fresh.get("sharded_zipf", [])

    problems = check_sharded_schema(
        baseline.get("sharded", []), "baseline", full_baseline=True
    )
    problems += check_sharded_schema(fresh_rows, "fresh", False)
    problems += check_zipf_schema(
        baseline.get("sharded_zipf", []), "baseline"
    )
    problems += check_zipf_schema(fresh_zipf, "fresh")
    if problems:
        return finish(problems, "")
    problems += check_sharded_determinism(baseline["sharded"], fresh_rows)
    problems += check_zipf_determinism(
        baseline["sharded_zipf"], fresh_zipf
    )
    problems += check_sharded_scaling(baseline["sharded"], "baseline")
    problems += check_sharded_scaling(fresh_rows, "fresh", args.tolerance)
    problems += check_zipf_scaling(baseline["sharded_zipf"], "baseline")
    problems += check_zipf_scaling(fresh_zipf, "fresh", args.tolerance)
    problems += check_sharded_budgets(fresh_rows, args.stream_budget)
    problems += check_zipf_budgets(fresh_zipf, args.stream_budget)
    problems += check_sharded_memory(
        baseline["sharded"], fresh_rows, args.rss_ratio, args.rss_cap
    )
    problems += check_zipf_memory(
        baseline["sharded_zipf"], fresh_zipf, args.rss_cap
    )
    sizes = ", ".join(
        f"{row['shards']}x{row['max_ops']}" for row in fresh_rows
    )
    zipf_sizes = ", ".join(
        f"{row['shards']}x{row['duration']}" for row in fresh_zipf
    )
    return finish(
        problems,
        f"ok: sharded rows [{sizes}] atomic and deterministic, "
        f"capacity scaling >= {MIN_SHARD_CAPACITY_SPEEDUP}x, per-shard "
        f"memory flat; sharded_zipf rows [{zipf_sizes}] atomic, "
        f"imbalance <= {MAX_SHARD_IMBALANCE}, capacity scaling >= "
        f"{MIN_ZIPF_CAPACITY_SPEEDUP}x",
    )


if __name__ == "__main__":
    sys.exit(main())
