"""Workload bench artifact checker: schema, determinism, soak budgets.

Run from the repository root (CI's soak-smoke job does)::

    PYTHONPATH=src python tools/check_workload.py

Checks, against the committed ``BENCH_workload.json`` baseline:

1. **Schema** — the artifact (and the freshly regenerated one) carries
   the documented shape: name, schema_version, one case per
   (n_keys, clients) grid point, a closed-loop soak row, a ``stream``
   section of horizon-free rows, positive counters.
2. **Determinism** — the regenerated grid/soak/stream ``operations``,
   ``completed`` and ``events`` counts match the committed baseline
   *exactly* (simulated executions are machine-independent, so any
   difference is a real behaviour regression, not noise), the soak is
   online-checked atomic on every register, and every stream row's
   windowed verdict is atomic.
3. **Budgets** — the fresh closed soak stays under ``--budget`` wall
   seconds; the fresh stream rows stay under ``--stream-budget``
   seconds each (scaled: a row's budget is proportional to its op
   count, with the full budget at one million ops).
4. **Memory** — the committed stream section proves sublinear memory:
   the million-op row's peak RSS must be below ``--rss-ratio`` × the
   100k row's (10× the ops, bounded extra resident memory), and below
   ``--rss-cap`` KiB absolutely.  The windowed checker's retained-state
   high-water mark must stay under 10k entries on every row.
5. **Throughput drift** — freshly measured ops/sec must not regress
   more than ``--tolerance`` (default 0.40) below the committed
   baseline (skippable on heterogeneous hardware).

CI regenerates the grid, the soak and the 100k stream row; the
million-op row is recorded by full local runs
(``python -m benchmarks.bench_workload --full-stream``) and validated
here from the committed artifact.  Exits non-zero listing every
violation.
"""

from __future__ import annotations

import argparse
import sys

from _gate import (
    determinism_problems,
    drift_problems,
    finish,
    load_baseline,
    load_fresh,
    missing_case_keys,
    missing_keys,
    repo_root_on_path,
)

REQUIRED_TOP = ("name", "schema_version", "cases", "soak", "stream")
REQUIRED_CASE = (
    "n_keys", "clients", "operations", "completed", "events", "wall_s",
    "ops_per_sec",
)
REQUIRED_SOAK = REQUIRED_CASE + ("atomic", "keys_checked")
REQUIRED_STREAM = REQUIRED_CASE + (
    "max_ops", "atomic", "violations", "keys_checked",
    "checker_max_retained", "peak_rss_kb",
)

MIN_SOAK_OPS = 10_000
#: The acceptance row: a million-op horizon-free soak must be recorded.
FULL_STREAM_OPS = 1_000_000
#: Bounded online-checker state, whatever the op count.
MAX_CHECKER_RETAINED = 10_000


def check_schema(payload: dict, label: str, full_baseline: bool) -> list:
    problems = missing_keys(payload, REQUIRED_TOP, label)
    if problems:
        return problems
    if payload["name"] != "workload":
        problems.append(f"{label}: name is {payload['name']!r}")
    for case in payload["cases"]:
        case_problems = missing_case_keys(case, REQUIRED_CASE, label)
        problems += case_problems
        if not case_problems and (
            case["operations"] <= 0 or case["ops_per_sec"] <= 0
        ):
            problems.append(f"{label}: non-positive counters in {case}")
    soak = payload["soak"]
    problems += missing_case_keys(soak, REQUIRED_SOAK, label)
    if not problems:
        if soak["operations"] < MIN_SOAK_OPS:
            problems.append(
                f"{label}: soak ran {soak['operations']} ops "
                f"(< {MIN_SOAK_OPS})"
            )
        if not soak["atomic"]:
            problems.append(f"{label}: soak history is NOT atomic")
        if soak["keys_checked"] != soak["n_keys"]:
            problems.append(
                f"{label}: soak checked {soak['keys_checked']} of "
                f"{soak['n_keys']} registers"
            )
    for row in payload["stream"]:
        row_problems = missing_case_keys(row, REQUIRED_STREAM, label)
        problems += row_problems
        if row_problems:
            continue
        if not row["atomic"] or row["violations"]:
            problems.append(
                f"{label}: stream row max_ops={row['max_ops']} is NOT "
                f"atomic ({row['violations']} violations)"
            )
        if row["checker_max_retained"] > MAX_CHECKER_RETAINED:
            problems.append(
                f"{label}: stream row max_ops={row['max_ops']} retained "
                f"{row['checker_max_retained']} checker entries "
                f"(> {MAX_CHECKER_RETAINED}; the window is not bounded)"
            )
    if full_baseline:
        sizes = {row["max_ops"] for row in payload["stream"]}
        if FULL_STREAM_OPS not in sizes:
            problems.append(
                f"{label}: stream section lacks the {FULL_STREAM_OPS}-op "
                f"acceptance row (record it with "
                f"`python -m benchmarks.bench_workload --full-stream`)"
            )
    return problems


def case_index(payload: dict) -> dict:
    return {(c["n_keys"], c["clients"]): c for c in payload["cases"]}


def stream_index(payload: dict) -> dict:
    return {("stream", r["max_ops"]): r for r in payload["stream"]}


def check_determinism(baseline: dict, fresh: dict) -> list:
    problems = determinism_problems(
        case_index(baseline), case_index(fresh),
        ("operations", "completed", "events"),
    )
    problems += determinism_problems(
        {("soak",): baseline["soak"]}, {("soak",): fresh["soak"]},
        ("operations", "completed", "events"),
    )
    # Stream rows compare only where both sides measured the same size
    # (CI regenerates the small row; the million-op row is baseline-only).
    base, new = stream_index(baseline), stream_index(fresh)
    shared = set(base) & set(new)
    problems += determinism_problems(
        {k: base[k] for k in shared}, {k: new[k] for k in shared},
        ("operations", "completed", "events"),
    )
    return problems


def check_budgets(
    fresh: dict, budget: float, stream_budget: float
) -> list:
    problems = []
    soak = fresh["soak"]
    # The online checker runs inline, so wall_s is execute + check.
    if soak["wall_s"] > budget:
        problems.append(
            f"soak blew the wall-clock budget: {soak['wall_s']:.2f}s "
            f"> {budget}s"
        )
    for row in fresh["stream"]:
        row_budget = stream_budget * row["max_ops"] / FULL_STREAM_OPS
        if row["wall_s"] > row_budget:
            problems.append(
                f"stream row max_ops={row['max_ops']} blew its budget: "
                f"{row['wall_s']}s > {row_budget:.1f}s"
            )
    return problems


def check_memory(
    baseline: dict, fresh: dict, rss_ratio: float, rss_cap: int
) -> list:
    """Peak-RSS acceptance: absolute caps on committed *and freshly
    measured* rows, sublinearity across the committed sizes, and no
    regression of a fresh row beyond ``rss_ratio`` × its committed
    counterpart — so CI catches a memory regression the moment the
    regenerated 100k row balloons, not only at the next full run."""
    base_rows = {row["max_ops"]: row for row in baseline["stream"]}
    fresh_rows = {row["max_ops"]: row for row in fresh["stream"]}
    problems = []
    for label, rows in (("baseline", base_rows), ("fresh", fresh_rows)):
        for row in rows.values():
            if row["peak_rss_kb"] > rss_cap:
                problems.append(
                    f"{label} stream row max_ops={row['max_ops']} peaked "
                    f"at {row['peak_rss_kb']} KiB RSS (> cap {rss_cap})"
                )
    small, big = base_rows.get(100_000), base_rows.get(FULL_STREAM_OPS)
    if small and big:
        allowed = small["peak_rss_kb"] * rss_ratio
        if big["peak_rss_kb"] > allowed:
            problems.append(
                f"memory is not sublinear: {FULL_STREAM_OPS} ops peaked "
                f"at {big['peak_rss_kb']} KiB vs {small['peak_rss_kb']} "
                f"KiB at 100k ops (> ratio {rss_ratio})"
            )
    for size in sorted(set(base_rows) & set(fresh_rows)):
        committed = base_rows[size]["peak_rss_kb"]
        measured = fresh_rows[size]["peak_rss_kb"]
        if measured > committed * rss_ratio:
            problems.append(
                f"stream row max_ops={size} peak RSS regressed: "
                f"{committed} -> {measured} KiB (> ratio {rss_ratio})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_workload.json",
        help="committed artifact (default: BENCH_workload.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-generated fresh artifact; omitted = regenerate now",
    )
    parser.add_argument(
        "--budget", type=float, default=60.0,
        help="closed-soak wall-clock budget in seconds (default 60)",
    )
    parser.add_argument(
        "--stream-budget", type=float, default=300.0,
        help="wall-clock budget for a million-op stream row, scaled "
             "down proportionally for smaller rows (default 300)",
    )
    parser.add_argument(
        "--rss-ratio", type=float, default=2.0,
        help="max allowed peak-RSS ratio of the 1e6-op row over the "
             "1e5-op row (default 2.0; sublinear memory)",
    )
    parser.add_argument(
        "--rss-cap", type=int, default=262_144,
        help="absolute peak-RSS cap per stream row in KiB (default 256Mi)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed fractional ops/sec regression (default 0.40)",
    )
    parser.add_argument(
        "--skip-drift", action="store_true",
        help="skip the wall-clock drift check (heterogeneous hardware)",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"FAIL: baseline {args.baseline} does not exist")
        return 1

    def regenerate() -> dict:
        repo_root_on_path(__file__)
        from benchmarks.bench_workload import collect

        return collect()

    fresh = load_fresh(args.fresh, regenerate)

    problems = []
    problems += check_schema(baseline, "baseline", full_baseline=True)
    problems += check_schema(fresh, "fresh", full_baseline=False)
    if problems:
        # Schema-invalid inputs: report, never touch the missing keys.
        return finish(problems, "")
    problems += check_determinism(baseline, fresh)
    problems += check_budgets(fresh, args.budget, args.stream_budget)
    problems += check_memory(baseline, fresh, args.rss_ratio, args.rss_cap)
    if not args.skip_drift:
        problems += drift_problems(
            case_index(baseline), case_index(fresh),
            "ops_per_sec", args.tolerance,
        )
    soak = fresh["soak"]
    stream_sizes = ", ".join(
        str(row["max_ops"]) for row in fresh["stream"]
    )
    return finish(
        problems,
        f"ok: schema valid, executions deterministic, soak "
        f"{soak['completed']} ops online-atomic across "
        f"{soak['keys_checked']} registers in "
        f"{soak['wall_s']:.2f}s (budget "
        f"{args.budget}s); stream rows [{stream_sizes}] atomic, "
        f"memory sublinear",
    )


if __name__ == "__main__":
    sys.exit(main())
