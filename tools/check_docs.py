"""Docs sanity checker: relative links resolve, TOC anchors exist.

Run from the repository root (CI's docs job does)::

    python tools/check_docs.py

Checks every ``docs/*.md`` file plus ``README.md``:

* relative markdown links (``[text](path)`` and ``[text](path#anchor)``)
  point at files that exist;
* intra-document anchors (``#anchor`` links, including the Contents
  sections) match a heading's GitHub-style slug.

Exits non-zero listing every broken link (problem reporting shared with
the other gates via ``tools/_gate.py``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from _gate import finish

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(text: str) -> set:
    return {github_slug(h) for h in HEADING.findall(CODE_FENCE.sub("", text))}


def check_file(path: Path, root: Path) -> list:
    text = path.read_text()
    problems = []
    own_anchors = anchors_of(text)
    for target in LINK.findall(CODE_FENCE.sub("", text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
            dest_anchors = (
                anchors_of(dest.read_text())
                if dest.suffix == ".md" else set()
            )
        else:
            dest_anchors = own_anchors
        if anchor and anchor not in dest_anchors:
            problems.append(f"{path}: broken anchor -> {target}")
    return problems


def main() -> int:
    root = Path.cwd()
    files = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    missing = [f for f in files if not f.exists()]
    problems = [f"missing file: {f}" for f in missing]
    for path in files:
        if path.exists():
            problems.extend(check_file(path, root))
    return finish(
        problems,
        f"docs ok: {len(files)} files, all links and anchors resolve",
    )


if __name__ == "__main__":
    sys.exit(main())
