"""Capacity bench artifact checker: schema, determinism, prediction sanity.

Run from the repository root (CI's capacity-smoke job does)::

    PYTHONPATH=src python tools/check_quorums.py

Checks, against the committed ``BENCH_quorums.json`` baseline:

1. **Schema** — the artifact (and the freshly regenerated one) carries
   the documented shape: name, schema_version, one case per
   (system, strategy, mix, faults, seed) grid point with counters,
   exact simulated throughput and the strategy engine's prediction.
2. **Determinism** — the regenerated ``operations``, ``completed``,
   ``events``, ``messages``, ``sim_ops_per_sec``, ``predicted_load``
   and ``predicted_capacity`` match the committed baseline *exactly*
   (simulated time and exact-rational LP solutions are
   machine-independent; any difference is a behaviour regression).
3. **Atomicity** — every cell's history is atomic.
4. **Acceptance** — on the heterogeneous-capacity system, the
   load-optimal strategy's measured simulated throughput strictly beats
   the uniform strategy's on at least one fault-free cell (the E16
   headline result).
5. **Prediction sanity** — wherever the engine predicts a clear
   capacity advantage (ratio ≥ ``PREDICTION_MARGIN``) between two
   strategies on the same fault-free cell, the measured throughput
   must not contradict it (the favoured strategy measures at least as
   high).
6. **Wall-clock drift** — fresh per-cell wall seconds must not blow up
   beyond ``--tolerance`` over the committed baseline (skippable on
   heterogeneous hardware).

Exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _gate import (
    determinism_problems,
    finish,
    load_baseline,
    load_fresh,
    missing_case_keys,
    missing_keys,
    repo_root_on_path,
)

REQUIRED_TOP = ("name", "schema_version", "horizon", "cases")
REQUIRED_CASE = (
    "system", "strategy", "mix", "faults", "seed",
    "operations", "completed", "events", "messages", "atomic",
    "sim_ops_per_sec", "predicted_load", "predicted_capacity",
    "read_fraction", "wall_s",
)
#: Exact-match fields (simulated executions + exact LP: zero noise).
EXACT_FIELDS = (
    "operations", "completed", "events", "messages",
    "sim_ops_per_sec", "predicted_load", "predicted_capacity",
)
#: A predicted capacity ratio at least this large must not be
#: contradicted by the measurement.
PREDICTION_MARGIN = 1.2


def case_key(case: dict) -> tuple:
    return (
        case["system"], case["strategy"], case["mix"],
        case["faults"], case["seed"],
    )


def case_index(payload: dict) -> dict:
    return {case_key(c): c for c in payload["cases"]}


def check_schema(payload: dict, label: str) -> list:
    problems = missing_keys(payload, REQUIRED_TOP, label)
    if problems:
        return problems
    if payload["name"] != "quorums":
        problems.append(f"{label}: name is {payload['name']!r}")
    for case in payload["cases"]:
        case_problems = missing_case_keys(case, REQUIRED_CASE, label)
        problems += case_problems
        if case_problems:
            continue
        if case["operations"] <= 0 or case["completed"] <= 0:
            problems.append(f"{label}: non-positive counters in {case}")
        if not case["atomic"]:
            problems.append(
                f"{label}: cell {case_key(case)} history is NOT atomic"
            )
    return problems


def check_acceptance(payload: dict, label: str) -> list:
    """The E16 headline: optimal strictly beats uniform somewhere on
    the fault-free heterogeneous cells."""
    cells = case_index(payload)
    wins = []
    for key, case in cells.items():
        system, strategy, mix, faults, seed = key
        if system != "grid-hetero" or strategy != "optimal":
            continue
        if faults != "none":
            continue
        twin = cells.get((system, "uniform", mix, faults, seed))
        if twin and case["sim_ops_per_sec"] > twin["sim_ops_per_sec"]:
            wins.append(mix)
    if not wins:
        return [
            f"{label}: the load-optimal strategy never beats uniform on "
            f"a fault-free heterogeneous-capacity cell (the E16 "
            f"acceptance result)"
        ]
    return []


def check_prediction_sanity(payload: dict, label: str) -> list:
    """A clearly predicted advantage must not measure as a deficit."""
    cells = case_index(payload)
    problems = []
    for key, case in cells.items():
        system, strategy, mix, faults, seed = key
        if strategy != "optimal" or faults != "none":
            continue
        twin = cells.get((system, "uniform", mix, faults, seed))
        if twin is None:
            continue
        ratio = case["predicted_capacity"] / twin["predicted_capacity"]
        if ratio >= PREDICTION_MARGIN and (
            case["sim_ops_per_sec"] < twin["sim_ops_per_sec"]
        ):
            problems.append(
                f"{label}: cell (system={system}, mix={mix}) predicts "
                f"optimal/uniform capacity ratio {ratio:.2f} but "
                f"measured {case['sim_ops_per_sec']} < "
                f"{twin['sim_ops_per_sec']} ops/s — the prediction is "
                f"contradicted"
            )
    return problems


def check_drift(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Per-cell wall-clock blowup guard (the only noisy field)."""
    base, new = case_index(baseline), case_index(fresh)
    problems = []
    for key in sorted(set(base) & set(new), key=repr):
        committed, measured = base[key]["wall_s"], new[key]["wall_s"]
        floor = 0.05  # ignore sub-50ms cells: pure scheduler noise
        if measured > max(committed * (1.0 + tolerance), floor):
            problems.append(
                f"{key}: wall_s blew up {committed} -> {measured} "
                f"(more than {tolerance:.0%} over baseline)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_quorums.json",
        help="committed artifact (default: BENCH_quorums.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-generated fresh artifact; omitted = regenerate now",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.0,
        help="allowed fractional wall-clock growth per cell (default 1.0)",
    )
    parser.add_argument(
        "--skip-drift", action="store_true",
        help="skip the wall-clock drift check (heterogeneous hardware)",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"FAIL: baseline {args.baseline} does not exist")
        return 1

    def regenerate() -> dict:
        repo_root_on_path(__file__)
        # ``repro`` lives under ``src/`` (unlike the root-level bench
        # packages), so the gate works without PYTHONPATH=src too.
        src = str(Path(__file__).resolve().parent.parent / "src")
        if src not in sys.path:
            sys.path.insert(0, src)
        from repro.experiments.capacity import collect

        return collect()

    fresh = load_fresh(args.fresh, regenerate)

    problems = []
    problems += check_schema(baseline, "baseline")
    problems += check_schema(fresh, "fresh")
    if problems:
        # Schema-invalid inputs: report, never touch the missing keys.
        return finish(problems, "")
    problems += determinism_problems(
        case_index(baseline), case_index(fresh), EXACT_FIELDS
    )
    problems += check_acceptance(baseline, "baseline")
    problems += check_acceptance(fresh, "fresh")
    problems += check_prediction_sanity(baseline, "baseline")
    problems += check_prediction_sanity(fresh, "fresh")
    if not args.skip_drift:
        problems += check_drift(baseline, fresh, args.tolerance)
    n = len(fresh["cases"])
    return finish(
        problems,
        f"ok: schema valid, {n} cells deterministic and atomic, "
        f"load-optimal beats uniform on heterogeneous capacities, "
        f"predictions uncontradicted",
    )


if __name__ == "__main__":
    sys.exit(main())
