"""Shared helpers for the ``tools/check_*.py`` CI gate scripts.

Every gate follows the same shape: load a committed baseline artifact,
regenerate (or load) a fresh measurement, collect *problems* from a
sequence of checks — schema keys, exact determinism fields, bounded
throughput drift — and exit non-zero listing every violation.  The
mechanics live here once; each checker keeps only its artifact-specific
schema and acceptance rules.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


def load_baseline(path: str) -> Optional[dict]:
    """The committed artifact, or ``None`` (callers fail on it)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return None
    return json.loads(baseline_path.read_text())


def load_fresh(path: Optional[str], regenerate: Callable[[], dict]) -> dict:
    """A pre-generated fresh artifact, or regenerate one now."""
    if path is not None:
        return json.loads(Path(path).read_text())
    return regenerate()


def repo_root_on_path(tool_file: str) -> None:
    """Make ``benchmarks``/``repro`` importable when a gate runs as
    ``python tools/check_x.py`` (which puts ``tools/`` first on
    ``sys.path``; the bench packages live at the repository root)."""
    root = str(Path(tool_file).resolve().parent.parent)
    if root not in sys.path:
        sys.path.insert(0, root)


def missing_keys(payload: dict, required: Sequence[str], label: str) -> List[str]:
    """One problem line per missing top-level key."""
    return [
        f"{label}: missing top-level key {key!r}"
        for key in required
        if key not in payload
    ]


def missing_case_keys(case: dict, required: Sequence[str], label: str) -> List[str]:
    for key in required:
        if key not in case:
            return [f"{label}: case missing {key!r}: {case}"]
    return []


def determinism_problems(
    base: Dict[Tuple, dict],
    fresh: Dict[Tuple, dict],
    fields: Sequence[str],
) -> List[str]:
    """Exact-match problems over indexed cases.

    Simulated executions are machine-independent, so *any* difference in
    the listed fields is a behaviour regression, not noise — the
    message says so.
    """
    problems: List[str] = []
    if set(base) != set(fresh):
        problems.append(
            f"case grid changed: baseline {sorted(set(base) - set(fresh))} "
            f"only / fresh {sorted(set(fresh) - set(base))} only"
        )
        return problems
    for key in sorted(base, key=repr):
        for field in fields:
            if fresh[key][field] != base[key][field]:
                problems.append(
                    f"{key}: {field} changed "
                    f"{base[key][field]} -> {fresh[key][field]} "
                    f"(simulated executions are deterministic; this is "
                    f"a behaviour regression, not noise)"
                )
    return problems


def drift_problems(
    base: Dict[Tuple, dict],
    fresh: Dict[Tuple, dict],
    field: str,
    tolerance: float,
) -> List[str]:
    """Throughput-regression problems: ``field`` must not fall more
    than ``tolerance`` (fractional) below the committed baseline."""
    problems: List[str] = []
    for key in sorted(set(base) & set(fresh), key=repr):
        committed = base[key][field]
        measured = fresh[key][field]
        if measured < committed * (1.0 - tolerance):
            problems.append(
                f"{key}: {field} regressed {committed} -> {measured} "
                f"(more than {tolerance:.0%} below baseline)"
            )
    return problems


def finish(problems: Iterable[str], ok_message: str) -> int:
    """Print the verdict and return the process exit code."""
    problems = list(problems)
    if problems:
        print(f"FAIL: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(ok_message)
    return 0
