"""Sim-core bench artifact checker: schema, determinism, perf drift.

Run from the repository root (CI's perf-smoke job does)::

    PYTHONPATH=src python tools/check_simcore.py

Checks, against the committed ``BENCH_simcore.json`` baseline:

1. **Schema** — the artifact (and the freshly regenerated one) carries
   the documented shape: name, schema_version, target, one indexed +
   one scan case per (workload, n), positive counters.
2. **Determinism** — the regenerated run's ``events`` and ``blocked``
   counts match the committed baseline *exactly*: simulated executions
   are machine-independent, so any difference is a real behaviour
   regression, not noise.  The ``micro`` hot-path row (events/sec on
   the 50-client keyed storage mix — the allocation-lean exhibit) is
   held to the same event-count determinism and the drift tolerance.
3. **Acceptance** — the target row (storage, n=50) shows at least the
   recorded ``min_speedup`` (5x) events/sec over the legacy scan loop,
   in the committed artifact and in the fresh run.
4. **Throughput drift** — freshly measured events/sec must not regress
   more than ``--tolerance`` (default 0.30, i.e. 30%) below the
   committed baseline.

Shared gate mechanics (baseline loading, determinism/drift comparison,
problem reporting) live in ``tools/_gate.py``.  Exits non-zero listing
every violation.
"""

from __future__ import annotations

import argparse
import sys

from _gate import (
    determinism_problems,
    drift_problems,
    finish,
    load_baseline,
    load_fresh,
    missing_case_keys,
    missing_keys,
    repo_root_on_path,
)

REQUIRED_TOP = (
    "name", "schema_version", "target", "cases", "speedups", "micro",
)
REQUIRED_CASE = (
    "workload", "n", "wakeup", "events", "blocked", "wall_s",
    "events_per_sec",
)
REQUIRED_MICRO = (
    "workload", "clients", "n_keys", "operations", "events", "wall_s",
    "events_per_sec",
)
WAKEUPS = ("indexed", "scan")


def check_schema(payload: dict, label: str) -> list:
    problems = missing_keys(payload, REQUIRED_TOP, label)
    if problems:
        return problems
    if payload["name"] != "simcore":
        problems.append(f"{label}: name is {payload['name']!r}")
    seen = set()
    for case in payload["cases"]:
        case_problems = missing_case_keys(case, REQUIRED_CASE, label)
        problems += case_problems
        if case_problems:
            continue
        if case["wakeup"] not in WAKEUPS:
            problems.append(f"{label}: unknown wakeup {case['wakeup']!r}")
        if case["events"] <= 0 or case["events_per_sec"] <= 0:
            problems.append(f"{label}: non-positive counters in {case}")
        seen.add((case["workload"], case["n"], case["wakeup"]))
    for workload, n, _ in list(seen):
        for wakeup in WAKEUPS:
            if (workload, n, wakeup) not in seen:
                problems.append(
                    f"{label}: ({workload}, n={n}) lacks a "
                    f"{wakeup!r} case"
                )
    target = payload["target"]
    for key in ("workload", "n", "min_speedup"):
        if key not in target:
            problems.append(f"{label}: target missing {key!r}")
    micro = payload["micro"]
    micro_problems = missing_case_keys(micro, REQUIRED_MICRO, label)
    problems += micro_problems
    if not micro_problems and (
        micro["events"] <= 0 or micro["events_per_sec"] <= 0
    ):
        problems.append(f"{label}: non-positive micro counters {micro}")
    return problems


def case_index(payload: dict) -> dict:
    return {
        (c["workload"], c["n"], c["wakeup"]): c for c in payload["cases"]
    }


def check_speedup(payload: dict, label: str) -> list:
    target = payload["target"]
    cases = case_index(payload)
    key_indexed = (target["workload"], target["n"], "indexed")
    key_scan = (target["workload"], target["n"], "scan")
    if key_indexed not in cases or key_scan not in cases:
        return [f"{label}: target row {target} has no measured cases"]
    speedup = (
        cases[key_indexed]["events_per_sec"]
        / cases[key_scan]["events_per_sec"]
    )
    if speedup < target["min_speedup"]:
        return [
            f"{label}: target speedup {speedup:.2f}x < "
            f"required {target['min_speedup']}x "
            f"({target['workload']} n={target['n']})"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_simcore.json",
        help="committed artifact (default: BENCH_simcore.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-generated fresh artifact; omitted = regenerate now",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec regression (default 0.30)",
    )
    parser.add_argument(
        "--skip-drift", action="store_true",
        help="skip the wall-clock drift check (heterogeneous hardware)",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"FAIL: baseline {args.baseline} does not exist")
        return 1

    def regenerate() -> dict:
        repo_root_on_path(__file__)
        from benchmarks.bench_simcore import collect

        return collect()

    fresh = load_fresh(args.fresh, regenerate)

    problems = []
    problems += check_schema(baseline, "baseline")
    problems += check_schema(fresh, "fresh")
    if problems:
        # Schema-invalid inputs: report, never touch the missing keys.
        return finish(problems, "")
    problems += determinism_problems(
        case_index(baseline), case_index(fresh),
        ("events", "blocked"),
    )
    problems += determinism_problems(
        {("micro",): baseline["micro"]}, {("micro",): fresh["micro"]},
        ("events", "operations"),
    )
    problems += check_speedup(baseline, "baseline")
    problems += check_speedup(fresh, "fresh")
    if not args.skip_drift:
        problems += drift_problems(
            case_index(baseline), case_index(fresh),
            "events_per_sec", args.tolerance,
        )
        problems += drift_problems(
            {("micro",): baseline["micro"]}, {("micro",): fresh["micro"]},
            "events_per_sec", args.tolerance,
        )
    target = baseline["target"]
    return finish(
        problems,
        f"ok: schema valid, executions deterministic, "
        f"{target['workload']} n={target['n']} speedup >= "
        f"{target['min_speedup']}x, events/sec within "
        f"{args.tolerance:.0%} of baseline",
    )


if __name__ == "__main__":
    sys.exit(main())
