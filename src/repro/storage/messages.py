"""Wire messages of the atomic storage algorithm (Figures 5-7).

All messages are immutable dataclasses.  ``WR``/``WrAck`` implement the
write protocol (also used by reader write-backs); ``RD``/``RdAck``
implement the read protocol.  Reader messages carry ``(reader, read_no)``
so acks from different operations of the same reader never mix (the
paper's ``read_no``, line 21 of Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable

from repro.storage.history import HistoryView

QuorumId = FrozenSet[Hashable]


@dataclass(frozen=True)
class WR:
    """``wr⟨ts, v, QC'2, rnd⟩`` — write round ``rnd`` (Figure 5, line 10)."""

    ts: int
    value: Any
    qc2_ids: FrozenSet[QuorumId]
    rnd: int


@dataclass(frozen=True)
class WrAck:
    """``wr_ack⟨ts, rnd⟩`` (Figure 6, line 7)."""

    ts: int
    rnd: int


@dataclass(frozen=True)
class RD:
    """``rd⟨read_no, rnd⟩`` (Figure 7, line 25)."""

    read_no: int
    rnd: int


@dataclass(frozen=True)
class RdAck:
    """``rd_ack⟨read_no, rnd, history⟩`` (Figure 6, line 9).

    ``history`` is a full snapshot of the server's history matrix.
    """

    read_no: int
    rnd: int
    history: HistoryView
