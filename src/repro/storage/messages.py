"""Wire messages of the atomic storage algorithm (Figures 5-7).

All messages are immutable dataclasses.  ``WR``/``WrAck`` implement the
write protocol (also used by reader write-backs); ``RD``/``RdAck``
implement the read protocol.  Reader messages carry ``(reader, read_no)``
so acks from different operations of the same reader never mix (the
paper's ``read_no``, line 21 of Figure 7).

Every message additionally carries the ``key`` of the register it
addresses — the keyed-register-space lift.  Per-key server state is
fully independent, and acks echo the key so client-side responder sets
keyed ``(key, ts, rnd)`` never mix registers whose per-key timestamps
collide.  The default key keeps single-register executions identical to
the historical single-register protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable

from repro.storage.history import DEFAULT_KEY, HistoryView

QuorumId = FrozenSet[Hashable]


@dataclass(frozen=True, slots=True)
class WR:
    """``wr⟨ts, v, QC'2, rnd⟩`` — write round ``rnd`` (Figure 5, line 10)."""

    ts: int
    value: Any
    qc2_ids: FrozenSet[QuorumId]
    rnd: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class WrAck:
    """``wr_ack⟨ts, rnd⟩`` (Figure 6, line 7)."""

    ts: int
    rnd: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class RD:
    """``rd⟨read_no, rnd⟩`` (Figure 7, line 25).

    ``rnd = 0`` is the multi-writer timestamp-discovery round: writers
    reuse the read protocol to learn the highest stored timestamp of a
    key before stamping their own.
    """

    read_no: int
    rnd: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class RdAck:
    """``rd_ack⟨read_no, rnd, history⟩`` (Figure 6, line 9).

    ``history`` is a full snapshot of the server's history matrix for
    the addressed key.
    """

    read_no: int
    rnd: int
    history: HistoryView
    key: Hashable = DEFAULT_KEY
