"""The storage writer (Figure 5).

A write takes at most three rounds:

1. Round 1 writes ``⟨ts, v⟩`` to slot 1 of all servers and waits for both
   a quorum of acks **and** the ``2Δ`` timer — the extra wait lets a
   class-1 quorum assemble, in which case the write returns immediately.
2. Otherwise the class-2 quorums that fully acked round 1 are remembered
   in ``QC'2`` and round 2 writes to slot 2 carrying those quorum ids.
   If some quorum of ``QC'2`` acks round 2, the write returns.
3. Otherwise round 3 writes to slot 3 and returns on any quorum of acks
   (no timer: nothing faster can be detected any more).

The writer is single (SWMR storage) and its timestamps are monotonically
increasing across writes.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Hashable, Optional

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.conditions import AckSet, AllOf, ConditionMap
from repro.sim.network import Message
from repro.sim.process import Process
from repro.sim.tasks import WaitUntil
from repro.sim.trace import Trace
from repro.storage.messages import WR, WrAck

QuorumId = FrozenSet[Hashable]


class StorageWriter(Process):
    """The unique writer client."""

    def __init__(
        self,
        pid: Hashable,
        rqs: RefinedQuorumSystem,
        trace: Optional[Trace] = None,
        delta: float = 1.0,
    ):
        super().__init__(pid)
        self.rqs = rqs
        self.trace = trace if trace is not None else Trace()
        self.timeout = 2.0 * delta
        self.ts = 0
        self._acks = ConditionMap(AckSet, "wr ts={} rnd={}")

    # -- network ---------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, WrAck):
            self.acks(payload.ts, payload.rnd).add(message.src)

    def acks(self, ts: int, rnd: int) -> AckSet:
        """The responder set for one round (a signalling ``set``)."""
        return self._acks(ts, rnd)

    # -- protocol ----------------------------------------------------------------

    def write(self, value: Any):
        """Coroutine implementing ``write(v)`` — spawn on the simulator.

        Returns the operation's :class:`~repro.sim.trace.OperationRecord`.
        """
        record = self.trace.begin("write", self.pid, self.sim.now, value)
        self.ts += 1
        ts = self.ts

        # Round 1 (Figure 5 lines 2-3).
        yield from self._round(ts, value, frozenset(), 1)
        if self._acked_quorum(ts, 1, cls=1) is not None:
            self.trace.complete(record, self.sim.now, "OK", rounds=1)
            return record

        # Lines 4-5: remember fully-acking class-2 quorums.
        round1 = self.acks(ts, 1)
        qc2_prime = frozenset(
            q2 for q2 in self.rqs.qc2 if q2 <= round1
        )

        # Round 2 (lines 6-7).
        yield from self._round(ts, value, qc2_prime, 2)
        round2 = self.acks(ts, 2)
        if any(q2 <= round2 for q2 in qc2_prime):
            self.trace.complete(record, self.sim.now, "OK", rounds=2)
            return record

        # Round 3 (lines 8-9).
        yield from self._round(ts, value, frozenset(), 3)
        self.trace.complete(record, self.sim.now, "OK", rounds=3)
        return record

    def _round(self, ts: int, value: Any, qc2_prime: FrozenSet[QuorumId], rnd: int):
        """``round(i)`` (Figure 5 lines 10-12): send to all servers, then
        wait for a quorum of acks and (rounds 1-2) the 2Δ timer."""
        for server in sorted(self.rqs.ground_set, key=repr):
            self.send(server, WR(ts, value, qc2_prime, rnd))
        quorum_acked = self.acks(ts, rnd).includes_any(self.rqs.quorums)
        label = f"write ts={ts} round {rnd}"
        if rnd < 3:
            timer = self.sim.timer_at(self.sim.now + self.timeout)
            yield WaitUntil(AllOf(timer, quorum_acked), label)
        else:
            yield WaitUntil(quorum_acked, label)

    def _acked_quorum(self, ts: int, rnd: int, cls: int):
        acked = self.acks(ts, rnd)
        return self.rqs.some_responding_quorum(acked, cls=cls)
