"""The storage writer (Figure 5).

A write takes at most three rounds:

1. Round 1 writes ``⟨ts, v⟩`` to slot 1 of all servers and waits for both
   a quorum of acks **and** the ``2Δ`` timer — the extra wait lets a
   class-1 quorum assemble, in which case the write returns immediately.
2. Otherwise the class-2 quorums that fully acked round 1 are remembered
   in ``QC'2`` and round 2 writes to slot 2 carrying those quorum ids.
   If some quorum of ``QC'2`` acks round 2, the write returns.
3. Otherwise round 3 writes to slot 3 and returns on any quorum of acks
   (no timer: nothing faster can be detected any more).

The register space is keyed: every write addresses one register and all
per-key state — timestamps, server histories, responder sets — is
independent (the default key reproduces the paper's single register
bit-for-bit).

Writers come in two modes:

* **Single-writer** (``writer_id=None``, the paper's SWMR model): the
  unique writer keeps a bare per-key sequence counter, monotonically
  increasing across its writes — the historical encoding, unchanged.
* **Multi-writer** (``writer_id`` an index): timestamps are stamped
  ``(seq, writer_id)`` via :func:`~repro.storage.history.make_stamp`
  (totally ordered across writers), and each write is preceded by a
  **timestamp-discovery round** — the writer reuses the read protocol
  (``rd`` with ``rnd = 0``) to collect a quorum of history snapshots
  and picks ``seq`` above everything stored.  Any completed write's
  timestamp sits in slot 1 at a full quorum, and any two quorums
  intersect in a correct server (Property 1), so discovery never misses
  a completed predecessor; Byzantine inflation of the reported maximum
  only advances the sequence space, which is harmless.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.conditions import AckSet, AllOf, ConditionMap
from repro.sim.network import Message
from repro.sim.process import Process
from repro.sim.tasks import WaitUntil
from repro.sim.trace import Trace
from repro.storage.batching import (
    BatchAck,
    BatchAcks,
    ReadBatch,
    ReadBatchAck,
    WriteBatch,
    distinct_keys,
)
from repro.storage.history import DEFAULT_KEY
from repro.storage.messages import RD, RdAck, WR, WrAck
from repro.storage.stamping import DiscoveryInbox, StampIssuer

QuorumId = FrozenSet[Hashable]


class StorageWriter(Process):
    """A writer client (unique in SWMR mode, indexed in MW mode)."""

    def __init__(
        self,
        pid: Hashable,
        rqs: RefinedQuorumSystem,
        trace: Optional[Trace] = None,
        delta: float = 1.0,
        writer_id: Optional[int] = None,
        selector=None,
    ):
        super().__init__(pid)
        self.rqs = rqs
        self.trace = trace if trace is not None else Trace()
        self.timeout = 2.0 * delta
        self.stamps = StampIssuer(writer_id)
        #: Optional :class:`~repro.core.strategy.QuorumSelector`.  When
        #: set, each write draws one quorum from the strategy and sends
        #: only to its members; when ``None`` (the default and the
        #: paper's model) every round broadcasts to the ground set.
        self.selector = selector
        self._acks = ConditionMap(AckSet, "wr key={} ts={} rnd={}")
        self._discovery = DiscoveryInbox("write ts-discovery#{}")
        self._batches = BatchAcks("wr batch#{} rnd={}")
        # The broadcast target list is the same every round — cache the
        # sorted ground set instead of re-sorting per op (hot path).
        self._ground = tuple(sorted(rqs.ground_set, key=repr))

    @property
    def writer_id(self) -> Optional[int]:
        return self.stamps.writer_id

    @property
    def ts(self) -> int:
        """The default register's latest sequence number (SWMR compat)."""
        return self.stamps.seq()

    # -- network ---------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, WrAck):
            # peek, not create: a straggler ack for a completed write
            # must not resurrect its pruned responder set (bounded
            # memory on streaming soaks).
            acks = self._acks.peek(payload.key, payload.ts, payload.rnd)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, RdAck) and payload.rnd == 0:
            self._discovery.record(payload.read_no, message.src,
                                   payload.history)
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)
        elif isinstance(payload, ReadBatchAck) and payload.rnd == 0:
            self._discovery.record(payload.read_no, message.src,
                                   payload.replies)

    def acks(self, ts: int, rnd: int, key: Hashable = DEFAULT_KEY) -> AckSet:
        """The responder set for one round (a signalling ``set``)."""
        return self._acks(key, ts, rnd)

    # -- protocol ----------------------------------------------------------------

    def write(self, value: Any, key: Hashable = DEFAULT_KEY):
        """Coroutine implementing ``write(v)`` on one register — spawn on
        the simulator.

        Returns the operation's :class:`~repro.sim.trace.OperationRecord`.
        MW-mode writes spend one extra round trip on timestamp
        discovery, counted in the record's ``rounds``.
        """
        record = self.trace.begin("write", self.pid, self.sim.now, value,
                                  key=key)
        # One strategy draw per operation: discovery and all rounds of
        # this write target the same drawn quorum.
        target = self.selector.next_write() if self.selector else None
        if not self.stamps.multi_writer:
            ts, extra_rounds = self.stamps.bare(key), 0
        else:
            observed = yield from self._discover(key, target)
            ts, extra_rounds = self.stamps.stamped(key, observed), 1
        # Surface the timestamp for the stamp-ordered online checker
        # (set before completion so trace observers see it).
        record.meta["ts"] = ts

        # Round 1 (Figure 5 lines 2-3).
        yield from self._round(ts, value, frozenset(), 1, key, target)
        if self._acked_quorum(ts, 1, cls=1, key=key) is not None:
            self._retire(ts, key)
            self.trace.complete(record, self.sim.now, "OK",
                                rounds=1 + extra_rounds)
            return record

        # Lines 4-5: remember fully-acking class-2 quorums.
        round1 = self.acks(ts, 1, key)
        qc2_prime = frozenset(
            q2 for q2 in self.rqs.qc2 if q2 <= round1
        )

        # Round 2 (lines 6-7).
        yield from self._round(ts, value, qc2_prime, 2, key, target)
        round2 = self.acks(ts, 2, key)
        if any(q2 <= round2 for q2 in qc2_prime):
            self._retire(ts, key)
            self.trace.complete(record, self.sim.now, "OK",
                                rounds=2 + extra_rounds)
            return record

        # Round 3 (lines 8-9).
        yield from self._round(ts, value, frozenset(), 3, key, target)
        self._retire(ts, key)
        self.trace.complete(record, self.sim.now, "OK",
                            rounds=3 + extra_rounds)
        return record

    def _retire(self, ts: int, key: Hashable) -> None:
        """Drop the completed write's per-round responder sets, keeping
        writer state O(in-flight writes) on streaming runs."""
        for rnd in (1, 2, 3):
            self._acks.discard(key, ts, rnd)

    def _targets(self, target):
        """The servers one round contacts: the drawn quorum under a
        strategy, the (cached) full ground set otherwise."""
        if target is None:
            return self._ground
        return sorted(target, key=repr)

    def _discover(self, key: Hashable, target=None):
        """MW timestamp discovery: the highest stored timestamp for
        ``key`` at some responding quorum (the ``rnd = 0`` read round)."""
        number = self._discovery.open()
        for server in self._targets(target):
            self.send(server, RD(number, 0, key))
        yield WaitUntil(
            self._discovery.responders(number).includes_any(
                self.rqs.quorums
            ),
            f"write ts-discovery#{number}",
        )
        views = self._discovery.close(number)
        return max(view.max_timestamp() for view in views.values())

    def _round(
        self,
        ts: int,
        value: Any,
        qc2_prime: FrozenSet[QuorumId],
        rnd: int,
        key: Hashable,
        target=None,
    ):
        """``round(i)`` (Figure 5 lines 10-12): send to all servers (or
        the drawn quorum), then wait for a quorum of acks and (rounds
        1-2) the 2Δ timer."""
        for server in self._targets(target):
            self.send(server, WR(ts, value, qc2_prime, rnd, key))
        quorum_acked = self.acks(ts, rnd, key).includes_any(self.rqs.quorums)
        label = f"write ts={ts} round {rnd}"
        if rnd < 3:
            timer = self.sim.timer_at(self.sim.now + self.timeout)
            yield WaitUntil(AllOf(timer, quorum_acked), label)
        else:
            yield WaitUntil(quorum_acked, label)

    def _acked_quorum(
        self, ts: int, rnd: int, cls: int, key: Hashable = DEFAULT_KEY
    ):
        acked = self.acks(ts, rnd, key)
        return self.rqs.some_responding_quorum(acked, cls=cls)

    # -- batched protocol --------------------------------------------------------

    def write_batch(self, elems: List[Tuple[Any, Hashable]]):
        """Up to ``batch_size`` writes through one Figure 5 round
        structure: stamps per element in draw order, one
        :class:`WriteBatch` broadcast per round, one responder set per
        round.  Because every server applies all elements before its
        single ack, the batch-level class-1 / QC'2 / round-2 decisions
        coincide exactly with each element's unbatched decisions over
        the same responder set.  Under a strategy, one quorum draw
        covers the whole batch."""
        now = self.sim.now
        records = [
            self.trace.begin("write", self.pid, now, value, key=key)
            for value, key in elems
        ]
        target = self.selector.next_write() if self.selector else None
        if not self.stamps.multi_writer:
            stamps = [self.stamps.bare(key) for _, key in elems]
            extra_rounds = 0
        else:
            observed = yield from self._discover_batch(
                distinct_keys(elems), target
            )
            stamps = [
                self.stamps.stamped(key, observed[key]) for _, key in elems
            ]
            extra_rounds = 1
        for record, ts in zip(records, stamps):
            record.meta["ts"] = ts
        ops = tuple(
            (ts, value, key) for ts, (value, key) in zip(stamps, elems)
        )
        number = self._batches.open()
        targets = self._targets(target)

        # Round 1 (Figure 5 lines 2-3, batch-wide).
        yield from self._batch_round(number, ops, frozenset(), 1, targets)
        round1 = self._batches.responders(number, 1)
        if self.rqs.some_responding_quorum(round1, cls=1) is not None:
            return self._finish_batch(number, records, 1 + extra_rounds)

        # Lines 4-5: the class-2 quorums that fully acked round 1.
        qc2_prime = frozenset(q2 for q2 in self.rqs.qc2 if q2 <= round1)

        # Round 2 (lines 6-7).
        yield from self._batch_round(number, ops, qc2_prime, 2, targets)
        round2 = self._batches.responders(number, 2)
        if any(q2 <= round2 for q2 in qc2_prime):
            return self._finish_batch(number, records, 2 + extra_rounds)

        # Round 3 (lines 8-9).
        yield from self._batch_round(number, ops, frozenset(), 3, targets)
        return self._finish_batch(number, records, 3 + extra_rounds)

    def _finish_batch(self, number: int, records, rounds: int):
        self._batches.close(number, 1, 2, 3)
        now = self.sim.now
        for record in records:
            self.trace.complete(record, now, "OK", rounds=rounds)
        return records

    def _discover_batch(self, keys: Tuple[Hashable, ...], target=None):
        """One MW discovery collect over the batch's distinct keys —
        per-key highest stored timestamps at some responding quorum."""
        number = self._discovery.open()
        collect = ReadBatch(number, 0, keys)
        for server in self._targets(target):
            self.send(server, collect)
        yield WaitUntil(
            self._discovery.responders(number).includes_any(
                self.rqs.quorums
            ),
            f"write batch ts-discovery#{number}",
        )
        views = self._discovery.close(number)
        return {
            key: max(
                snapshots[i].max_timestamp()
                for snapshots in views.values()
            )
            for i, key in enumerate(keys)
        }

    def _batch_round(self, number, ops, qc2_prime, rnd, targets):
        message = WriteBatch(number, rnd, "", ops, qc2_prime)
        for server in targets:
            self.send(server, message)
        quorum_acked = self._batches.responders(number, rnd).includes_any(
            self.rqs.quorums
        )
        label = f"write batch#{number} round {rnd}"
        if rnd < 3:
            timer = self.sim.timer_at(self.sim.now + self.timeout)
            yield WaitUntil(AllOf(timer, quorum_acked), label)
        else:
            yield WaitUntil(quorum_acked, label)
