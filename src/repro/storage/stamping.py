"""Shared multi-writer machinery: stamp issuing, discovery bookkeeping,
writer fleets.

Every storage protocol lifts to multiple writers the same way — bare
per-key sequence counters in the paper's SWMR mode, totally-ordered
``(seq, writer_id)`` stamps (see
:func:`~repro.storage.history.make_stamp`) preceded by a
timestamp-discovery round in MW mode.  The three helpers here hold the
mechanics once so the four writers (rqs/abd/fastabd/naive) cannot
drift:

* :class:`StampIssuer` — per-key sequence accounting and the
  single-writer/multi-writer timestamp encoding choice.
* :class:`DiscoveryInbox` — numbered pending-query bookkeeping for the
  discovery round's replies (dedup per sender, a signalling
  :class:`~repro.sim.conditions.Counter` per query).
* :func:`writer_fleet` — the writer-client naming/indexing convention
  (``writer``, ``writer2``, …; ``writer_id=None`` when the fleet is a
  single SWMR writer).

Protocols keep what genuinely differs: which message asks the question,
which reply field carries the observed timestamp, and which quorum
shape ends the wait.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.sim.conditions import AckSet, ConditionMap
from repro.storage.history import DEFAULT_KEY, make_stamp, stamp_seq


class StampIssuer:
    """Per-key timestamp issuing for one writer.

    ``writer_id=None`` is the SWMR mode: bare per-key counters, the
    historical encoding, no discovery.  An integer ``writer_id`` is the
    MW mode: :meth:`stamped` folds a discovery round's observed
    timestamp into the writer's own sequence and stamps the result.
    """

    __slots__ = ("writer_id", "_seq")

    def __init__(self, writer_id: Optional[int] = None):
        self.writer_id = writer_id
        self._seq: Dict[Hashable, int] = {}

    @property
    def multi_writer(self) -> bool:
        return self.writer_id is not None

    def seq(self, key: Hashable = DEFAULT_KEY) -> int:
        """The latest sequence number issued for ``key`` (0 initially)."""
        return self._seq.get(key, 0)

    def bare(self, key: Hashable) -> int:
        """Next SWMR timestamp: the bare per-key counter."""
        seq = self._seq.get(key, 0) + 1
        self._seq[key] = seq
        return seq

    def stamped(self, key: Hashable, observed_ts: int) -> int:
        """Next MW stamp, above both ``observed_ts`` and own history."""
        seq = max(stamp_seq(observed_ts), self._seq.get(key, 0)) + 1
        self._seq[key] = seq
        return make_stamp(seq, self.writer_id)


class DiscoveryInbox:
    """Reply bookkeeping for numbered discovery queries.

    :meth:`open` starts a query; :meth:`record` files one sender's
    reply (deduplicated) into the query's signalling responder
    :class:`~repro.sim.conditions.AckSet` — wait on
    :meth:`responders` ``.at_least(k)`` (count quorums) or
    ``.includes_any(quorums)`` (identity quorums); :meth:`close`
    retires the query and hands back the collected replies.
    """

    __slots__ = ("_next", "_pending", "_acks")

    def __init__(self, label: str = "ts-discovery#{}"):
        self._next = 0
        self._pending: Dict[int, Dict[Hashable, Any]] = {}
        self._acks = ConditionMap(AckSet, label)

    def open(self) -> int:
        self._next += 1
        self._pending[self._next] = {}
        return self._next

    def record(self, number: int, sender: Hashable, reply: Any) -> None:
        """File ``reply`` for query ``number`` (no-op if the query is
        closed or the sender already answered)."""
        replies = self._pending.get(number)
        if replies is not None and sender not in replies:
            replies[sender] = reply
            self._acks(number).add(sender)

    def responders(self, number: int) -> AckSet:
        """The query's signalling responder set (for wait conditions)."""
        return self._acks(number)

    def close(self, number: int) -> Dict[Hashable, Any]:
        """Retire the query and return sender → reply.

        Also drops the query's responder set, so long-running writers
        keep O(in-flight) discovery state (late replies to a closed
        query are already no-ops in :meth:`record`)."""
        self._acks.discard(number)
        return self._pending.pop(number)


def writer_fleet(
    n_writers: int, build: Callable[[Hashable, Optional[int]], Any]
) -> List[Any]:
    """The writer clients of one deployment, built by ``build(pid,
    writer_id)``.

    Writer 0 keeps the historical pid ``"writer"`` (single-writer specs
    stay byte-identical); further writers are ``writer2``, ``writer3``,
    … — and only fleets of more than one writer get real ``writer_id``
    indices (a lone writer is the SWMR mode).
    """
    count = max(n_writers, 1)
    return [
        build(
            "writer" if index == 0 else f"writer{index + 1}",
            index if count > 1 else None,
        )
        for index in range(count)
    ]
