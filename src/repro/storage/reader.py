"""The storage reader (Figure 7).

A read has two parts:

1. **Regular part** (lines 20-35): rounds of ``rd`` messages until the
   candidate set ``C = {c | safe(c) ∧ highCand(c)}`` is non-empty; the
   highest-timestamped candidate ``csel`` is selected.  Round 1
   additionally waits out the ``2Δ`` timer, fixes ``highest_ts`` and
   records the responding class-2 quorums ``QC'2``.
2. **Atomicity part** (lines 40-49): a write-back orchestrated by the
   best-case detector ``BCD``:

   * ``BCD(csel, 1, ·)`` holds in round 1 → return immediately
     (1-round read);
   * ``BCD(csel, 2, R)`` non-empty for ``R ∈ {2,3}`` → one round-2
     write-back (2-round read);
   * ``BCD(csel, 2, 1)`` non-empty → a round-1 write-back carrying those
     class-2 quorum ids; if one of them fully acks within ``2Δ`` the read
     returns (2 rounds), else a round-2 write-back completes it
     (3 rounds);
   * otherwise → round-1 then round-2 write-backs (read_rnd + 2 rounds).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.conditions import AckSet, AllOf, AnyOf, ConditionMap
from repro.sim.network import Message
from repro.sim.process import Process
from repro.sim.tasks import WaitUntil
from repro.sim.trace import Trace
from repro.storage.batching import (
    BatchAck,
    BatchAcks,
    ReadBatch,
    ReadBatchAck,
    WriteBatch,
)
from repro.storage.history import DEFAULT_KEY, Pair
from repro.storage.messages import RD, RdAck, WR, WrAck
from repro.storage.predicates import ReadState

QuorumId = FrozenSet[Hashable]


class StorageReader(Process):
    """A reader client (any number of them may exist).

    Reads address one register of the keyed space; all predicate state
    is per-read and the server snapshots it accumulates are scoped to
    the read's key, so the Figure 7 machinery is untouched by the lift.
    """

    def __init__(
        self,
        pid: Hashable,
        rqs: RefinedQuorumSystem,
        trace: Optional[Trace] = None,
        delta: float = 1.0,
        selector=None,
    ):
        super().__init__(pid)
        self.rqs = rqs
        self.trace = trace if trace is not None else Trace()
        self.timeout = 2.0 * delta
        #: Optional :class:`~repro.core.strategy.QuorumSelector`.  When
        #: set, each read draws one quorum from the strategy and sends
        #: only to its members (all rounds and write-backs of that read
        #: share the draw); ``None`` keeps the paper's broadcast model.
        self.selector = selector
        self.read_no = 0
        self._state: Optional[ReadState] = None
        self._current_read_no = -1
        #: Write-back responder sets, keyed (key, ts, rnd) (signalling).
        self._wb = ConditionMap(AckSet, "wb key={} ts={} rnd={}")
        # Batched-read state: per-element ReadStates (fed positionally
        # from each ReadBatchAck) plus one batch-level responder set per
        # round, and batch write-back acks.
        self._batch_states: Dict[int, Tuple[ReadState, ...]] = {}
        self._batch_acks = ConditionMap(AckSet, "rd batch#{} rnd={}")
        self._batches = BatchAcks("rd-wb batch#{} rnd={}")
        # The broadcast target list is the same every round — cache the
        # sorted ground set instead of re-sorting per op (hot path).
        self._ground = tuple(sorted(rqs.ground_set, key=repr))

    # -- network ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, RdAck):
            if payload.read_no == self._current_read_no and self._state is not None:
                self._state.record_ack(message.src, payload.rnd, payload.history)
        elif isinstance(payload, WrAck):
            self._wb(payload.key, payload.ts, payload.rnd).add(message.src)
        elif isinstance(payload, ReadBatchAck):
            states = self._batch_states.get(payload.read_no)
            acks = self._batch_acks.peek(payload.read_no, payload.rnd)
            if states is not None and acks is not None:
                # Feed every element's state before signalling the
                # batch-level condition, so a woken waiter sees all of
                # this responder's snapshots.
                for state, snapshot in zip(states, payload.replies):
                    state.record_ack(message.src, payload.rnd, snapshot)
                acks.add(message.src)
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)

    # -- protocol -------------------------------------------------------------------

    def read(self, key: Hashable = DEFAULT_KEY):
        """Coroutine implementing ``read()`` on one register — spawn on
        the simulator.

        Returns the operation's record; ``record.result`` is the value.
        """
        record = self.trace.begin("read", self.pid, self.sim.now, key=key)
        # One strategy draw per operation: every round and write-back of
        # this read targets the same drawn quorum.
        target = self.selector.next_read() if self.selector else None
        targets = self._targets(target)
        self.read_no += 1
        self._current_read_no = self.read_no
        self._wb = ConditionMap(AckSet, "wb key={} ts={} rnd={}")
        state = ReadState(self.rqs)
        self._state = state

        # -- part 1: regular read (lines 20-35) --
        read_rnd = 0
        csel: Optional[Pair] = None
        while True:
            read_rnd += 1
            timer = (
                self.sim.timer_at(self.sim.now + self.timeout)
                if read_rnd == 1
                else None
            )
            for server in targets:
                self.send(server, RD(self.read_no, read_rnd, key))

            rnd = read_rnd

            def round_quorum() -> bool:
                acked = state.round_responders(rnd)
                return any(q <= acked for q in self.rqs.quorums)

            quorum_cond = state.when(
                round_quorum, f"read#{self.read_no} round {rnd}"
            )
            try:
                yield WaitUntil(quorum_cond)
            finally:
                state.unwatch(quorum_cond)
            if read_rnd == 1:
                yield WaitUntil(timer, f"read#{self.read_no} round-1 timer")
                state.freeze_round1()
            candidates = state.candidates()
            if candidates:
                csel = max(candidates, key=lambda p: p.ts)
                break

        # -- part 2: BCD-orchestrated write-back (lines 40-49) --
        assert csel is not None
        # Surface the selected timestamp for the stamp-ordered online
        # checker (every completion path below returns csel.val).
        record.meta["ts"] = csel.ts
        if read_rnd == 1 and any(state.bcd1(csel, r) for r in (1, 2, 3)):
            self.trace.complete(record, self.sim.now, csel.val, rounds=1)
            return record

        x1 = state.bcd2(csel, 1)
        x23 = state.bcd2(csel, 2) + state.bcd2(csel, 3)
        if read_rnd == 1 and (x1 or x23):
            if x23:
                # Line 42: the writer already stored csel at a full quorum;
                # one round-2 write-back finishes the read in 2 rounds.
                yield from self._writeback(2, csel, frozenset(), key, targets)
                self.trace.complete(record, self.sim.now, csel.val, rounds=2)
                return record
            # Lines 43-47: round-1 write-back carrying the confirmed
            # class-2 quorum ids, with a 2Δ window to finish fast.
            wb_timer = self.sim.timer_at(self.sim.now + self.timeout)
            yield from self._writeback(1, csel, frozenset(x1), key, targets)
            yield WaitUntil(wb_timer, f"read#{self.read_no} writeback timer")
            acked = self._wb(key, csel.ts, 1)
            if any(q2 <= acked for q2 in x1):
                self.trace.complete(record, self.sim.now, csel.val, rounds=2)
                return record
            yield from self._writeback(2, csel, frozenset(), key, targets)
            self.trace.complete(record, self.sim.now, csel.val, rounds=3)
            return record

        # Line 49: full two-round write-back.
        yield from self._writeback(1, csel, frozenset(), key, targets)
        yield from self._writeback(2, csel, frozenset(), key, targets)
        self.trace.complete(
            record, self.sim.now, csel.val, rounds=read_rnd + 2
        )
        return record

    def _writeback(
        self,
        rnd: int,
        c: Pair,
        qc2_ids: FrozenSet[QuorumId],
        key: Hashable = DEFAULT_KEY,
        targets=None,
    ):
        """``writeback(round, c, Set)`` (lines 60-62): write ``c`` back to
        all servers (or the read's drawn quorum) and await a quorum of
        acks."""
        if targets is None:
            targets = self._ground
        for server in targets:
            self.send(server, WR(c.ts, c.val, qc2_ids, rnd, key))
        yield WaitUntil(
            self._wb(key, c.ts, rnd).includes_any(self.rqs.quorums),
            f"read#{self.read_no} writeback round {rnd}",
        )

    def _targets(self, target):
        """The servers one round contacts: the drawn quorum under a
        strategy, the (cached) full ground set otherwise."""
        if target is None:
            return self._ground
        return sorted(target, key=repr)

    # -- batched protocol --------------------------------------------------------

    def read_batch(self, keys: List[Hashable]):
        """Up to ``batch_size`` reads through one Figure 7 regular part:
        per-element :class:`ReadState`s fed positionally from shared
        :class:`ReadBatchAck` replies, one batch-level responder set per
        round.  **Completion is per element**: the elements whose
        candidate sets resolve in collect round ``r`` form a *cohort*
        that immediately launches its own batched line 49 two-round
        write-back — concurrently with further collect rounds for the
        still-unresolved elements — and they complete when that
        write-back quorum-acks.  A contended or lossy element therefore
        caps its *own* tail latency, never the whole batch's.  The BCD
        fast paths are per-element race detections and are skipped —
        always-safe, at worst two extra batch round-trips that unbatched
        BCD would have avoided."""
        now = self.sim.now
        records = [
            self.trace.begin("read", self.pid, now, key=key) for key in keys
        ]
        target = self.selector.next_read() if self.selector else None
        targets = self._targets(target)
        self.read_no += 1
        number = self.read_no
        states = tuple(ReadState(self.rqs) for _ in keys)
        self._batch_states[number] = states

        unresolved = set(range(len(keys)))
        csels: List[Optional[Pair]] = [None] * len(keys)
        resolved_rnd = [0] * len(keys)
        cohorts: List[dict] = []
        read_rnd = 0
        collect_cond = None
        while unresolved or cohorts:
            if unresolved and collect_cond is None:
                # -- regular part (lines 20-35): next batch-wide round.
                # Every round keeps carrying the full key tuple so the
                # positional on_message feed (and the servers' reply
                # shape) never changes; only the harvest below is
                # element-wise.
                read_rnd += 1
                acks = self._batch_acks(number, read_rnd)
                collect = ReadBatch(number, read_rnd, tuple(keys))
                for server in targets:
                    self.send(server, collect)
                quorum = acks.includes_any(self.rqs.quorums)
                collect_cond = (
                    AllOf(
                        self.sim.timer_at(self.sim.now + self.timeout),
                        quorum,
                        label=f"read batch#{number} round-1 timer+quorum",
                    )
                    if read_rnd == 1
                    else quorum
                )
            waits = [cohort["cond"] for cohort in cohorts]
            if collect_cond is not None:
                waits.append(collect_cond)
            yield WaitUntil(
                waits[0] if len(waits) == 1 else AnyOf(
                    *waits, label=f"read batch#{number} progress"
                ),
                f"read batch#{number} round {read_rnd}",
            )
            # -- advance the in-flight cohort write-backs --
            advancing = cohorts
            cohorts = []
            for cohort in advancing:
                if not cohort["cond"].holds():
                    cohorts.append(cohort)
                elif cohort["rnd"] == 1:
                    cohort["rnd"] = 2
                    cohort["cond"] = self._cohort_writeback(
                        cohort, 2, targets
                    )
                    cohorts.append(cohort)
                else:
                    self._batches.close(cohort["no"], 1, 2)
                    now = self.sim.now
                    for i in cohort["members"]:
                        self.trace.complete(
                            records[i], now, csels[i].val,
                            rounds=resolved_rnd[i] + 2,
                        )
            # -- harvest the collect round, if it resolved --
            if collect_cond is None or not collect_cond.holds():
                continue
            collect_cond = None
            if read_rnd == 1:
                for state in states:
                    state.freeze_round1()
            members = []
            for i in sorted(unresolved):
                candidates = states[i].candidates()
                if candidates:
                    csels[i] = max(candidates, key=lambda p: p.ts)
                    resolved_rnd[i] = read_rnd
                    records[i].meta["ts"] = csels[i].ts
                    members.append(i)
            if not members:
                continue
            unresolved.difference_update(members)
            if not unresolved:
                # Regular part done for every element: straggler acks
                # can no longer matter, release the batch state (the
                # cohort write-backs track their own responder sets).
                self._batch_states.pop(number, None)
                for rnd in range(1, read_rnd + 1):
                    self._batch_acks.discard(number, rnd)
            # -- atomicity part for this cohort (line 49), launched now --
            cohort = {
                "no": self._batches.open(),
                "rnd": 1,
                "members": tuple(members),
                "ops": tuple(
                    (csels[i].ts, csels[i].val, keys[i]) for i in members
                ),
            }
            cohort["cond"] = self._cohort_writeback(cohort, 1, targets)
            cohorts.append(cohort)
        return records

    def _cohort_writeback(self, cohort: dict, rnd: int, targets):
        """Send one round of a cohort's batched line 49 write-back and
        return the quorum condition its elements wait on."""
        wb_acks = self._batches.responders(cohort["no"], rnd)
        writeback = WriteBatch(
            cohort["no"], rnd, "", cohort["ops"], frozenset()
        )
        for server in targets:
            self.send(server, writeback)
        return wb_acks.includes_any(self.rqs.quorums)
