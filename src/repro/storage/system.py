"""End-to-end wiring for storage executions.

:class:`StorageSystem` assembles a simulator, a network, an RQS, servers
(benign or Byzantine, with optional crash schedules), one writer and any
number of readers, and exposes convenience drivers for scripted and
randomized workloads.  All operations are recorded in a shared
:class:`~repro.sim.trace.Trace` consumed by the checkers.

This class is the thin wiring behind the ``"rqs-storage"`` protocol of
:mod:`repro.scenarios` — prefer building a
:class:`~repro.scenarios.ScenarioSpec` and calling
:func:`repro.scenarios.run` over instantiating it directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.network import Network, Rule, TraceLevel
from repro.sim.simulator import Simulator
from repro.sim.trace import OperationRecord, Trace
from repro.storage.history import DEFAULT_KEY
from repro.storage.reader import StorageReader
from repro.storage.server import RateLimitedServer, StorageServer
from repro.storage.stamping import writer_fleet
from repro.storage.writer import StorageWriter

ServerFactory = Callable[[Hashable], StorageServer]


class StorageSystem:
    """A fully wired storage deployment over a simulated network.

    The register space is keyed: every operation addresses one register
    (the default key reproduces the historical single register).
    ``n_writers=1`` (the paper's SWMR model) keeps the single ``writer``
    with bare timestamps; ``n_writers > 1`` deploys indexed writers
    whose stamped timestamps are totally ordered across writers (see
    :mod:`repro.storage.writer`).  ``n_keys`` documents the intended
    keyspace width for workload expansion — server state is created
    lazily per key, so it does not bound the keys clients may address.

    ``strategy`` (a :class:`~repro.core.strategy.Strategy`) makes every
    client draw its per-operation quorum from the strategy's seeded
    distribution and contact only its members; ``capacity_model=True``
    deploys :class:`~repro.storage.server.RateLimitedServer` nodes whose
    service costs are the reciprocals of the RQS's per-node capacities.
    Both default off, leaving historical executions bit-identical.
    """

    def __init__(
        self,
        rqs: RefinedQuorumSystem,
        n_readers: int = 2,
        delta: float = 1.0,
        server_factories: Optional[Dict[Hashable, ServerFactory]] = None,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[Sequence[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        n_writers: int = 1,
        n_keys: int = 1,
        strategy=None,
        strategy_seed: int = 0,
        capacity_model: bool = False,
        bounded_history: bool = False,
    ):
        self.rqs = rqs
        self.delta = delta
        self.n_keys = n_keys
        self.strategy = strategy
        self.bounded_history = bounded_history
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )

        self.servers: Dict[Hashable, StorageServer] = {}
        factories = server_factories or {}

        def default_factory(sid):
            return StorageServer(sid, bounded_history=bounded_history)

        if capacity_model:
            # Finite service capacity per node: serving costs the
            # reciprocal of the node's (read/write) capacity.  Explicit
            # per-role factories (Byzantine variants) take precedence.
            read_caps = getattr(rqs, "read_capacity", None) or {}
            write_caps = getattr(rqs, "write_capacity", None) or {}

            def default_factory(sid, _r=read_caps, _w=write_caps):
                return RateLimitedServer(
                    sid,
                    read_cost=1.0 / float(_r.get(sid, 1)),
                    write_cost=1.0 / float(_w.get(sid, 1)),
                    bounded_history=bounded_history,
                )

        for sid in sorted(rqs.ground_set, key=repr):
            factory = factories.get(sid, default_factory)
            server = factory(sid)
            server.bind(self.network)
            self.servers[sid] = server
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)

        def selector_for(pid):
            """A per-client quorum selector (own seeded RNG stream), or
            ``None`` when no strategy is configured — in which case no
            strategy RNG exists at all and executions are bit-identical
            to the historical broadcast behaviour."""
            if strategy is None:
                return None
            from repro.core.strategy import QuorumSelector

            return QuorumSelector(strategy, strategy_seed, pid)

        self.writers: List[StorageWriter] = writer_fleet(
            n_writers,
            lambda pid, writer_id: StorageWriter(
                pid, rqs, self.trace, delta=delta, writer_id=writer_id,
                selector=selector_for(pid),
            ).bind(self.network),
        )
        self.writer = self.writers[0]
        self.readers: List[StorageReader] = []
        for index in range(n_readers):
            pid = f"reader{index + 1}"
            reader = StorageReader(
                pid, rqs, self.trace, delta=delta,
                selector=selector_for(pid),
            )
            reader.bind(self.network)
            self.readers.append(reader)

    # -- scripted drivers ------------------------------------------------------

    def write_at(self, time: float, value: Any):
        """Schedule a write invocation; returns the spawned task holder."""
        holder: Dict[str, Any] = {}

        def start() -> None:
            holder["task"] = self.sim.spawn(
                self.writer.write(value), f"write({value!r})@{time}"
            )

        self.sim.call_at(time, start)
        return holder

    def read_at(self, time: float, reader_index: int = 0):
        """Schedule a read invocation on the given reader."""
        holder: Dict[str, Any] = {}
        reader = self.readers[reader_index]

        def start() -> None:
            holder["task"] = self.sim.spawn(
                reader.read(), f"{reader.pid}.read()@{time}"
            )

        self.sim.call_at(time, start)
        return holder

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_to_completion(self, strict: bool = False) -> None:
        self.sim.run_to_completion(strict=strict)

    # -- synchronous convenience API (examples / quickstart) ----------------------

    def write(self, value: Any, key: Hashable = DEFAULT_KEY) -> OperationRecord:
        """Invoke a write now and run the simulation until it completes."""
        task = self.sim.spawn(
            self.writer.write(value, key), f"write({value!r})"
        )
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("write blocked: no responsive quorum")
        return task.result

    def read(
        self, reader_index: int = 0, key: Hashable = DEFAULT_KEY
    ) -> OperationRecord:
        """Invoke a read now and run the simulation until it completes."""
        reader = self.readers[reader_index]
        task = self.sim.spawn(reader.read(key), f"{reader.pid}.read()")
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("read blocked: no responsive quorum")
        return task.result

    # -- randomized workload -------------------------------------------------------

    def random_workload(
        self,
        n_writes: int,
        n_reads: int,
        horizon: float,
        seed: int = 0,
    ) -> None:
        """Schedule a random mix of operations over ``[0, horizon)``.

        Per the paper's model no client invokes an operation before its
        previous one completed, so each client runs its operations
        sequentially: an operation scheduled for time ``t`` starts at
        ``max(t, previous completion)``.  Writes carry sequential integer
        values (easy to order-check); reads are spread over the readers.
        Deterministic per seed — the draw is shared with the scenario
        layer's :class:`~repro.scenarios.RandomMix` expansion.
        """
        from repro.scenarios.workloads import RandomMix, expand_random_mix

        writes, per_reader = expand_random_mix(
            RandomMix(n_writes, n_reads, horizon=horizon),
            len(self.readers),
            seed,
        )
        self.sim.spawn(
            self._sequential_ops(
                [(w.at, self.writer.write, (w.value, w.key)) for w in writes]
            ),
            "writer-workload",
        )
        for reader_index, ops in per_reader.items():
            reader = self.readers[reader_index]
            self.sim.spawn(
                self._sequential_ops(
                    [(op.at, reader.read, (op.key,)) for op in ops]
                ),
                f"{reader.pid}-workload",
            )

    def _sequential_ops(self, schedule):
        """One client's operations back to back (shared driver)."""
        from repro.sim.tasks import sequential_ops

        return sequential_ops(self.sim, schedule)

    # -- reporting -----------------------------------------------------------------

    def history_stats(self) -> Dict[str, Any]:
        """Aggregate server-side history-matrix accounting.

        ``retained_cells`` is the live cell count summed over benign
        servers, ``max_retained_cells`` the sum of per-server high-water
        marks (an upper bound on co-occurring retention — the flat-RSS
        gate for bounded soaks), ``gc_removed_cells`` the total cells
        garbage-collected.  Byzantine state forgeries mutate histories
        behind the counters, so Byzantine runs report the benign
        servers' view only.
        """
        retained = removed = high_water = 0
        for server in self.servers.values():
            retained += server.history_cells
            removed += server.gc_removed
            high_water += server.max_history_cells
        return {
            "bounded_history": self.bounded_history,
            "retained_cells": retained,
            "max_retained_cells": high_water,
            "gc_removed_cells": removed,
        }

    def operations(self) -> Tuple[OperationRecord, ...]:
        return self.trace.records

    def completed_operations(self) -> Tuple[OperationRecord, ...]:
        return self.trace.completed()
