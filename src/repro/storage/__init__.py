"""The RQS-based Byzantine atomic storage algorithm (Figures 5-7)
plus baselines (ABD, the Section 1.2 fast variant, the broken Figure 1
algorithm)."""

from repro.storage.history import BOTTOM, History, HistoryView, Pair
from repro.storage.messages import RD, RdAck, WR, WrAck
from repro.storage.predicates import ReadState
from repro.storage.reader import StorageReader
from repro.storage.server import (
    FabricatingServer,
    ForgetfulServer,
    SilentServer,
    StorageServer,
)
from repro.storage.regular import RegularReader, RegularStorageSystem
from repro.storage.system import StorageSystem
from repro.storage.writer import StorageWriter

__all__ = [
    "BOTTOM",
    "History",
    "HistoryView",
    "Pair",
    "RD",
    "RdAck",
    "WR",
    "WrAck",
    "ReadState",
    "StorageReader",
    "StorageServer",
    "SilentServer",
    "FabricatingServer",
    "ForgetfulServer",
    "RegularReader",
    "RegularStorageSystem",
    "StorageSystem",
    "StorageWriter",
]
