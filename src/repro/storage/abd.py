"""The classic ABD atomic storage baseline (Attiya–Bar-Noy–Dolev).

Crash-failure model, majority quorums.  Writes take one round; reads take
two rounds **always** (collect + write-back) — the paper's motivating
observation is that no optimally-resilient atomic storage can make both
reads and writes single-round in all cases [11], and ABD is the canonical
two-round-read baseline the RQS algorithm is compared against
(experiment E12).

The register space is keyed: servers keep one highest-timestamped pair
per key, and all messages carry the key they address.  Multi-writer
deployments (``n_writers > 1``) use the standard MW-ABD lift — a
majority collect round discovers the highest stored timestamp, and
writes stamp ``(seq, writer_id)`` (see
:func:`~repro.storage.history.make_stamp`) so timestamps are totally
ordered across writers.  Single-writer systems keep the historical bare
counters and one-round writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.conditions import AckSet, ConditionMap, Counter
from repro.sim.network import Message, Rule
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.network import Network, TraceLevel
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.batching import (
    BatchAck,
    BatchAcks,
    ReadBatch,
    ReadBatchAck,
    WriteBatch,
    distinct_keys,
)
from repro.storage.history import BOTTOM, DEFAULT_KEY, Pair
from repro.storage.stamping import DiscoveryInbox, StampIssuer, writer_fleet


@dataclass(frozen=True, slots=True)
class AbdWrite:
    ts: int
    value: Any
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class AbdWriteAck:
    ts: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class AbdRead:
    read_no: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class AbdReadAck:
    read_no: int
    pair: Pair
    key: Hashable = DEFAULT_KEY


class AbdServer(Process):
    """Stores the highest-timestamped pair it has seen, per key."""

    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.pairs: Dict[Hashable, Pair] = {}

    @property
    def pair(self) -> Pair:
        """The default register's pair (single-register compatibility)."""
        return self.pair_for(DEFAULT_KEY)

    def pair_for(self, key: Hashable) -> Pair:
        return self.pairs.get(key, Pair(0, BOTTOM))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, AbdWrite):
            if payload.ts > self.pair_for(payload.key).ts:
                self.pairs[payload.key] = Pair(payload.ts, payload.value)
            self.send(message.src, AbdWriteAck(payload.ts, payload.key))
        elif isinstance(payload, AbdRead):
            self.send(
                message.src,
                AbdReadAck(payload.read_no, self.pair_for(payload.key),
                           payload.key),
            )
        elif isinstance(payload, WriteBatch):
            # Apply elements in batch (draw) order, one ack for all.
            for ts, value, key in payload.ops:
                if ts > self.pair_for(key).ts:
                    self.pairs[key] = Pair(ts, value)
            self.send(message.src, BatchAck(payload.batch_no, payload.rnd))
        elif isinstance(payload, ReadBatch):
            self.send(
                message.src,
                ReadBatchAck(
                    payload.read_no,
                    payload.rnd,
                    tuple(self.pair_for(key) for key in payload.keys),
                ),
            )


class AbdWriter(Process):
    def __init__(
        self,
        pid: Hashable,
        servers: Tuple[Hashable, ...],
        trace: Trace,
        writer_id: Optional[int] = None,
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.majority = len(servers) // 2 + 1
        self.stamps = StampIssuer(writer_id)
        self._acks = ConditionMap(AckSet, "abd wr key={} ts={}")
        # MW timestamp discovery (a majority collect round).
        self._discovery = DiscoveryInbox("abd ts-discovery#{}")
        self._batches = BatchAcks("abd wr batch#{} rnd={}")

    @property
    def ts(self) -> int:
        return self.stamps.seq()

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, AbdWriteAck):
            # peek, not create: acks straggling in after the write
            # retired its responder set must not resurrect it (the
            # bounded-memory contract of streaming soaks).
            acks = self._acks.peek(payload.key, payload.ts)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, AbdReadAck):
            self._discovery.record(payload.read_no, message.src,
                                   payload.pair)
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)
        elif isinstance(payload, ReadBatchAck):
            # Batched MW discovery replies: the per-key pair tuple.
            self._discovery.record(payload.read_no, message.src,
                                   payload.replies)

    def write(self, value: Any, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("write", self.pid, self.sim.now, value,
                                  key=key)
        if not self.stamps.multi_writer:
            ts, rounds = self.stamps.bare(key), 1
        else:
            number = self._discovery.open()
            acks = self._discovery.responders(number)
            for server in self.servers:
                self.send(server, AbdRead(number, key))
            yield WaitUntil(
                acks.at_least(self.majority),
                f"abd write ts-discovery#{number}",
            )
            pairs = self._discovery.close(number)
            observed = max(p.ts for p in pairs.values())
            ts, rounds = self.stamps.stamped(key, observed), 2
        # Surface the timestamp for the stamp-ordered online checker.
        record.meta["ts"] = ts
        acks = self._acks(key, ts)
        for server in self.servers:
            self.send(server, AbdWrite(ts, value, key))
        yield WaitUntil(
            acks.at_least(self.majority),
            f"abd write ts={ts}",
        )
        self._acks.discard(key, ts)
        self.trace.complete(record, self.sim.now, "OK", rounds=rounds)
        return record

    def write_batch(self, elems: List[Tuple[Any, Hashable]]):
        """One batched round-trip for ``[(value, key), ...]``.

        Stamps are issued per element in draw order; multi-writer
        batches amortize one discovery collect over the batch's
        distinct keys.  All elements complete together at batch end,
        in element order (the online checkers' ordering contract).
        """
        now = self.sim.now
        records = [
            self.trace.begin("write", self.pid, now, value, key=key)
            for value, key in elems
        ]
        if not self.stamps.multi_writer:
            stamps = [self.stamps.bare(key) for _, key in elems]
            rounds = 1
        else:
            keys = distinct_keys(elems)
            number = self._discovery.open()
            acks = self._discovery.responders(number)
            collect = ReadBatch(number, 0, keys)
            for server in self.servers:
                self.send(server, collect)
            yield WaitUntil(
                acks.at_least(self.majority),
                f"abd batch ts-discovery#{number}",
            )
            replies = self._discovery.close(number)
            observed = {
                key: max(pairs[i].ts for pairs in replies.values())
                for i, key in enumerate(keys)
            }
            stamps = [
                self.stamps.stamped(key, observed[key]) for _, key in elems
            ]
            rounds = 2
        for record, ts in zip(records, stamps):
            record.meta["ts"] = ts
        number = self._batches.open()
        batch_acks = self._batches.responders(number, 1)
        message = WriteBatch(
            number, 1, "",
            tuple(
                (ts, value, key)
                for ts, (value, key) in zip(stamps, elems)
            ),
            frozenset(),
        )
        for server in self.servers:
            self.send(server, message)
        yield WaitUntil(
            batch_acks.at_least(self.majority),
            f"abd write batch#{number}",
        )
        self._batches.close(number, 1)
        now = self.sim.now
        for record in records:
            self.trace.complete(record, now, "OK", rounds=rounds)
        return records


class AbdReader(Process):
    def __init__(self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.majority = len(servers) // 2 + 1
        self.read_no = 0
        self._pairs: Dict[int, Dict[Hashable, Pair]] = {}
        self._replies = ConditionMap(Counter, "abd rd#{}")
        self._wb = ConditionMap(AckSet, "abd wb key={} ts={}")
        # Per key, the timestamp of the newest write-back responder set
        # still retained.  Write-back timestamps are monotone per reader
        # (majorities intersect), so superseded sets can never be
        # queried again and are pruned — bounding state to O(keys)
        # while keeping the historical repeat-write-back fast path
        # (same-timestamp write-backs reuse accumulated acks).
        self._wb_ts: Dict[Hashable, int] = {}
        self._batches = BatchAcks("abd rd-wb batch#{} rnd={}")
        self._batch_replies: Dict[int, Dict[Hashable, Tuple[Pair, ...]]] = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, AbdReadAck):
            # Replies for retired reads are dropped (peek, not create) —
            # per-read state lives only while the read is in flight.
            replies = self._pairs.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload.pair
                self._replies(payload.read_no).add()
        elif isinstance(payload, AbdWriteAck):
            acks = self._wb.peek(payload.key, payload.ts)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, ReadBatchAck):
            replies = self._batch_replies.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload.replies
                self._replies(payload.read_no).add()
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)

    def read(self, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("read", self.pid, self.sim.now, key=key)
        self.read_no += 1
        number = self.read_no
        self._pairs[number] = {}
        replies = self._replies(number)
        for server in self.servers:
            self.send(server, AbdRead(number, key))
        yield WaitUntil(
            replies.at_least(self.majority),
            f"abd read#{number} collect",
        )
        best = max(self._pairs[number].values(), key=lambda p: p.ts)
        record.meta["ts"] = best.ts
        # Write-back round (unconditional — the cost RQS avoids).
        previous = self._wb_ts.get(key)
        if previous is not None and previous != best.ts:
            self._wb.discard(key, previous)
        self._wb_ts[key] = best.ts
        wb_acks = self._wb(key, best.ts)
        for server in self.servers:
            self.send(server, AbdWrite(best.ts, best.val, key))
        yield WaitUntil(
            wb_acks.at_least(self.majority),
            f"abd read#{number} writeback",
        )
        self._pairs.pop(number, None)
        self._replies.discard(number)
        self.trace.complete(record, self.sim.now, best.val, rounds=2)
        return record

    def read_batch(self, keys: List[Hashable]):
        """One batched collect + one batched write-back for ``keys``.

        Every element's best pair is selected from the same majority's
        replies and written back in a single :class:`WriteBatch`.  The
        per-element completion contract (each element completes as soon
        as its quorum fills) is degenerate here: acks are
        batch-granular and ABD's atomicity needs the write-back before
        *any* element returns, so every element's quorum fills at the
        write-back ack instant — all elements complete there, in
        element order.
        """
        now = self.sim.now
        records = [
            self.trace.begin("read", self.pid, now, key=key) for key in keys
        ]
        self.read_no += 1
        number = self.read_no
        self._batch_replies[number] = {}
        replies = self._replies(number)
        collect = ReadBatch(number, 1, tuple(keys))
        for server in self.servers:
            self.send(server, collect)
        yield WaitUntil(
            replies.at_least(self.majority),
            f"abd read batch#{number} collect",
        )
        data = self._batch_replies.pop(number)
        self._replies.discard(number)
        bests = [
            max((pairs[i] for pairs in data.values()), key=lambda p: p.ts)
            for i in range(len(keys))
        ]
        for record, best in zip(records, bests):
            record.meta["ts"] = best.ts
        wb_no = self._batches.open()
        wb_acks = self._batches.responders(wb_no, 2)
        writeback = WriteBatch(
            wb_no, 2, "",
            tuple(
                (best.ts, best.val, key) for best, key in zip(bests, keys)
            ),
            frozenset(),
        )
        for server in self.servers:
            self.send(server, writeback)
        yield WaitUntil(
            wb_acks.at_least(self.majority),
            f"abd read batch#{number} writeback",
        )
        self._batches.close(wb_no, 2)
        now = self.sim.now
        for record, best in zip(records, bests):
            self.trace.complete(record, now, best.val, rounds=2)
        return records


class AbdSystem:
    """Wired ABD deployment mirroring :class:`StorageSystem`'s surface."""

    def __init__(
        self,
        n: int = 5,
        n_readers: int = 2,
        delta: float = 1.0,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        n_writers: int = 1,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        server_ids = tuple(range(1, n + 1))
        self.servers = {
            sid: AbdServer(sid).bind(self.network) for sid in server_ids
        }
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)
        self.writers: List[AbdWriter] = writer_fleet(
            n_writers,
            lambda pid, writer_id: AbdWriter(
                pid, server_ids, self.trace, writer_id=writer_id
            ).bind(self.network),
        )
        self.writer = self.writers[0]
        self.readers = [
            AbdReader(f"reader{i + 1}", server_ids, self.trace).bind(
                self.network
            )
            for i in range(n_readers)
        ]

    def write(self, value: Any, key: Hashable = DEFAULT_KEY) -> OperationRecord:
        task = self.sim.spawn(
            self.writer.write(value, key), f"write({value!r})"
        )
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("abd write blocked")
        return task.result

    def read(
        self, reader_index: int = 0, key: Hashable = DEFAULT_KEY
    ) -> OperationRecord:
        reader = self.readers[reader_index]
        task = self.sim.spawn(reader.read(key), f"{reader.pid}.read()")
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("abd read blocked")
        return task.result
