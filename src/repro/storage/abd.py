"""The classic ABD atomic storage baseline (Attiya–Bar-Noy–Dolev).

Crash-failure model, majority quorums.  Writes take one round; reads take
two rounds **always** (collect + write-back) — the paper's motivating
observation is that no optimally-resilient atomic storage can make both
reads and writes single-round in all cases [11], and ABD is the canonical
two-round-read baseline the RQS algorithm is compared against
(experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.conditions import AckSet, ConditionMap, Counter
from repro.sim.network import Message, Rule
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.network import Network, TraceLevel
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.history import BOTTOM, Pair


@dataclass(frozen=True)
class AbdWrite:
    ts: int
    value: Any


@dataclass(frozen=True)
class AbdWriteAck:
    ts: int


@dataclass(frozen=True)
class AbdRead:
    read_no: int


@dataclass(frozen=True)
class AbdReadAck:
    read_no: int
    pair: Pair


class AbdServer(Process):
    """Stores the highest-timestamped pair it has seen."""

    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.pair = Pair(0, BOTTOM)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, AbdWrite):
            if payload.ts > self.pair.ts:
                self.pair = Pair(payload.ts, payload.value)
            self.send(message.src, AbdWriteAck(payload.ts))
        elif isinstance(payload, AbdRead):
            self.send(message.src, AbdReadAck(payload.read_no, self.pair))


class AbdWriter(Process):
    def __init__(self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.majority = len(servers) // 2 + 1
        self.ts = 0
        self._acks = ConditionMap(AckSet, "abd wr ts={}")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, AbdWriteAck):
            self._acks(payload.ts).add(message.src)

    def write(self, value: Any):
        record = self.trace.begin("write", self.pid, self.sim.now, value)
        self.ts += 1
        ts = self.ts
        for server in self.servers:
            self.send(server, AbdWrite(ts, value))
        yield WaitUntil(
            self._acks(ts).at_least(self.majority), f"abd write ts={ts}"
        )
        self.trace.complete(record, self.sim.now, "OK", rounds=1)
        return record


class AbdReader(Process):
    def __init__(self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.majority = len(servers) // 2 + 1
        self.read_no = 0
        self._pairs: Dict[int, Dict[Hashable, Pair]] = {}
        self._replies = ConditionMap(Counter, "abd rd#{}")
        self._wb = ConditionMap(AckSet, "abd wb ts={}")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, AbdReadAck):
            replies = self._pairs.setdefault(payload.read_no, {})
            if message.src not in replies:
                replies[message.src] = payload.pair
                self._replies(payload.read_no).add()
        elif isinstance(payload, AbdWriteAck):
            self._wb(payload.ts).add(message.src)

    def read(self):
        record = self.trace.begin("read", self.pid, self.sim.now)
        self.read_no += 1
        number = self.read_no
        for server in self.servers:
            self.send(server, AbdRead(number))
        yield WaitUntil(
            self._replies(number).at_least(self.majority),
            f"abd read#{number} collect",
        )
        best = max(self._pairs[number].values(), key=lambda p: p.ts)
        # Write-back round (unconditional — the cost RQS avoids).
        for server in self.servers:
            self.send(server, AbdWrite(best.ts, best.val))
        yield WaitUntil(
            self._wb(best.ts).at_least(self.majority),
            f"abd read#{number} writeback",
        )
        self.trace.complete(record, self.sim.now, best.val, rounds=2)
        return record


class AbdSystem:
    """Wired ABD deployment mirroring :class:`StorageSystem`'s surface."""

    def __init__(
        self,
        n: int = 5,
        n_readers: int = 2,
        delta: float = 1.0,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace()
        server_ids = tuple(range(1, n + 1))
        self.servers = {
            sid: AbdServer(sid).bind(self.network) for sid in server_ids
        }
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)
        self.writer = AbdWriter("writer", server_ids, self.trace)
        self.writer.bind(self.network)
        self.readers = [
            AbdReader(f"reader{i + 1}", server_ids, self.trace).bind(
                self.network
            )
            for i in range(n_readers)
        ]

    def write(self, value: Any) -> OperationRecord:
        task = self.sim.spawn(self.writer.write(value), f"write({value!r})")
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("abd write blocked")
        return task.result

    def read(self, reader_index: int = 0) -> OperationRecord:
        reader = self.readers[reader_index]
        task = self.sim.spawn(reader.read(), f"{reader.pid}.read()")
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("abd read blocked")
        return task.result
