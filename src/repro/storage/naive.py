"""The *broken* greedy algorithm of Figure 1 (for the E1 counterexample).

This algorithm expedites every operation in a single round as soon as
``n − t`` servers respond — exactly the behaviour the paper proves
incorrect when the fast quorums are only 3-of-5 (``Q1 ∩ Q2 ∩ Q3 = ∅``,
Figure 2(a)):

* ``write(v)``: send ``⟨ts, v⟩`` to all; complete on ``n − t`` acks.
* ``read()``: collect pairs from ``n − t`` servers; return the
  highest-timestamped pair immediately — **no write-back**.

Kept deliberately faithful to the counterexample: with scripted message
schedules the four executions of Figure 1 drive it into returning a
value that a later read can no longer see (stale read in ex4), which the
atomicity checker flags.

The register space is keyed like the other baselines (per-key server
pairs, keys on every message); multi-writer deployments stamp
``(seq, writer_id)`` after an ``n − t`` discovery round — the greedy
one-round completion rule, the algorithm's actual flaw, is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.conditions import AckSet, ConditionMap, Counter
from repro.sim.network import Message, Network, Rule, TraceLevel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.history import BOTTOM, DEFAULT_KEY, Pair
from repro.storage.stamping import DiscoveryInbox, StampIssuer, writer_fleet


@dataclass(frozen=True)
class NWrite:
    ts: int
    value: Any
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True)
class NWriteAck:
    ts: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True)
class NRead:
    read_no: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True)
class NReadAck:
    read_no: int
    pair: Pair
    key: Hashable = DEFAULT_KEY


class NaiveServer(Process):
    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.pairs: Dict[Hashable, Pair] = {}

    @property
    def pair(self) -> Pair:
        return self.pair_for(DEFAULT_KEY)

    def pair_for(self, key: Hashable) -> Pair:
        return self.pairs.get(key, Pair(0, BOTTOM))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NWrite):
            if payload.ts > self.pair_for(payload.key).ts:
                self.pairs[payload.key] = Pair(payload.ts, payload.value)
            self.send(message.src, NWriteAck(payload.ts, payload.key))
        elif isinstance(payload, NRead):
            self.send(
                message.src,
                NReadAck(payload.read_no, self.pair_for(payload.key),
                         payload.key),
            )


class NaiveWriter(Process):
    def __init__(
        self,
        pid: Hashable,
        servers: Tuple[Hashable, ...],
        trace: Trace,
        t: int,
        writer_id: Optional[int] = None,
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.quorum = len(servers) - t
        self.stamps = StampIssuer(writer_id)
        self._acks = ConditionMap(AckSet, "naive wr key={} ts={}")
        self._discovery = DiscoveryInbox("naive ts-discovery#{}")

    @property
    def ts(self) -> int:
        return self.stamps.seq()

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NWriteAck):
            # peek, not create: straggler acks must not resurrect a
            # completed write's pruned responder set.
            acks = self._acks.peek(payload.key, payload.ts)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, NReadAck):
            self._discovery.record(payload.read_no, message.src,
                                   payload.pair)

    def write(self, value: Any, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("write", self.pid, self.sim.now, value,
                                  key=key)
        if not self.stamps.multi_writer:
            ts, rounds = self.stamps.bare(key), 1
        else:
            number = self._discovery.open()
            discovery_acks = self._discovery.responders(number)
            for server in self.servers:
                self.send(server, NRead(number, key))
            yield WaitUntil(
                discovery_acks.at_least(self.quorum),
                f"naive write ts-discovery#{number}",
            )
            pairs = self._discovery.close(number)
            observed = max(p.ts for p in pairs.values())
            ts, rounds = self.stamps.stamped(key, observed), 2
        # Surface the timestamp for the stamp-ordered online checker.
        record.meta["ts"] = ts
        acks = self._acks(key, ts)
        for server in self.servers:
            self.send(server, NWrite(ts, value, key))
        yield WaitUntil(
            acks.at_least(self.quorum),
            f"naive write ts={ts}",
        )
        self._acks.discard(key, ts)
        self.trace.complete(record, self.sim.now, "OK", rounds=rounds)
        return record


class NaiveReader(Process):
    def __init__(
        self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace, t: int
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.quorum = len(servers) - t
        self.read_no = 0
        self._acks: Dict[int, Dict[Hashable, Pair]] = {}
        self._replies = ConditionMap(Counter, "naive rd#{}")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NReadAck):
            replies = self._acks.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload.pair
                self._replies(payload.read_no).add()

    def read(self, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("read", self.pid, self.sim.now, key=key)
        self.read_no += 1
        number = self.read_no
        self._acks[number] = {}
        replies = self._replies(number)
        for server in self.servers:
            self.send(server, NRead(number, key))
        yield WaitUntil(
            replies.at_least(self.quorum),
            f"naive read#{number}",
        )
        best = max(self._acks[number].values(), key=lambda p: p.ts)
        record.meta["ts"] = best.ts
        self._acks.pop(number, None)
        self._replies.discard(number)
        self.trace.complete(record, self.sim.now, best.val, rounds=1)
        return record


class NaiveSystem:
    """The Figure 1 deployment: 5 servers, t=2, greedy 3-server fast ops."""

    def __init__(
        self,
        n: int = 5,
        t: int = 2,
        n_readers: int = 2,
        delta: float = 1.0,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        n_writers: int = 1,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        server_ids = tuple(range(1, n + 1))
        self.servers = {
            sid: NaiveServer(sid).bind(self.network) for sid in server_ids
        }
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)
        self.writers: List[NaiveWriter] = writer_fleet(
            n_writers,
            lambda pid, writer_id: NaiveWriter(
                pid, server_ids, self.trace, t=t, writer_id=writer_id
            ).bind(self.network),
        )
        self.writer = self.writers[0]
        self.readers = [
            NaiveReader(f"reader{i + 1}", server_ids, self.trace, t=t).bind(
                self.network
            )
            for i in range(n_readers)
        ]
