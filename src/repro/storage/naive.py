"""The *broken* greedy algorithm of Figure 1 (for the E1 counterexample).

This algorithm expedites every operation in a single round as soon as
``n − t`` servers respond — exactly the behaviour the paper proves
incorrect when the fast quorums are only 3-of-5 (``Q1 ∩ Q2 ∩ Q3 = ∅``,
Figure 2(a)):

* ``write(v)``: send ``⟨ts, v⟩`` to all; complete on ``n − t`` acks.
* ``read()``: collect pairs from ``n − t`` servers; return the
  highest-timestamped pair immediately — **no write-back**.

Kept deliberately faithful to the counterexample: with scripted message
schedules the four executions of Figure 1 drive it into returning a
value that a later read can no longer see (stale read in ex4), which the
atomicity checker flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.conditions import AckSet, ConditionMap, Counter
from repro.sim.network import Message, Network, Rule, TraceLevel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.history import BOTTOM, Pair


@dataclass(frozen=True)
class NWrite:
    ts: int
    value: Any


@dataclass(frozen=True)
class NWriteAck:
    ts: int


@dataclass(frozen=True)
class NRead:
    read_no: int


@dataclass(frozen=True)
class NReadAck:
    read_no: int
    pair: Pair


class NaiveServer(Process):
    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.pair = Pair(0, BOTTOM)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NWrite):
            if payload.ts > self.pair.ts:
                self.pair = Pair(payload.ts, payload.value)
            self.send(message.src, NWriteAck(payload.ts))
        elif isinstance(payload, NRead):
            self.send(message.src, NReadAck(payload.read_no, self.pair))


class NaiveWriter(Process):
    def __init__(
        self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace, t: int
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.quorum = len(servers) - t
        self.ts = 0
        self._acks = ConditionMap(AckSet, "naive wr ts={}")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NWriteAck):
            self._acks(payload.ts).add(message.src)

    def write(self, value: Any):
        record = self.trace.begin("write", self.pid, self.sim.now, value)
        self.ts += 1
        ts = self.ts
        for server in self.servers:
            self.send(server, NWrite(ts, value))
        yield WaitUntil(
            self._acks(ts).at_least(self.quorum), f"naive write ts={ts}"
        )
        self.trace.complete(record, self.sim.now, "OK", rounds=1)
        return record


class NaiveReader(Process):
    def __init__(
        self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace, t: int
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.quorum = len(servers) - t
        self.read_no = 0
        self._acks: Dict[int, Dict[Hashable, Pair]] = {}
        self._replies = ConditionMap(Counter, "naive rd#{}")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NReadAck):
            replies = self._acks.setdefault(payload.read_no, {})
            if message.src not in replies:
                replies[message.src] = payload.pair
                self._replies(payload.read_no).add()

    def read(self):
        record = self.trace.begin("read", self.pid, self.sim.now)
        self.read_no += 1
        number = self.read_no
        for server in self.servers:
            self.send(server, NRead(number))
        yield WaitUntil(
            self._replies(number).at_least(self.quorum),
            f"naive read#{number}",
        )
        best = max(self._acks[number].values(), key=lambda p: p.ts)
        self.trace.complete(record, self.sim.now, best.val, rounds=1)
        return record


class NaiveSystem:
    """The Figure 1 deployment: 5 servers, t=2, greedy 3-server fast ops."""

    def __init__(
        self,
        n: int = 5,
        t: int = 2,
        n_readers: int = 2,
        delta: float = 1.0,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace()
        server_ids = tuple(range(1, n + 1))
        self.servers = {
            sid: NaiveServer(sid).bind(self.network) for sid in server_ids
        }
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)
        self.writer = NaiveWriter("writer", server_ids, self.trace, t=t)
        self.writer.bind(self.network)
        self.readers = [
            NaiveReader(f"reader{i + 1}", server_ids, self.trace, t=t).bind(
                self.network
            )
            for i in range(n_readers)
        ]
