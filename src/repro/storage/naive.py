"""The *broken* greedy algorithm of Figure 1 (for the E1 counterexample).

This algorithm expedites every operation in a single round as soon as
``n − t`` servers respond — exactly the behaviour the paper proves
incorrect when the fast quorums are only 3-of-5 (``Q1 ∩ Q2 ∩ Q3 = ∅``,
Figure 2(a)):

* ``write(v)``: send ``⟨ts, v⟩`` to all; complete on ``n − t`` acks.
* ``read()``: collect pairs from ``n − t`` servers; return the
  highest-timestamped pair immediately — **no write-back**.

Kept deliberately faithful to the counterexample: with scripted message
schedules the four executions of Figure 1 drive it into returning a
value that a later read can no longer see (stale read in ex4), which the
atomicity checker flags.

The register space is keyed like the other baselines (per-key server
pairs, keys on every message); multi-writer deployments stamp
``(seq, writer_id)`` after an ``n − t`` discovery round — the greedy
one-round completion rule, the algorithm's actual flaw, is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.conditions import AckSet, ConditionMap, Counter
from repro.sim.network import Message, Network, Rule, TraceLevel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.batching import (
    BatchAck,
    BatchAcks,
    ReadBatch,
    ReadBatchAck,
    WriteBatch,
    distinct_keys,
)
from repro.storage.history import BOTTOM, DEFAULT_KEY, Pair
from repro.storage.stamping import DiscoveryInbox, StampIssuer, writer_fleet


@dataclass(frozen=True, slots=True)
class NWrite:
    ts: int
    value: Any
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class NWriteAck:
    ts: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class NRead:
    read_no: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class NReadAck:
    read_no: int
    pair: Pair
    key: Hashable = DEFAULT_KEY


class NaiveServer(Process):
    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.pairs: Dict[Hashable, Pair] = {}

    @property
    def pair(self) -> Pair:
        return self.pair_for(DEFAULT_KEY)

    def pair_for(self, key: Hashable) -> Pair:
        return self.pairs.get(key, Pair(0, BOTTOM))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NWrite):
            if payload.ts > self.pair_for(payload.key).ts:
                self.pairs[payload.key] = Pair(payload.ts, payload.value)
            self.send(message.src, NWriteAck(payload.ts, payload.key))
        elif isinstance(payload, NRead):
            self.send(
                message.src,
                NReadAck(payload.read_no, self.pair_for(payload.key),
                         payload.key),
            )
        elif isinstance(payload, WriteBatch):
            for ts, value, key in payload.ops:
                if ts > self.pair_for(key).ts:
                    self.pairs[key] = Pair(ts, value)
            self.send(message.src, BatchAck(payload.batch_no, payload.rnd))
        elif isinstance(payload, ReadBatch):
            self.send(
                message.src,
                ReadBatchAck(
                    payload.read_no,
                    payload.rnd,
                    tuple(self.pair_for(key) for key in payload.keys),
                ),
            )


class NaiveWriter(Process):
    def __init__(
        self,
        pid: Hashable,
        servers: Tuple[Hashable, ...],
        trace: Trace,
        t: int,
        writer_id: Optional[int] = None,
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.quorum = len(servers) - t
        self.stamps = StampIssuer(writer_id)
        self._acks = ConditionMap(AckSet, "naive wr key={} ts={}")
        self._discovery = DiscoveryInbox("naive ts-discovery#{}")
        self._batches = BatchAcks("naive wr batch#{} rnd={}")

    @property
    def ts(self) -> int:
        return self.stamps.seq()

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NWriteAck):
            # peek, not create: straggler acks must not resurrect a
            # completed write's pruned responder set.
            acks = self._acks.peek(payload.key, payload.ts)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, NReadAck):
            self._discovery.record(payload.read_no, message.src,
                                   payload.pair)
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)
        elif isinstance(payload, ReadBatchAck):
            self._discovery.record(payload.read_no, message.src,
                                   payload.replies)

    def write(self, value: Any, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("write", self.pid, self.sim.now, value,
                                  key=key)
        if not self.stamps.multi_writer:
            ts, rounds = self.stamps.bare(key), 1
        else:
            number = self._discovery.open()
            discovery_acks = self._discovery.responders(number)
            for server in self.servers:
                self.send(server, NRead(number, key))
            yield WaitUntil(
                discovery_acks.at_least(self.quorum),
                f"naive write ts-discovery#{number}",
            )
            pairs = self._discovery.close(number)
            observed = max(p.ts for p in pairs.values())
            ts, rounds = self.stamps.stamped(key, observed), 2
        # Surface the timestamp for the stamp-ordered online checker.
        record.meta["ts"] = ts
        acks = self._acks(key, ts)
        for server in self.servers:
            self.send(server, NWrite(ts, value, key))
        yield WaitUntil(
            acks.at_least(self.quorum),
            f"naive write ts={ts}",
        )
        self._acks.discard(key, ts)
        self.trace.complete(record, self.sim.now, "OK", rounds=rounds)
        return record

    def write_batch(self, elems: List[Tuple[Any, Hashable]]):
        """One greedy batched round-trip for ``[(value, key), ...]``
        (stamps per element in draw order; MW batches amortize one
        discovery collect over the batch's distinct keys)."""
        now = self.sim.now
        records = [
            self.trace.begin("write", self.pid, now, value, key=key)
            for value, key in elems
        ]
        if not self.stamps.multi_writer:
            stamps = [self.stamps.bare(key) for _, key in elems]
            rounds = 1
        else:
            keys = distinct_keys(elems)
            number = self._discovery.open()
            discovery_acks = self._discovery.responders(number)
            collect = ReadBatch(number, 0, keys)
            for server in self.servers:
                self.send(server, collect)
            yield WaitUntil(
                discovery_acks.at_least(self.quorum),
                f"naive batch ts-discovery#{number}",
            )
            replies = self._discovery.close(number)
            observed = {
                key: max(pairs[i].ts for pairs in replies.values())
                for i, key in enumerate(keys)
            }
            stamps = [
                self.stamps.stamped(key, observed[key]) for _, key in elems
            ]
            rounds = 2
        for record, ts in zip(records, stamps):
            record.meta["ts"] = ts
        number = self._batches.open()
        batch_acks = self._batches.responders(number, 1)
        message = WriteBatch(
            number, 1, "",
            tuple(
                (ts, value, key)
                for ts, (value, key) in zip(stamps, elems)
            ),
            frozenset(),
        )
        for server in self.servers:
            self.send(server, message)
        yield WaitUntil(
            batch_acks.at_least(self.quorum),
            f"naive write batch#{number}",
        )
        self._batches.close(number, 1)
        now = self.sim.now
        for record in records:
            self.trace.complete(record, now, "OK", rounds=rounds)
        return records


class NaiveReader(Process):
    def __init__(
        self, pid: Hashable, servers: Tuple[Hashable, ...], trace: Trace, t: int
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.quorum = len(servers) - t
        self.read_no = 0
        self._acks: Dict[int, Dict[Hashable, Pair]] = {}
        self._replies = ConditionMap(Counter, "naive rd#{}")
        self._batch_replies: Dict[int, Dict[Hashable, Tuple[Pair, ...]]] = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NReadAck):
            replies = self._acks.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload.pair
                self._replies(payload.read_no).add()
        elif isinstance(payload, ReadBatchAck):
            replies = self._batch_replies.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload.replies
                self._replies(payload.read_no).add()

    def read(self, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("read", self.pid, self.sim.now, key=key)
        self.read_no += 1
        number = self.read_no
        self._acks[number] = {}
        replies = self._replies(number)
        for server in self.servers:
            self.send(server, NRead(number, key))
        yield WaitUntil(
            replies.at_least(self.quorum),
            f"naive read#{number}",
        )
        best = max(self._acks[number].values(), key=lambda p: p.ts)
        record.meta["ts"] = best.ts
        self._acks.pop(number, None)
        self._replies.discard(number)
        self.trace.complete(record, self.sim.now, best.val, rounds=1)
        return record

    def read_batch(self, keys: List[Hashable]):
        """One greedy batched collect for ``keys`` — like the unbatched
        read, no write-back (the algorithm's deliberate flaw).  The
        per-element completion contract is trivially satisfied: acks
        are batch-granular, so every element's quorum fills at the one
        collect instant and all elements complete there."""
        now = self.sim.now
        records = [
            self.trace.begin("read", self.pid, now, key=key) for key in keys
        ]
        self.read_no += 1
        number = self.read_no
        self._batch_replies[number] = {}
        replies = self._replies(number)
        collect = ReadBatch(number, 1, tuple(keys))
        for server in self.servers:
            self.send(server, collect)
        yield WaitUntil(
            replies.at_least(self.quorum),
            f"naive read batch#{number}",
        )
        data = self._batch_replies.pop(number)
        self._replies.discard(number)
        now = self.sim.now
        for i, (record, key) in enumerate(zip(records, keys)):
            best = max((pairs[i] for pairs in data.values()),
                       key=lambda p: p.ts)
            record.meta["ts"] = best.ts
            self.trace.complete(record, now, best.val, rounds=1)
        return records


class NaiveSystem:
    """The Figure 1 deployment: 5 servers, t=2, greedy 3-server fast ops."""

    def __init__(
        self,
        n: int = 5,
        t: int = 2,
        n_readers: int = 2,
        delta: float = 1.0,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        n_writers: int = 1,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        server_ids = tuple(range(1, n + 1))
        self.servers = {
            sid: NaiveServer(sid).bind(self.network) for sid in server_ids
        }
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)
        self.writers: List[NaiveWriter] = writer_fleet(
            n_writers,
            lambda pid, writer_id: NaiveWriter(
                pid, server_ids, self.trace, t=t, writer_id=writer_id
            ).bind(self.network),
        )
        self.writer = self.writers[0]
        self.readers = [
            NaiveReader(f"reader{i + 1}", server_ids, self.trace, t=t).bind(
                self.network
            )
            for i in range(n_readers)
        ]
