"""Reader-side predicates of the storage algorithm (Figure 7, lines 1-9).

The reader accumulates per-server history snapshots (``view``) and the
set of servers that answered at least one ``rd`` message (from which the
``Responded`` quorum set derives).  All predicates are pure functions of
that state, bundled in :class:`ReadState` so the reader coroutine stays
close to the paper's pseudocode.

Predicate catalogue (paper line numbers in brackets):

* ``valid1(c, Q)`` [3] — a basic subset of ``Q`` reports ``c`` in slot 1.
* ``valid2(c, Q)`` [4] — some server of ``Q`` reports ``c`` in slot 2.
* ``valid3(c, Q)`` [5] — some class-2 quorum ``Q2`` and ``B ∈ B`` with
  ``P3b(Q2, Q, B)`` such that every server in ``Q2 ∩ Q \\ B`` reports
  ``c`` in slot 1 *with quorum id* ``Q2``.
* ``invalid(c)`` [6] — some responded quorum satisfies none of the
  above, or ``c.ts`` exceeds ``highest_ts``.
* ``read(c, i)`` [7], ``safe(c)`` [8], ``highCand(c)`` [9].
* ``BCD(c, 1, R)`` / ``BCD(c, 2, R)`` [1-2] — the best-case detector.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.conditions import Check, Condition
from repro.storage.history import EMPTY_VIEW, HistoryView, Pair

ServerId = Hashable
QuorumId = FrozenSet[ServerId]


class ReadState:
    """The predicate-relevant state of one read operation.

    Every predicate here is a pure function of the acks recorded by
    :meth:`record_ack`, so the state doubles as a signal hub for the
    indexed event loop: reader waits built via :meth:`when` are
    signalled exactly when an ack lands (and never re-polled
    otherwise).
    """

    def __init__(self, rqs: RefinedQuorumSystem):
        self.rqs = rqs
        self.view: Dict[ServerId, HistoryView] = {}
        self.acked_by_round: Dict[int, Set[ServerId]] = {}
        self.qc2_responded: Tuple[QuorumId, ...] = ()   # QC'2 (line 30-31)
        self.highest_ts: int = 0                        # (line 29)
        self._watchers: List[Condition] = []

    # -- state updates ---------------------------------------------------------

    def record_ack(self, server: ServerId, rnd: int, history: HistoryView) -> None:
        """Apply a ``rd_ack`` (Figure 7, lines 50-53)."""
        self.view[server] = history
        self.acked_by_round.setdefault(rnd, set()).add(server)
        for condition in self._watchers:
            condition.signal()

    def when(self, predicate, label: str = "") -> Condition:
        """An ack-indexed wait on any predicate over this state.

        Pair with :meth:`unwatch` once the wait resumes, so completed
        rounds stop fanning signals out to dead conditions.
        """
        condition = Check(predicate, label)
        self._watchers.append(condition)
        return condition

    def unwatch(self, condition: Condition) -> None:
        self._watchers.remove(condition)

    def responded_servers(self) -> Set[ServerId]:
        """Servers that answered at least one ``rd`` of this read."""
        return set(self.view)

    def responded_quorums(self) -> Tuple[QuorumId, ...]:
        """The ``Responded`` set (lines 52-53): fully-answering quorums."""
        got = self.responded_servers()
        return tuple(q for q in self.rqs.quorums if q <= got)

    def round_responders(self, rnd: int) -> Set[ServerId]:
        return set(self.acked_by_round.get(rnd, ()))

    def freeze_round1(self) -> None:
        """End-of-round-1 bookkeeping (lines 27-32): fix ``highest_ts``
        and record the class-2 quorums that responded in round 1."""
        self.highest_ts = max(
            (view.max_timestamp() for view in self.view.values()), default=0
        )
        round1 = self.round_responders(1)
        self.qc2_responded = tuple(
            q2 for q2 in self.rqs.qc2 if q2 <= round1
        )

    # -- low-level lookups --------------------------------------------------------

    def entry(self, server: ServerId, ts: int, rnd: int):
        return self.view.get(server, EMPTY_VIEW).get(ts, rnd)

    def read_pred(self, c: Pair, server: ServerId) -> bool:
        """``read(c, i)`` (line 7): ``c`` in slot 1 or 2 of the snapshot."""
        return (
            self.entry(server, c.ts, 1).pair == c
            or self.entry(server, c.ts, 2).pair == c
        )

    def observed_pairs(self) -> List[Pair]:
        """All candidate pairs: anything readable from any snapshot."""
        seen: Set[Pair] = set()
        for view in self.view.values():
            seen.update(view.pairs())
        return sorted(seen, key=lambda p: p.ts)

    # -- validity predicates ---------------------------------------------------------

    def valid1(self, c: Pair, quorum: QuorumId) -> bool:
        """Line 3: a basic ``T ⊆ Q`` stores ``c`` in slot 1.

        The maximal candidate ``T`` suffices: supersets of basic sets are
        basic (the adversary is subset-closed).
        """
        holders = {
            s for s in quorum if self.entry(s, c.ts, 1).pair == c
        }
        return self.rqs.is_basic(holders) if holders else False

    def valid2(self, c: Pair, quorum: QuorumId) -> bool:
        """Line 4: some server of ``Q`` stores ``c`` in slot 2."""
        return any(
            self.entry(s, c.ts, 2).pair == c for s in quorum
        )

    def valid3(self, c: Pair, quorum: QuorumId) -> bool:
        """Line 5: ∃ Q2 ∈ QC2, ∃ B ∈ B with P3b(Q2, Q, B) such that every
        server of ``Q2 ∩ Q \\ B`` stores ``c`` in slot 1 with id ``Q2``.

        For a fixed ``Q2`` the minimal witness ``B`` is the set of
        non-conforming servers of ``Q2 ∩ Q`` (any valid ``B`` must cover
        it, and P3b is anti-monotone in ``B``), so only that ``B`` needs
        checking.
        """
        for q2 in self.rqs.qc2:
            base = q2 & quorum
            conforming = {
                s
                for s in base
                if self.entry(s, c.ts, 1).pair == c
                and q2 in self.entry(s, c.ts, 1).sets
            }
            b = frozenset(base - conforming)
            if not self.rqs.adversary.contains(b):
                continue
            if self.rqs.p3b(q2, quorum, b):
                return True
        return False

    def invalid(self, c: Pair) -> bool:
        """Line 6."""
        if c.ts > self.highest_ts:
            return True
        for quorum in self.responded_quorums():
            if not (
                self.valid1(c, quorum)
                or self.valid2(c, quorum)
                or self.valid3(c, quorum)
            ):
                return True
        return False

    def safe(self, c: Pair) -> bool:
        """Line 8: a basic subset of servers confirms ``c``.

        ``⟨0, ⊥⟩`` is readable from every snapshot by construction (empty
        cells report the initial entry), so the initial value is safe as
        soon as a basic subset has answered.
        """
        readers = {s for s in self.view if self.read_pred(c, s)}
        return bool(readers) and self.rqs.is_basic(readers)

    def high_cand(self, c: Pair) -> bool:
        """Line 9: every readable pair with a higher timestamp is invalid."""
        for candidate in self.observed_pairs():
            if candidate.ts > c.ts and not self.invalid(candidate):
                return False
        return True

    def candidates(self) -> List[Pair]:
        """Line 33: ``C = {c | safe(c) ∧ highCand(c)}``."""
        return [
            c
            for c in self.observed_pairs()
            if self.safe(c) and self.high_cand(c)
        ]

    def select(self) -> Optional[Pair]:
        """Line 35: the candidate with the highest timestamp, or ``None``."""
        candidates = self.candidates()
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.ts)

    # -- best-case detector ------------------------------------------------------------

    def bcd1(self, c: Pair, big_r: int) -> bool:
        """``BCD(c, 1, R)`` (line 1).

        Holds iff there are a class-1 quorum ``Q1`` and a class-``R``
        quorum ``QR`` such that every server of ``Q1 ∩ QR`` reports
        ``⟨c, ·⟩`` in slot ``R`` — and, when ``R = 2``, reports ``QR``
        among its slot-2 quorum ids.  (We allow per-server id sets; the
        paper's single shared ``Set`` is the uncontended special case.)
        """
        for q1 in self.rqs.qc1:
            for qr in self.rqs.class_quorums(big_r):
                intersection = q1 & qr
                if not intersection:
                    continue
                ok = True
                for s in intersection:
                    entry = self.entry(s, c.ts, big_r)
                    if entry.pair != c:
                        ok = False
                        break
                    if big_r == 2 and qr not in entry.sets:
                        ok = False
                        break
                if ok:
                    return True
        return False

    def bcd2(self, c: Pair, big_r: int) -> Tuple[QuorumId, ...]:
        """``BCD(c, 2, R)`` (line 2): the class-2 quorums of ``QC'2`` that
        are "confirmed" through some class-``R`` quorum."""
        result = []
        for q2 in self.qc2_responded:
            for qr in self.rqs.class_quorums(big_r):
                intersection = qr & q2
                if not intersection:
                    continue
                if all(
                    self.entry(s, c.ts, big_r).pair == c
                    for s in intersection
                ):
                    result.append(q2)
                    break
        return tuple(result)
