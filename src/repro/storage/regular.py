"""Regular (non-atomic) storage — a Section 6 extension.

The paper's concluding section observes that for *regular* semantics
(Lamport's weaker register: a read not concurrent with any write returns
the last written value; a concurrent read may also return a concurrently
written value) Properties 1 and 3a of RQS suffice — the class-1
machinery and the atomicity write-back exist only to prevent the read
inversions that regularity permits.

:class:`RegularReader` is the first part of the Figure 7 reader (lines
20-35) with **no write-back at all**: it returns ``csel`` as soon as the
candidate set is non-empty.  Consequences, demonstrated by the tests:

* synchronous uncontended reads are **always single-round** — even when
  only a class-3 quorum is correct (faster than the atomic reader);
* the resulting histories are regular but can exhibit read inversion
  (which :func:`repro.analysis.regularity.check_swmr_regularity`
  accepts and the atomicity checker rejects).

Writes are the unchanged three-round Figure 5 writer.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.network import Rule, TraceLevel
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.history import DEFAULT_KEY
from repro.storage.messages import RD
from repro.storage.predicates import ReadState
from repro.storage.reader import StorageReader
from repro.storage.system import StorageSystem


class RegularReader(StorageReader):
    """A reader providing regular (not atomic) semantics."""

    def read(self, key=DEFAULT_KEY):
        record = self.trace.begin("read", self.pid, self.sim.now, key=key)
        self.read_no += 1
        self._current_read_no = self.read_no
        state = ReadState(self.rqs)
        self._state = state

        read_rnd = 0
        while True:
            read_rnd += 1
            timer = (
                self.sim.timer_at(self.sim.now + self.timeout)
                if read_rnd == 1
                else None
            )
            for server in sorted(self.rqs.ground_set, key=repr):
                self.send(server, RD(self.read_no, read_rnd, key))

            rnd = read_rnd

            def round_quorum() -> bool:
                acked = state.round_responders(rnd)
                return any(q <= acked for q in self.rqs.quorums)

            quorum_cond = state.when(
                round_quorum, f"regular-read#{self.read_no} round {rnd}"
            )
            try:
                yield WaitUntil(quorum_cond)
            finally:
                state.unwatch(quorum_cond)
            if read_rnd == 1:
                yield WaitUntil(
                    timer, f"regular-read#{self.read_no} round-1 timer"
                )
                state.freeze_round1()
            candidates = state.candidates()
            if candidates:
                csel = max(candidates, key=lambda p: p.ts)
                break

        # Regular semantics: no write-back, return immediately.
        self.trace.complete(record, self.sim.now, csel.val, rounds=read_rnd)
        return record


class RegularStorageSystem(StorageSystem):
    """A :class:`StorageSystem` whose readers are regular readers."""

    def __init__(
        self,
        rqs: RefinedQuorumSystem,
        n_readers: int = 2,
        delta: float = 1.0,
        server_factories: Optional[Dict[Hashable, Any]] = None,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[Sequence[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
    ):
        super().__init__(
            rqs,
            n_readers=0,
            delta=delta,
            server_factories=server_factories,
            crash_times=crash_times,
            rules=rules,
            trace_level=trace_level,
        )
        self.readers = []
        for index in range(n_readers):
            reader = RegularReader(
                f"reader{index + 1}", rqs, self.trace, delta=delta
            )
            reader.bind(self.network)
            self.readers.append(reader)
