"""The storage server automaton (Figure 6) and Byzantine variants.

A benign server keeps a :class:`~repro.storage.history.History` matrix,
applies ``wr`` messages to it and answers ``rd`` messages with a full
snapshot.  Per the round-based model, a server replies to each client
message before processing any other message — which is automatic here
because handling is synchronous within a delivery event.

Servers never park on the simulator: they are pure message-in /
message-out automata, so the condition-indexed event loop's
`signal`/wake machinery lives entirely on the client side (the ack a
server sends lands in a client's ``AckSet``/``ReadState``, which
signals the client's wait).  Byzantine state mutations below (forging,
rollbacks) therefore need no signalling either — they only influence
clients through future replies.

Byzantine variants used by tests and proof replays:

* :class:`SilentServer` — never answers (crash-equivalent).
* :class:`FabricatingServer` — answers reads with a forged history
  advertising an arbitrary high-timestamp value (the fabrication attack
  that the reader's ``safe`` predicate must defeat).
* :class:`ForgetfulServer` — behaves correctly but "forgets": at a
  trigger time its history is rolled back to a given snapshot (used for
  the σ0/σ1 forgeries of Figure 4 and the Theorem 3 proof replay).
* :class:`QuorumForgettingServer` — erases the class-2 quorum ids stored
  by read write-backs while keeping the pairs ("forgets round 2 of rd",
  the ex4 behaviour of Figure 4).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.sim.network import Message
from repro.sim.process import Process
from repro.storage.history import (
    DEFAULT_KEY,
    Entry,
    History,
    HistoryView,
    Pair,
)
from repro.storage.batching import (
    BatchAck,
    ReadBatch,
    ReadBatchAck,
    WriteBatch,
)
from repro.storage.messages import RD, RdAck, WR, WrAck


class StorageServer(Process):
    """A benign storage server.

    The server keeps one independent :class:`History` matrix per
    register key (the keyed-register-space lift); ``self.history`` stays
    an alias for the default register's matrix, which is what the
    Byzantine forgery variants below roll back — forgeries target the
    default register, matching every scripted proof replay.

    With ``bounded_history=True`` the server garbage-collects
    superseded history cells.  Servers never see acks, so the evidence
    that a quorum acked strictly newer state is inferred from the
    messages a server *does* receive, exploiting that every client
    round blocks on a quorum of acks before the next message leaves:

    * a ``wr`` with ``rnd ≥ 2`` at ``ts`` proves round 1 at ``ts`` was
      acked by a full quorum (the writer/reader only advances rounds
      after ``quorum_acked``), and
    * a ``wr`` from a source whose *previous* ``wr`` (per key) differed
      proves the previous round was quorum-acked, since clients are
      sequential and block on each round.

    Cells strictly below the resulting stable timestamp are dropped;
    ``max_timestamp`` and the reader predicates only ever confirm
    candidates at or above what a quorum advertises, so FULL-trace runs
    are bit-identical with the knob on or off (pinned by golden
    fingerprints).  Counters (``history_cells``, ``max_history_cells``,
    ``gc_removed``) feed ``StorageSystem.history_stats()``.
    """

    def __init__(self, pid: Hashable, bounded_history: bool = False):
        super().__init__(pid)
        self.bounded_history = bounded_history
        self.history_cells = 0
        self.max_history_cells = 0
        self.gc_removed = 0
        self._stable_ts: Dict[Hashable, int] = {}
        self._last_wr: Dict[Tuple[Hashable, Hashable], Tuple[int, int]] = {}
        self.histories: Dict[Hashable, History] = {}
        self.history = self.history_for(DEFAULT_KEY)

    def history_for(self, key: Hashable) -> History:
        """The (lazily created) history matrix of one register."""
        history = self.histories.get(key)
        if history is None:
            history = self.histories[key] = History()
        return history

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, WR):
            self.handle_write(message.src, payload)
        elif isinstance(payload, RD):
            self.handle_read(message.src, payload)
        elif isinstance(payload, WriteBatch):
            self.handle_write_batch(message.src, payload)
        elif isinstance(payload, ReadBatch):
            self.handle_read_batch(message.src, payload)

    # Handlers are separate methods so Byzantine variants can reuse or
    # selectively override them.  (The batched handlers below sit on
    # the base class only: batching targets the crash/lossy fault hot
    # path, and batched traffic bypasses the Byzantine overrides.)

    def handle_write(self, client: Hashable, wr: WR) -> None:
        history = self.history_for(wr.key)
        self.history_cells += history.store(wr.ts, wr.rnd, wr.value,
                                            wr.qc2_ids)
        if self.bounded_history:
            self._collect(client, wr, history)
        if self.history_cells > self.max_history_cells:
            self.max_history_cells = self.history_cells
        self.send(client, WrAck(wr.ts, wr.rnd, wr.key))

    def _collect(self, client: Hashable, wr: WR, history: History) -> None:
        """Advance the per-key stable timestamp and GC below it.

        See the class docstring for the quorum-ack evidence rules.  A
        late-arriving ``wr`` below the stable mark is stored (the ack
        must not depend on GC state) and collected again immediately,
        so superseded cells never re-materialize.
        """
        key = wr.key
        stable = self._stable_ts.get(key, 0)
        advanced = stable
        if wr.rnd >= 2 and wr.ts > advanced:
            advanced = wr.ts
        prev = self._last_wr.get((key, client))
        if prev is not None and prev != (wr.ts, wr.rnd) and prev[0] > advanced:
            advanced = prev[0]
        self._last_wr[(key, client)] = (wr.ts, wr.rnd)
        if advanced > stable:
            self._stable_ts[key] = advanced
            removed = history.gc_below(advanced)
        elif wr.ts < stable:
            removed = history.gc_below(stable)
        else:
            removed = 0
        if removed:
            self.gc_removed += removed
            self.history_cells -= removed

    def handle_read(self, client: Hashable, rd: RD) -> None:
        self.send(
            client,
            RdAck(rd.read_no, rd.rnd, self.history_for(rd.key).snapshot(),
                  rd.key),
        )

    def handle_write_batch(self, client: Hashable, wb: WriteBatch) -> None:
        """Apply every batch element in order, acknowledge once.

        Each element is stored exactly as its unbatched ``wr``
        equivalent (same round, same shared QC'2 ids); the single
        :class:`BatchAck` stands for per-element acks from the same
        responder, which is what keeps batch-level quorum decisions
        equal to per-element ones.
        """
        touched: Dict[Hashable, int] = {}
        for ts, value, key in wb.ops:
            history = self.history_for(key)
            self.history_cells += history.store(ts, wb.rnd, value, wb.sets)
            touched[key] = ts
        if self.bounded_history:
            for key, last_ts in touched.items():
                self._collect_batch(client, key, last_ts, wb.rnd)
        if self.history_cells > self.max_history_cells:
            self.max_history_cells = self.history_cells
        self.send(client, BatchAck(wb.batch_no, wb.rnd))

    def _collect_batch(
        self, client: Hashable, key: Hashable, last_ts: int, rnd: int
    ) -> None:
        """Bounded-history inference at *batch* granularity.

        Elements of one batch are sent without the client blocking
        between them, so timestamps within a batch are **not** ack
        evidence for each other — only cross-message evidence counts:
        a ``rnd >= 2`` batch proves every element's round 1 was
        quorum-acked (the client blocked on a quorum of round-1 batch
        acks), and a new batch whose per-key last ``(ts, rnd)`` differs
        from the previous message's proves the previous round was
        quorum-acked.  ``last_ts`` is the key's highest batch element
        (per-key stamps are issued in increasing draw order).
        """
        history = self.history_for(key)
        stable = self._stable_ts.get(key, 0)
        advanced = stable
        if rnd >= 2 and last_ts > advanced:
            advanced = last_ts
        prev = self._last_wr.get((key, client))
        if prev is not None and prev != (last_ts, rnd) and prev[0] > advanced:
            advanced = prev[0]
        self._last_wr[(key, client)] = (last_ts, rnd)
        if advanced > stable:
            self._stable_ts[key] = advanced
            removed = history.gc_below(advanced)
        elif last_ts < stable:
            removed = history.gc_below(stable)
        else:
            removed = 0
        if removed:
            self.gc_removed += removed
            self.history_cells -= removed

    def handle_read_batch(self, client: Hashable, rb: ReadBatch) -> None:
        self.send(
            client,
            ReadBatchAck(
                rb.read_no,
                rb.rnd,
                tuple(
                    self.history_for(key).snapshot() for key in rb.keys
                ),
            ),
        )


class RateLimitedServer(StorageServer):
    """A benign server with finite service capacity.

    The capacity model behind the E16 capacity grids: serving a write
    costs ``write_cost`` simulated time units, a read ``read_cost``
    (i.e. the reciprocals of the node's capacities), and requests queue
    FIFO behind a single ``busy_until`` horizon — a message arriving
    while the server is busy is handled when the backlog drains.  An
    overloaded server therefore answers ever later, which is exactly
    how per-node load shows up as lost end-to-end throughput.

    Crashes still take effect at *service* time: a request queued
    behind the backlog is dropped if the server has crashed by the time
    it would be served.
    """

    def __init__(self, pid: Hashable, read_cost: float, write_cost: float,
                 bounded_history: bool = False):
        super().__init__(pid, bounded_history=bounded_history)
        if read_cost < 0 or write_cost < 0:
            raise ValueError("service costs must be non-negative")
        self.read_cost = float(read_cost)
        self.write_cost = float(write_cost)
        self.busy_until = 0.0

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, WR):
            self._serve(message.src, payload, self.handle_write,
                        self.write_cost)
        elif isinstance(payload, RD):
            self._serve(message.src, payload, self.handle_read,
                        self.read_cost)
        elif isinstance(payload, WriteBatch):
            # A batch still costs one service unit per element — the
            # capacity model charges work, not messages.
            self._serve(message.src, payload, self.handle_write_batch,
                        self.write_cost * len(payload.ops))
        elif isinstance(payload, ReadBatch):
            self._serve(message.src, payload, self.handle_read_batch,
                        self.read_cost * len(payload.keys))

    def _serve(self, client: Hashable, payload, handler, cost: float) -> None:
        done = max(self.sim.now, self.busy_until) + cost
        self.busy_until = done

        def finish() -> None:
            if not self.crashed:
                handler(client, payload)

        self.sim.call_at(done, finish)


class SilentServer(StorageServer):
    """Byzantine: ignores every message."""

    benign = False

    def on_message(self, message: Message) -> None:
        return


class FabricatingServer(StorageServer):
    """Byzantine: advertises a fabricated pair in every read reply.

    The forged history claims ``⟨forged_ts, forged_value⟩`` was stored in
    slots 1 and 2.  A single such server must never cause a reader to
    return the fabricated value (``safe`` requires a basic subset of
    confirmations).
    """

    benign = False

    def __init__(self, pid: Hashable, forged_ts: int, forged_value: Any):
        super().__init__(pid)
        self.forged_ts = forged_ts
        self.forged_value = forged_value

    def handle_read(self, client: Hashable, rd: RD) -> None:
        forged = History()
        forged.store(self.forged_ts, 2, self.forged_value, frozenset())
        self.send(
            client, RdAck(rd.read_no, rd.rnd, forged.snapshot(), rd.key)
        )


class ForgetfulServer(StorageServer):
    """Byzantine: rolls its state back to ``forged_state`` at a set time.

    Before the trigger it is indistinguishable from a benign server.
    ``forged_state=None`` rolls back to the initial state σ0.
    """

    benign = False

    def __init__(
        self,
        pid: Hashable,
        trigger_time: float,
        forged_state: Optional[HistoryView] = None,
    ):
        super().__init__(pid)
        self.trigger_time = trigger_time
        self.forged_state = forged_state
        self._armed = False

    def bind(self, network):  # type: ignore[override]
        bound = super().bind(network)
        if not self._armed:
            self._armed = True
            self.sim.call_at(self.trigger_time, self._forge)
        return bound

    def _forge(self) -> None:
        if self.forged_state is None:
            self.history.clear()
        else:
            self.history.overwrite(self.forged_state)


class QuorumForgettingServer(StorageServer):
    """Byzantine: at ``trigger_time``, erases the class-2 quorum ids
    stored in its history while keeping the timestamp/value pairs — it
    "forgets round 2 of rd" (Figure 4 ex4)."""

    benign = False

    def __init__(self, pid: Hashable, trigger_time: float):
        super().__init__(pid)
        self.trigger_time = trigger_time
        self._armed = False

    def bind(self, network):  # type: ignore[override]
        bound = super().bind(network)
        if not self._armed:
            self._armed = True
            self.sim.call_at(self.trigger_time, self._forget_sets)
        return bound

    def _forget_sets(self) -> None:
        cells = self.history._cells
        for key, entry in list(cells.items()):
            cells[key] = Entry(entry.pair, frozenset())
