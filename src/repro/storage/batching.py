"""Batched wire messages shared by every storage protocol.

Cross-key operation batching amortizes one quorum round-trip over up to
``batch_size`` register operations: the client coalesces its next
pending writes (or reads) into a single :class:`WriteBatch` /
:class:`ReadBatch`, servers apply the elements **in batch order** and
acknowledge the whole batch once, and the client blocks on one indexed
``Condition`` per batch round instead of one per operation.

Why this preserves the per-op quorum-intersection argument: a server
processes a batch atomically and sends one ack, so every element's
effective responder set *is* the batch's responder set.  Any quorum
decision the client takes at batch granularity (majority reached,
class-1 quorum responded, QC'2 subset acked) therefore holds for each
element individually — a batched run is observationally a sequence of
per-element protocol instances that happen to share identical responder
sets.

**Per-element completion contract.**  Batched *reads* complete
element-wise: each element returns as soon as its own quorum decisions
are in, never waiting on the batch's slowest element.  Where later
protocol phases are already batch-granular (ABD's mandatory write-back,
naive's single collect) the contract degenerates to the whole batch
completing at one instant; where elements genuinely diverge it bites —
fast-ABD's fast-path elements complete at the collect instant while
only the failing elements wait out the pre-write write-back, and the
RQS reader resolves elements in per-round *cohorts*, each launching its
own batched line 49 write-back concurrently with further collect rounds
(see each reader's ``read_batch``).  A lossy or contended quorum thus
caps one element's tail latency, not the batch's.  Stamps are still
issued per element in the client's draw order, and the checker feed
(``trace.begin`` / ``trace.complete``) keeps element order within any
one completion instant.

The message vocabulary is protocol-agnostic; each server class
interprets the payloads its own way:

* ABD / naive — ``ops`` elements are ``(ts, value, key)`` triples
  applied under the ``ts >`` rule; read replies are per-key ``Pair``s.
* fast-ABD — ``slot`` selects the pre-write/write slot; read replies
  are per-key ``(pw, w)`` pair 2-tuples.
* RQS — ``sets`` carries the batch's shared QC'2 quorum-id set and
  ``rnd`` the Figure 5 round; read replies are per-key history
  snapshots (``HistoryView``).

Byzantine server subclasses override the *unbatched* handlers
(``handle_write`` / ``handle_read``); batching targets the crash/lossy
fault hot path and batched traffic bypasses those overrides — specs
mixing Byzantine servers with ``batch_size > 1`` are outside the
batched fast path's contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable, Tuple

from repro.sim.conditions import AckSet, ConditionMap

__all__ = [
    "WriteBatch",
    "BatchAck",
    "ReadBatch",
    "ReadBatchAck",
    "BatchAcks",
    "distinct_keys",
]


@dataclass(frozen=True, slots=True)
class WriteBatch:
    """Up to ``batch_size`` write applications in one message.

    ``ops`` holds ``(ts, value, key)`` triples in the client's draw
    order; ``rnd`` is the protocol round this batch message belongs to
    (ABD/naive: 1, read write-backs: 2; fast-ABD: 1=pre-write, 2=write;
    RQS: Figure 5 rounds 1–3) and ``slot`` the fast-ABD slot name
    (``""`` elsewhere).  ``sets`` is the RQS batch's shared QC'2
    quorum-id set (empty frozenset elsewhere).
    """

    batch_no: int
    rnd: int
    slot: str
    ops: Tuple[Tuple[int, Any, Hashable], ...]
    sets: FrozenSet


@dataclass(frozen=True, slots=True)
class BatchAck:
    """One server's acknowledgement of a whole :class:`WriteBatch`."""

    batch_no: int
    rnd: int


@dataclass(frozen=True, slots=True)
class ReadBatch:
    """One collect round-trip covering ``keys`` (in batch order).

    ``rnd`` follows the unbatched convention: 0 is the multi-writer
    timestamp-discovery collect, >= 1 a read round.
    """

    read_no: int
    rnd: int
    keys: Tuple[Hashable, ...]


@dataclass(frozen=True, slots=True)
class ReadBatchAck:
    """Per-key replies, positionally aligned with the batch's keys."""

    read_no: int
    rnd: int
    replies: Tuple[Any, ...]


class BatchAcks:
    """Per-client batch-ack bookkeeping: numbering plus one pooled
    :class:`AckSet` per ``(batch_no, rnd)``.

    ``record`` peeks rather than creates, so straggler acks for retired
    batches are dropped without allocating; ``close`` discards every
    round's set (the bounded-memory contract — also what feeds the
    condition pool for reuse by the next batch).
    """

    __slots__ = ("_next", "_acks")

    def __init__(self, label: str = "batch#{} rnd={}"):
        self._next = 0
        self._acks = ConditionMap(AckSet, label)

    def open(self) -> int:
        self._next += 1
        return self._next

    def responders(self, number: int, rnd: int) -> AckSet:
        return self._acks(number, rnd)

    def record(self, number: int, rnd: int, sender) -> None:
        acks = self._acks.peek(number, rnd)
        if acks is not None:
            acks.add(sender)

    def close(self, number: int, *rnds: int) -> None:
        for rnd in rnds:
            self._acks.discard(number, rnd)


def distinct_keys(elems) -> Tuple[Hashable, ...]:
    """The batch's distinct keys in first-appearance (draw) order —
    the key set one batched discovery collect covers."""
    return tuple(dict.fromkeys(key for _, key in elems))
