"""Timestamp/value pairs and the per-server history matrix (Figure 6).

Every server stores, for each timestamp ``ts`` and round slot
``rnd ∈ {1, 2, 3}``, an entry ``⟨pair, sets⟩`` where ``pair`` is a
timestamp/value pair and ``sets`` is a set of class-2 quorum ids.  The
paper's servers keep the entire history of the shared variable (a
deliberate simplification it discusses in Section 5); we do the same by
default, and optionally garbage-collect superseded cells
(:meth:`History.gc_below`) once a server holds quorum-ack evidence for
strictly newer state — see ``bounded_history`` in
:class:`~repro.storage.server.StorageServer`.

``⊥`` (the initial storage value, outside the write domain) is the
:data:`BOTTOM` singleton, and the initial pair is ``⟨0, ⊥⟩``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Iterator, NamedTuple, Tuple

QuorumId = FrozenSet[Hashable]

#: The register every un-keyed operation addresses.  Single-register
#: workloads (every pre-keyed spec) read and write exactly this key, so
#: their executions are bit-identical to the historical single-register
#: code path.
DEFAULT_KEY: Hashable = 0

#: Multi-writer timestamps are integers ``seq * WRITER_STRIDE +
#: writer_id`` — totally ordered by ``(seq, writer_id)`` while staying
#: plain ints, so every comparison against the initial timestamp ``0``
#: and every history/message/condition keyed by ``ts`` works unchanged.
#: Single-writer systems keep bare sequence numbers (the historical
#: encoding); the stride supports up to ~a million concurrent writers.
WRITER_STRIDE = 1 << 20


def make_stamp(seq: int, writer_id: int) -> int:
    """The totally-ordered multi-writer timestamp ``(seq, writer_id)``."""
    if not 0 <= writer_id < WRITER_STRIDE:
        raise ValueError(f"writer_id must be in [0, {WRITER_STRIDE}), "
                         f"got {writer_id}")
    return seq * WRITER_STRIDE + writer_id


def stamp_seq(ts: int) -> int:
    """The sequence-number component of a stamped timestamp."""
    return ts // WRITER_STRIDE


class _Bottom:
    """The out-of-domain initial value ``⊥`` (singleton)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


class Pair(NamedTuple):
    """A timestamp/value pair ``⟨ts, val⟩``."""

    ts: int
    val: Any


INITIAL_PAIR = Pair(0, BOTTOM)


class Entry(NamedTuple):
    """One ``history[ts, rnd]`` cell: a pair plus class-2 quorum ids."""

    pair: Pair
    sets: FrozenSet[QuorumId]


INITIAL_ENTRY = Entry(INITIAL_PAIR, frozenset())


class History:
    """The mutable server-side history matrix.

    Cells default to :data:`INITIAL_ENTRY`; only written cells are
    materialized.  Snapshots are cheap immutable dicts suitable for
    shipping inside ``rd_ack`` messages.
    """

    def __init__(self):
        self._cells: Dict[Tuple[int, int], Entry] = {}

    def get(self, ts: int, rnd: int) -> Entry:
        return self._cells.get((ts, rnd), INITIAL_ENTRY)

    def store(self, ts: int, rnd: int, value: Any, sets: FrozenSet[QuorumId]) -> int:
        """Apply a ``wr⟨ts, v, QC'2, rnd⟩`` message (Figure 6, lines 3-6).

        For every slot ``m ≤ rnd``: if the cell is untouched or already
        holds ``⟨ts, v⟩``, set its pair; additionally, at ``m = rnd``,
        union in the received quorum-id set.  Returns the number of
        newly materialized cells (for retained-cell accounting).
        """
        pair = Pair(ts, value)
        created = 0
        for m in range(1, rnd + 1):
            key = (ts, m)
            current = self._cells.get(key)
            if current is None:
                new_sets = sets if m == rnd else frozenset()
                self._cells[key] = Entry(pair, new_sets)
                created += 1
            elif current.pair == pair:
                if m == rnd:
                    self._cells[key] = Entry(pair, current.sets | sets)
        # Per Figure 6 a server acks regardless of whether the condition
        # in line 4 let it update; the caller sends the ack.
        return created

    def gc_below(self, stable_ts: int) -> int:
        """Drop every cell with timestamp strictly below ``stable_ts``.

        The caller must hold evidence that a full quorum acked state at
        ``stable_ts`` (or newer): any cell older than that is superseded
        — no future candidate selection can need it, because discovery
        reads the *maximum* advertised timestamp from a quorum that
        intersects the acked one, and reader predicates only confirm
        candidates at or above what a quorum advertises.  Returns the
        number of cells removed.
        """
        stale = [cell for cell in self._cells if cell[0] < stable_ts]
        for cell in stale:
            del self._cells[cell]
        return len(stale)

    def snapshot(self) -> "HistoryView":
        return HistoryView(dict(self._cells))

    def overwrite(self, other: "HistoryView") -> None:
        """Replace all cells (Byzantine state forging only)."""
        self._cells = dict(other._cells)

    def clear(self) -> None:
        """Reset to the initial state σ0 (Byzantine state forging only)."""
        self._cells.clear()

    def __len__(self) -> int:
        return len(self._cells)


class HistoryView:
    """An immutable snapshot of a server history (reader-side)."""

    __slots__ = ("_cells",)

    def __init__(self, cells: Dict[Tuple[int, int], Entry]):
        self._cells = cells

    def get(self, ts: int, rnd: int) -> Entry:
        return self._cells.get((ts, rnd), INITIAL_ENTRY)

    def pairs(self) -> Iterator[Pair]:
        """All distinct pairs readable in slots 1 and 2 (plus ⟨0, ⊥⟩)."""
        seen = {INITIAL_PAIR}
        yield INITIAL_PAIR
        for (ts, rnd), entry in self._cells.items():
            if rnd in (1, 2) and entry.pair not in seen:
                seen.add(entry.pair)
                yield entry.pair

    def max_timestamp(self) -> int:
        """Highest timestamp present in slots 1 or 2 (0 when untouched)."""
        best = 0
        for (ts, rnd), entry in self._cells.items():
            if rnd in (1, 2) and entry.pair.ts > best:
                best = entry.pair.ts
        return best

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistoryView):
            return NotImplemented
        return self._cells == other._cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistoryView({len(self._cells)} cells)"


EMPTY_VIEW = HistoryView({})
