"""The Section 1.2 fast variant of ABD (the paper's motivating example).

Five servers, ``t = 2`` crash failures, no Byzantine behaviour.  Servers
keep **two** slots, ``pw`` (pre-write) and ``w`` (write):

* ``write(v)``: round 1 writes ``⟨ts, v⟩`` into every server's ``pw`` and
  waits ``2Δ`` for acks.  If **4** servers (a class-1 quorum) acked, the
  write completes in one round.  Otherwise round 2 writes ``⟨ts, v⟩``
  into ``w`` and completes on ``n − t = 3`` acks.
* ``read()``: round 1 collects ``(pw, w)`` from ``n − t = 3`` servers
  (waiting out ``2Δ`` to hear from more).  The pair ``cmax`` with the
  highest timestamp is selected; the read returns after round 1 iff
  ``cmax`` was seen in at least 3 ``pw`` fields or in *some* ``w`` field.
  Otherwise round 2 writes ``cmax`` back into ``pw`` at 3 servers.

The correctness hinges on ``Q'1 ∩ Q'2 ∩ Q3 ≠ ∅`` for 4-element fast
quorums (Figure 2(b)); :mod:`repro.storage.naive` shows what happens with
3-element fast quorums instead (Figure 1 / Figure 2(a)).

The implementation is parameterized by ``(n, t, fast)`` with the paper's
instance as defaults (``n=5, t=2, fast=4``).  The register space is
keyed (independent ``pw``/``w`` slots per key); multi-writer
deployments discover the highest stored timestamp with an ``n − t``
collect round and stamp ``(seq, writer_id)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.conditions import AckSet, AllOf, ConditionMap, Counter
from repro.sim.network import Message, Network, Rule, TraceLevel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.tasks import WaitUntil
from repro.sim.trace import OperationRecord, Trace
from repro.storage.batching import (
    BatchAck,
    BatchAcks,
    ReadBatch,
    ReadBatchAck,
    WriteBatch,
    distinct_keys,
)
from repro.storage.history import BOTTOM, DEFAULT_KEY, Pair
from repro.storage.stamping import DiscoveryInbox, StampIssuer, writer_fleet


@dataclass(frozen=True, slots=True)
class FWrite:
    """Write ``pair`` into ``slot`` (``"pw"`` or ``"w"``)."""

    ts: int
    value: Any
    slot: str
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class FWriteAck:
    ts: int
    slot: str
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class FRead:
    read_no: int
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True, slots=True)
class FReadAck:
    read_no: int
    pw: Pair
    w: Pair
    key: Hashable = DEFAULT_KEY


class FastAbdServer(Process):
    """Keeps the two timestamp/value variables ``pw`` and ``w`` per key."""

    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.slots: Dict[Hashable, Dict[str, Pair]] = {}

    def _slots_for(self, key: Hashable) -> Dict[str, Pair]:
        slots = self.slots.get(key)
        if slots is None:
            slots = self.slots[key] = {
                "pw": Pair(0, BOTTOM), "w": Pair(0, BOTTOM)
            }
        return slots

    @property
    def pw(self) -> Pair:
        return self._slots_for(DEFAULT_KEY)["pw"]

    @property
    def w(self) -> Pair:
        return self._slots_for(DEFAULT_KEY)["w"]

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, FWrite):
            slots = self._slots_for(payload.key)
            pair = Pair(payload.ts, payload.value)
            if payload.ts > slots[payload.slot].ts:
                slots[payload.slot] = pair
            self.send(
                message.src,
                FWriteAck(payload.ts, payload.slot, payload.key),
            )
        elif isinstance(payload, FRead):
            slots = self._slots_for(payload.key)
            self.send(
                message.src,
                FReadAck(payload.read_no, slots["pw"], slots["w"],
                         payload.key),
            )
        elif isinstance(payload, WriteBatch):
            # Batched slot writes: every element targets the batch's
            # slot (pre-write round vs write round), one ack for all.
            for ts, value, key in payload.ops:
                slots = self._slots_for(key)
                if ts > slots[payload.slot].ts:
                    slots[payload.slot] = Pair(ts, value)
            self.send(message.src, BatchAck(payload.batch_no, payload.rnd))
        elif isinstance(payload, ReadBatch):
            replies = []
            for key in payload.keys:
                slots = self._slots_for(key)
                replies.append((slots["pw"], slots["w"]))
            self.send(
                message.src,
                ReadBatchAck(payload.read_no, payload.rnd, tuple(replies)),
            )


class FastAbdWriter(Process):
    def __init__(
        self,
        pid: Hashable,
        servers: Tuple[Hashable, ...],
        trace: Trace,
        t: int,
        fast: int,
        delta: float = 1.0,
        writer_id: Optional[int] = None,
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.slow = len(servers) - t
        self.fast = fast
        self.timeout = 2.0 * delta
        self.stamps = StampIssuer(writer_id)
        self._acks = ConditionMap(AckSet, "fast wr key={} ts={} {}")
        self._discovery = DiscoveryInbox("fast ts-discovery#{}")
        self._batches = BatchAcks("fast wr batch#{} rnd={}")

    @property
    def ts(self) -> int:
        return self.stamps.seq()

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, FWriteAck):
            # peek, not create: straggler acks for completed writes are
            # dropped instead of resurrecting pruned responder sets.
            acks = self._acks.peek(payload.key, payload.ts, payload.slot)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, FReadAck):
            self._discovery.record(payload.read_no, message.src, payload)
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)
        elif isinstance(payload, ReadBatchAck):
            self._discovery.record(payload.read_no, message.src,
                                   payload.replies)

    def write(self, value: Any, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("write", self.pid, self.sim.now, value,
                                  key=key)
        if not self.stamps.multi_writer:
            ts, extra_rounds = self.stamps.bare(key), 0
        else:
            number = self._discovery.open()
            discovery_acks = self._discovery.responders(number)
            for server in self.servers:
                self.send(server, FRead(number, key))
            yield WaitUntil(
                discovery_acks.at_least(self.slow),
                f"fast-write ts-discovery#{number}",
            )
            acks = self._discovery.close(number)
            observed = max(max(a.pw.ts, a.w.ts) for a in acks.values())
            ts, extra_rounds = self.stamps.stamped(key, observed), 1
        # Surface the timestamp for the stamp-ordered online checker.
        record.meta["ts"] = ts
        pw_acks = self._acks(key, ts, "pw")
        for server in self.servers:
            self.send(server, FWrite(ts, value, "pw", key))
        timer = self.sim.timer_at(self.sim.now + self.timeout)
        yield WaitUntil(
            AllOf(timer, pw_acks.at_least(self.slow)),
            f"fast-write ts={ts} round 1",
        )
        if len(pw_acks) >= self.fast:
            self._retire(ts, key)
            self.trace.complete(record, self.sim.now, "OK",
                                rounds=1 + extra_rounds)
            return record
        w_acks = self._acks(key, ts, "w")
        for server in self.servers:
            self.send(server, FWrite(ts, value, "w", key))
        yield WaitUntil(
            w_acks.at_least(self.slow),
            f"fast-write ts={ts} round 2",
        )
        self._retire(ts, key)
        self.trace.complete(record, self.sim.now, "OK",
                            rounds=2 + extra_rounds)
        return record

    def _retire(self, ts: int, key: Hashable) -> None:
        for slot in ("pw", "w"):
            self._acks.discard(key, ts, slot)

    def write_batch(self, elems: List[Tuple[Any, Hashable]]):
        """One batched pre-write round (+ fast-path check) for
        ``[(value, key), ...]``; the shared responder set makes the
        4-ack fast decision hold per element exactly as unbatched."""
        now = self.sim.now
        records = [
            self.trace.begin("write", self.pid, now, value, key=key)
            for value, key in elems
        ]
        if not self.stamps.multi_writer:
            stamps = [self.stamps.bare(key) for _, key in elems]
            extra_rounds = 0
        else:
            keys = distinct_keys(elems)
            number = self._discovery.open()
            discovery_acks = self._discovery.responders(number)
            collect = ReadBatch(number, 0, keys)
            for server in self.servers:
                self.send(server, collect)
            yield WaitUntil(
                discovery_acks.at_least(self.slow),
                f"fast-write batch ts-discovery#{number}",
            )
            acks = self._discovery.close(number)
            observed = {
                key: max(
                    max(replies[i][0].ts, replies[i][1].ts)
                    for replies in acks.values()
                )
                for i, key in enumerate(keys)
            }
            stamps = [
                self.stamps.stamped(key, observed[key]) for _, key in elems
            ]
            extra_rounds = 1
        for record, ts in zip(records, stamps):
            record.meta["ts"] = ts
        ops = tuple(
            (ts, value, key) for ts, (value, key) in zip(stamps, elems)
        )
        number = self._batches.open()
        pw_acks = self._batches.responders(number, 1)
        for server in self.servers:
            self.send(server, WriteBatch(number, 1, "pw", ops, frozenset()))
        timer = self.sim.timer_at(self.sim.now + self.timeout)
        yield WaitUntil(
            AllOf(timer, pw_acks.at_least(self.slow)),
            f"fast-write batch#{number} round 1",
        )
        if len(pw_acks) >= self.fast:
            self._batches.close(number, 1)
            now = self.sim.now
            for record in records:
                self.trace.complete(record, now, "OK",
                                    rounds=1 + extra_rounds)
            return records
        w_acks = self._batches.responders(number, 2)
        for server in self.servers:
            self.send(server, WriteBatch(number, 2, "w", ops, frozenset()))
        yield WaitUntil(
            w_acks.at_least(self.slow),
            f"fast-write batch#{number} round 2",
        )
        self._batches.close(number, 1, 2)
        now = self.sim.now
        for record in records:
            self.trace.complete(record, now, "OK", rounds=2 + extra_rounds)
        return records


class FastAbdReader(Process):
    def __init__(
        self,
        pid: Hashable,
        servers: Tuple[Hashable, ...],
        trace: Trace,
        t: int,
        delta: float = 1.0,
    ):
        super().__init__(pid)
        self.servers = servers
        self.trace = trace
        self.slow = len(servers) - t
        self.timeout = 2.0 * delta
        self.read_no = 0
        self._acks: Dict[int, Dict[Hashable, FReadAck]] = {}
        self._replies = ConditionMap(Counter, "fast rd#{}")
        self._wb = ConditionMap(AckSet, "fast wb key={} ts={} {}")
        # Newest retained write-back timestamp per key (see AbdReader:
        # write-back timestamps are monotone per reader, so superseded
        # responder sets are pruned, same-timestamp ones reused).
        self._wb_ts: Dict[Hashable, int] = {}
        self._batches = BatchAcks("fast rd-wb batch#{} rnd={}")
        self._batch_replies: Dict[
            int, Dict[Hashable, Tuple[Tuple[Pair, Pair], ...]]
        ] = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, FReadAck):
            replies = self._acks.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload
                self._replies(payload.read_no).add()
        elif isinstance(payload, FWriteAck):
            acks = self._wb.peek(payload.key, payload.ts, payload.slot)
            if acks is not None:
                acks.add(message.src)
        elif isinstance(payload, ReadBatchAck):
            replies = self._batch_replies.get(payload.read_no)
            if replies is not None and message.src not in replies:
                replies[message.src] = payload.replies
                self._replies(payload.read_no).add()
        elif isinstance(payload, BatchAck):
            self._batches.record(payload.batch_no, payload.rnd, message.src)

    def read(self, key: Hashable = DEFAULT_KEY):
        record = self.trace.begin("read", self.pid, self.sim.now, key=key)
        self.read_no += 1
        number = self.read_no
        self._acks[number] = {}
        reply_count = self._replies(number)
        for server in self.servers:
            self.send(server, FRead(number, key))
        timer = self.sim.timer_at(self.sim.now + self.timeout)
        yield WaitUntil(
            AllOf(timer, reply_count.at_least(self.slow)),
            f"fast-read#{number} round 1",
        )
        replies = self._acks[number]
        pairs = [a.pw for a in replies.values()] + [a.w for a in replies.values()]
        cmax = max(pairs, key=lambda p: p.ts)
        record.meta["ts"] = cmax.ts
        pw_confirms = sum(1 for a in replies.values() if a.pw == cmax)
        w_confirms = sum(1 for a in replies.values() if a.w == cmax)
        if pw_confirms >= self.slow or w_confirms >= 1:
            self._retire(number)
            self.trace.complete(record, self.sim.now, cmax.val, rounds=1)
            return record
        # Round 2: write back cmax into pw fields.
        previous = self._wb_ts.get(key)
        if previous is not None and previous != cmax.ts:
            self._wb.discard(key, previous, "pw")
        self._wb_ts[key] = cmax.ts
        wb_acks = self._wb(key, cmax.ts, "pw")
        for server in self.servers:
            self.send(server, FWrite(cmax.ts, cmax.val, "pw", key))
        yield WaitUntil(
            wb_acks.at_least(self.slow),
            f"fast-read#{number} writeback",
        )
        self._retire(number)
        self.trace.complete(record, self.sim.now, cmax.val, rounds=2)
        return record

    def _retire(self, number: int) -> None:
        self._acks.pop(number, None)
        self._replies.discard(number)

    def read_batch(self, keys: List[Hashable]):
        """One batched collect; per-element fast-return decisions from
        the shared replies, and only the failing elements join one
        batched pre-write write-back.  Completion is **per element**:
        fast-path elements complete at the collect instant (their
        quorum is full — waiting on the failing elements' write-back
        would only inflate their tail), and the failing elements
        complete when the write-back quorum-acks."""
        now = self.sim.now
        records = [
            self.trace.begin("read", self.pid, now, key=key) for key in keys
        ]
        self.read_no += 1
        number = self.read_no
        self._batch_replies[number] = {}
        reply_count = self._replies(number)
        collect = ReadBatch(number, 1, tuple(keys))
        for server in self.servers:
            self.send(server, collect)
        timer = self.sim.timer_at(self.sim.now + self.timeout)
        yield WaitUntil(
            AllOf(timer, reply_count.at_least(self.slow)),
            f"fast-read batch#{number} round 1",
        )
        data = self._batch_replies.pop(number)
        self._replies.discard(number)
        cmaxes: List[Pair] = []
        fast_done: List[bool] = []
        for i in range(len(keys)):
            pairs = [replies[i][0] for replies in data.values()]
            pairs += [replies[i][1] for replies in data.values()]
            cmax = max(pairs, key=lambda p: p.ts)
            pw_confirms = sum(
                1 for replies in data.values() if replies[i][0] == cmax
            )
            w_confirms = sum(
                1 for replies in data.values() if replies[i][1] == cmax
            )
            cmaxes.append(cmax)
            fast_done.append(pw_confirms >= self.slow or w_confirms >= 1)
        now = self.sim.now
        for record, cmax, done in zip(records, cmaxes, fast_done):
            record.meta["ts"] = cmax.ts
            if done:
                self.trace.complete(record, now, cmax.val, rounds=1)
        failing = [i for i, done in enumerate(fast_done) if not done]
        if failing:
            wb_no = self._batches.open()
            wb_acks = self._batches.responders(wb_no, 2)
            writeback = WriteBatch(
                wb_no, 2, "pw",
                tuple(
                    (cmaxes[i].ts, cmaxes[i].val, keys[i]) for i in failing
                ),
                frozenset(),
            )
            for server in self.servers:
                self.send(server, writeback)
            yield WaitUntil(
                wb_acks.at_least(self.slow),
                f"fast-read batch#{number} writeback",
            )
            self._batches.close(wb_no, 2)
            now = self.sim.now
            for i in failing:
                self.trace.complete(records[i], now, cmaxes[i].val,
                                    rounds=2)
        return records


class FastAbdSystem:
    """The paper's Section 1.2 deployment (defaults ``n=5, t=2, fast=4``)."""

    def __init__(
        self,
        n: int = 5,
        t: int = 2,
        fast: int = 4,
        n_readers: int = 2,
        delta: float = 1.0,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        n_writers: int = 1,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        server_ids = tuple(range(1, n + 1))
        self.servers = {
            sid: FastAbdServer(sid).bind(self.network) for sid in server_ids
        }
        for sid, time in (crash_times or {}).items():
            self.servers[sid].schedule_crash(time)
        self.writers: List[FastAbdWriter] = writer_fleet(
            n_writers,
            lambda pid, writer_id: FastAbdWriter(
                pid, server_ids, self.trace, t=t, fast=fast, delta=delta,
                writer_id=writer_id,
            ).bind(self.network),
        )
        self.writer = self.writers[0]
        self.readers = [
            FastAbdReader(
                f"reader{i + 1}", server_ids, self.trace, t=t, delta=delta
            ).bind(self.network)
            for i in range(n_readers)
        ]

    def write(self, value: Any, key: Hashable = DEFAULT_KEY) -> OperationRecord:
        task = self.sim.spawn(
            self.writer.write(value, key), f"write({value!r})"
        )
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("fast-abd write blocked")
        return task.result

    def read(
        self, reader_index: int = 0, key: Hashable = DEFAULT_KEY
    ) -> OperationRecord:
        reader = self.readers[reader_index]
        task = self.sim.spawn(reader.read(key), f"{reader.pid}.read()")
        self.sim.run_to_completion(strict=False)
        if not task.done():
            raise TimeoutError("fast-abd read blocked")
        return task.result
