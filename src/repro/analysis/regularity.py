"""SWMR register *regularity* checking (Lamport's regular semantics).

A complete read of a regular register must return

* a value whose write is concurrent with the read, **or**
* the value of the last write that precedes the read (⊥ if none).

Compared to atomicity this drops the no-read-inversion rule: two
non-overlapping reads may see versions in either order, as long as each
individually respects the writes around it.  Fabrication and stale
reads are still violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.analysis.atomicity import (
    Violation,
    _require_sequential_writer,
    _version_map,
    check_by_key,
)
from repro.sim.trace import OperationRecord
from repro.storage.history import BOTTOM


@dataclass
class RegularityReport:
    violations: Tuple[Violation, ...]
    versions: Dict[int, int]
    by_key: Dict[Hashable, "RegularityReport"] = field(default_factory=dict)

    @property
    def regular(self) -> bool:
        return not self.violations


def check_swmr_regularity(
    records: Iterable[OperationRecord],
) -> RegularityReport:
    """Check a (keyed) SWMR history for regularity.

    Like the atomicity checker, the history is partitioned by register
    key and every register is checked independently (registers are
    independent objects); multi-register reports aggregate violations
    and expose the per-key reports on ``by_key``.
    """
    return check_by_key(
        records,
        _check_register,
        lambda violations, versions, by_key: RegularityReport(
            violations, versions, by_key=by_key
        ),
    )


def _check_register(records: Sequence[OperationRecord]) -> RegularityReport:
    """Regularity of one register's history (per-writer-sequential)."""
    records = list(records)
    writes = sorted(
        (r for r in records if r.kind == "write"),
        key=lambda r: r.invoked_at,
    )
    _require_sequential_writer(writes)
    version_of_value = _version_map(writes)
    violations: List[Violation] = []
    versions: Dict[int, int] = {}

    for read in records:
        if read.kind != "read" or not read.complete:
            continue
        value = read.result
        if value is BOTTOM:
            version = 0
        elif value in version_of_value:
            version = version_of_value[value]
        else:
            violations.append(
                Violation(
                    "fabrication",
                    f"read by {read.process} returned {value!r}, "
                    "which no write wrote",
                    (read,),
                )
            )
            continue
        versions[read.op_id] = version

        # Lower bound: the last write preceding the read.
        floor = 0
        for index, write in enumerate(writes, start=1):
            if write.precedes(read):
                floor = index
        if version < floor:
            violations.append(
                Violation(
                    "stale-read",
                    f"read by {read.process} returned version {version} "
                    f"but write #{floor} already completed before it",
                    (read,),
                )
            )
        # Upper bound: a write invoked before the read completes.
        if version > 0:
            write = writes[version - 1]
            if write.invoked_at > read.completed_at:
                violations.append(
                    Violation(
                        "future-read",
                        f"read by {read.process} returned a value whose "
                        "write started only after the read completed",
                        (read, write),
                    )
                )

    return RegularityReport(tuple(violations), versions)
