"""Online (streaming) analysis: latency accumulators and windowed checking.

Long horizon-free runs cannot afford the "materialize everything, check
at the end" pipeline — a million-operation soak would retain a million
:class:`~repro.sim.trace.OperationRecord` objects plus a million latency
samples before any checker even starts.  This module holds the streaming
counterparts consumed as operations *complete*:

* :class:`LatencyAccumulator` — count/mean/min/max plus a fixed-size
  quantile reservoir, fed one completed operation at a time.  Mean
  accounting is exact (rational running sum), so on FULL runs the
  accumulator-backed :meth:`~repro.analysis.latency.LatencySummary`
  matches the list-based ``summarize_rounds`` path bit for bit.
* :class:`QuantileReservoir` — a bounded uniform sample of the latency
  stream (deterministically seeded).  Below capacity it holds every
  sample, so small-run quantiles are exact; above capacity it degrades
  to a classic reservoir estimate with O(capacity) memory.

Both carry an **order-independent** ``merge`` classmethod: sharded
soaks (:mod:`repro.scenarios.sharding`) fold per-shard accumulators
into one aggregate whose value depends only on the multiset of inputs,
never on nondeterministic shard completion order — counts and the
rational time sum are commutative (merged means stay Fraction-exact),
and reservoir merging canonical-sorts candidates before any
deterministic subsampling.
* :class:`OnlineChecker` — a *windowed* per-key safety checker for
  single-writer keyed histories: monotone writer order, no fabrication,
  no reading the future, no stale reads (read-your-writes against every
  write that completed before the read started) and no read inversion,
  all checked as operations complete with bounded retained state.  The
  window floor is the oldest in-flight invocation; anything older is
  folded into per-key monotone bounds, so retained state is
  O(clients + keys) regardless of run length.
* :class:`MultiWriterOnlineChecker` — the multi-writer mode.  Write
  values are globally unique but *not* time-ordered across writers, so
  the SW value order is useless; instead the checker exploits the
  protocols' totally-ordered stamps ``seq·2²⁰ + writer_id`` (surfaced
  on ``record.meta["ts"]``) — a Gibbons–Korach-style polynomial check
  over the total stamp order: per-key monotone stamp bounds replace the
  value bounds, writes must stamp above everything completed before
  their invocation, and reads obey fabrication / future-read /
  stale-read / read-inversion over stamps.  A read returning a value
  whose write is still in flight is *parked* on that value and judged
  (claimed stamp vs. actual) when the write completes — the same window
  floor guarantees the deferred bounds stay exact.

The online checker is *sound within its window*: every violation it
reports is a real violation of the SWMR register semantics, and any
violation involving operations that overlap the retained window is
caught.  A read returning a value older than the pruned window is
reported through the monotone bound (as a stale read) rather than by
exact version lookup — the inherent trade of bounded-memory checking.
FULL-level runs keep the exact post-hoc checkers in
:mod:`repro.analysis.atomicity`; the windowed checker is what gives
``TraceLevel.METRICS`` soaks a real safety verdict without the history.

Values must be totally ordered per key in writer order — true for every
:class:`~repro.scenarios.workloads.RandomMix` workload (sequential
integer write values), which is the only workload shape the scenario
runner wires the checker to.
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect_left
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.storage.history import BOTTOM

#: Default bounded-sample size of the quantile reservoir.  Runs with at
#: most this many completions per operation kind get *exact* quantiles.
RESERVOIR_CAPACITY = 2048


def nearest_rank(sorted_samples, fraction: float) -> Optional[float]:
    """The nearest-rank percentile of an ascending sample list.

    Shared by the streaming reservoir and the list-based
    ``summarize_rounds`` so the two paths agree exactly whenever the
    reservoir holds the full stream.
    """
    if not sorted_samples:
        return None
    rank = max(1, -(-len(sorted_samples) * fraction // 1))  # ceil
    return sorted_samples[int(rank) - 1]


class QuantileReservoir:
    """A fixed-size uniform sample of a stream (Vitter's algorithm R).

    Deterministic: the replacement RNG is seeded at construction, and
    samples arrive in simulated-event order, so repeated runs of the
    same scenario produce identical estimates.
    """

    __slots__ = ("capacity", "seen", "_samples", "_sorted", "_rng")

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 9973):
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._rng = random.Random(seed)

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds every observed sample."""
        return self.seen <= self.capacity

    def observe(self, sample: float) -> None:
        self.seen += 1
        self._sorted = None
        if len(self._samples) < self.capacity:
            self._samples.append(sample)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._samples[slot] = sample

    def quantile(self, fraction: float) -> Optional[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return nearest_rank(self._sorted, fraction)

    @classmethod
    def merge(
        cls,
        reservoirs: Iterable["QuantileReservoir"],
        capacity: Optional[int] = None,
        seed: int = 9973,
    ) -> "QuantileReservoir":
        """Merge independent reservoirs into one, **order-independently**.

        The merged reservoir depends only on the *multiset* of input
        reservoirs, never on their iteration order (shard completion
        order is nondeterministic under multiprocessing).  Achieved by
        canonicalizing before any randomness: all candidate samples are
        sorted by ``(value, weight)``, and — only when they overflow
        ``capacity`` — an Efraimidis–Spirakis weighted subsample (each
        sample weighted by the share of its source stream it
        represents, ``seen / len(samples)``) is drawn with an RNG
        seeded purely from the merged totals.  Two candidates tied on
        ``(value, weight)`` are interchangeable, so the selected sample
        multiset is permutation-invariant.

        While every input is still :attr:`exact` and the union fits,
        the merge holds the exact union — merged quantiles then equal
        the single-stream reservoir's.  Merged reservoirs are terminal
        summaries: further :meth:`observe` calls would treat the
        subsample as a plain prefix and are not supported.
        """
        parts = [r for r in reservoirs if r.seen]
        if capacity is None:
            if not parts:
                raise ValueError("merge needs a capacity or a non-empty part")
            capacity = parts[0].capacity
        merged = cls(capacity, seed)
        merged.seen = sum(part.seen for part in parts)
        candidates: List[Tuple[float, float]] = []
        for part in parts:
            weight = part.seen / len(part._samples)
            candidates.extend((value, weight) for value in part._samples)
        candidates.sort()
        if len(candidates) <= capacity:
            merged._samples = [value for value, _ in candidates]
            return merged
        rng = random.Random(zlib.crc32(
            f"reservoir-merge:{seed}:{merged.seen}:{len(candidates)}"
            .encode()
        ))
        keyed = [
            (rng.random() ** (1.0 / weight), index)
            for index, (_, weight) in enumerate(candidates)
        ]
        keyed.sort(reverse=True)
        merged._samples = sorted(
            candidates[index][0] for _, index in keyed[:capacity]
        )
        return merged


class LatencyAccumulator:
    """Online latency aggregation for one operation kind.

    Tracks count, min/max/sum of self-reported round counts, min/max of
    completion times, an *exact* rational time sum (so means match the
    post-hoc path to the last bit) and a bounded quantile reservoir.
    O(reservoir capacity) memory however long the run.
    """

    __slots__ = (
        "kind", "count", "rounds_sum", "min_rounds", "max_rounds",
        "_time_sum", "min_time", "max_time", "reservoir",
    )

    def __init__(self, kind: str, capacity: int = RESERVOIR_CAPACITY):
        self.kind = kind
        self.count = 0
        self.rounds_sum = 0
        self.min_rounds: Optional[int] = None
        self.max_rounds: Optional[int] = None
        self._time_sum = Fraction(0)
        self.min_time: Optional[float] = None
        self.max_time: Optional[float] = None
        self.reservoir = QuantileReservoir(capacity)

    def observe(self, rounds: int, elapsed: float) -> None:
        """Fold one completed operation into the summary."""
        self.count += 1
        self.rounds_sum += rounds
        if self.min_rounds is None or rounds < self.min_rounds:
            self.min_rounds = rounds
        if self.max_rounds is None or rounds > self.max_rounds:
            self.max_rounds = rounds
        self._time_sum += Fraction(elapsed)
        if self.min_time is None or elapsed < self.min_time:
            self.min_time = elapsed
        if self.max_time is None or elapsed > self.max_time:
            self.max_time = elapsed
        self.reservoir.observe(elapsed)

    @property
    def mean_rounds(self) -> Optional[float]:
        if not self.count:
            return None
        return round(self.rounds_sum / self.count, 3)

    @property
    def mean_time(self) -> Optional[float]:
        if not self.count:
            return None
        return round(float(self._time_sum / self.count), 6)

    def quantile(self, fraction: float) -> Optional[float]:
        return self.reservoir.quantile(fraction)

    @classmethod
    def merge(
        cls,
        accumulators: Iterable["LatencyAccumulator"],
        kind: Optional[str] = None,
    ) -> "LatencyAccumulator":
        """Merge per-shard accumulators of one kind, order-independently.

        Counts, round sums, min/max bounds and the exact rational time
        sum are commutative, so the merged mean is Fraction-exact — the
        union of shard streams yields the same ``mean_time`` to the
        last bit as a single-process run over the same completions.
        Quantiles delegate to :meth:`QuantileReservoir.merge` (exact
        while every shard stayed below reservoir capacity).
        """
        parts = list(accumulators)
        if not parts:
            raise ValueError("merge needs at least one accumulator")
        kinds = {part.kind for part in parts}
        if kind is None:
            if len(kinds) != 1:
                raise ValueError(
                    f"merge mixes operation kinds {sorted(kinds)}; "
                    f"pass kind= explicitly"
                )
            kind = parts[0].kind
        merged = cls(kind, parts[0].reservoir.capacity)
        merged.count = sum(part.count for part in parts)
        merged.rounds_sum = sum(part.rounds_sum for part in parts)
        merged._time_sum = sum(
            (part._time_sum for part in parts), Fraction(0)
        )
        for name, pick in (
            ("min_rounds", min), ("max_rounds", max),
            ("min_time", min), ("max_time", max),
        ):
            bounds = [
                value for part in parts
                if (value := getattr(part, name)) is not None
            ]
            setattr(merged, name, pick(bounds) if bounds else None)
        merged.reservoir = QuantileReservoir.merge(
            (part.reservoir for part in parts),
            capacity=merged.reservoir.capacity,
        )
        return merged


# -- the windowed online checker ----------------------------------------------

@dataclass(frozen=True)
class OnlineViolation:
    """One safety violation caught by the windowed checker."""

    rule: str
    key: Hashable
    description: str

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"[{self.rule}] key={self.key!r}: {self.description}"


@dataclass
class OnlineReport:
    """The windowed checker's verdict for one streamed execution.

    ``max_retained`` is the (periodically sampled) high-water mark of
    everything the checker holds across all keys — the bounded-memory
    exhibit CI gates on.  ``overrun_unchecked`` counts operations that
    outlived the window (a stuck client's op completing after the
    window moved past its invocation): they are skipped rather than
    misjudged against bounds newer than their invocation, so the
    verdict stays sound.
    """

    checked_writes: int
    checked_reads: int
    violation_count: int
    violations: Tuple[OnlineViolation, ...]  # first few, for reporting
    keys: Tuple[Hashable, ...]
    max_retained: int  # high-water mark of retained per-key entries
    overrun_unchecked: int = 0
    windowed: bool = True
    mode: str = "sw"  # "sw" (value-ordered) | "mw" (stamp-ordered)

    @property
    def atomic(self) -> bool:
        return self.violation_count == 0

    @property
    def verdict(self) -> str:
        """The sweep-table verdict string (``"atomic"``/``"violation"``)."""
        return "atomic" if self.atomic else "violation"

    @property
    def checked_ops(self) -> int:
        return self.checked_writes + self.checked_reads

    def as_metrics(self) -> Dict[str, Any]:
        """The portable metrics view of this verdict — the one shape
        every emitter (sweep measure hooks, the soak experiment, the
        workload bench) embeds, so artifact fields cannot drift."""
        return {
            "atomic": self.atomic,
            "violations": self.violation_count,
            "keys_checked": len(self.keys),
            "checker_max_retained": self.max_retained,
            "checker_mode": self.mode,
        }


@dataclass(frozen=True)
class OnlineRefusal:
    """A structured reason why a run carries no online verdict.

    The scenario runner attaches one wherever it declines to wire an
    online checker, so ``RunResult.online is None`` always comes with a
    machine-readable explanation instead of a bare refusal.
    """

    reason: str  # short token, e.g. "workload-shape"
    detail: str  # human-readable explanation

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"online checker not wired ({self.reason}): {self.detail}"


class _KeyState:
    """Bounded per-register state: windowed writes plus monotone bounds."""

    __slots__ = (
        "written", "write_times", "write_values",
        "read_times", "read_values", "base_write_bound", "base_read_bound",
    )

    def __init__(self):
        # value -> (invoked_at, completed_at) for writes still in window.
        self.written: Dict[Any, Tuple[float, float]] = {}
        # Completed writes, completion-ordered; values are monotone for
        # a sequential single writer, so these are cummax series.
        self.write_times: List[float] = []
        self.write_values: List[Any] = []
        # Running max of completed read versions, completion-ordered.
        self.read_times: List[float] = []
        self.read_values: List[Any] = []
        # Folded-away window prefix: the newest value guaranteed visible
        # to (written before) every still-checkable operation.
        self.base_write_bound: Optional[Any] = None
        self.base_read_bound: Optional[Any] = None

    def write_bound(self, before: float) -> Optional[Any]:
        """Newest value whose write completed strictly before ``before``."""
        index = bisect_left(self.write_times, before)
        if index:
            return self.write_values[index - 1]
        return self.base_write_bound

    def read_bound(self, before: float) -> Optional[Any]:
        """Newest value returned by a read completed strictly before
        ``before``."""
        index = bisect_left(self.read_times, before)
        if index:
            return self.read_values[index - 1]
        return self.base_read_bound

    def prune(self, floor: float) -> None:
        """Fold state older than the window ``floor`` into the bounds."""
        index = bisect_left(self.write_times, floor)
        if index:
            self.base_write_bound = self.write_values[index - 1]
            del self.write_times[:index]
            del self.write_values[:index]
        index = bisect_left(self.read_times, floor)
        if index:
            self.base_read_bound = self.read_values[index - 1]
            del self.read_times[:index]
            del self.read_values[:index]
        if self.base_write_bound is not None and self.written:
            bound = self.base_write_bound
            stale = [
                value
                for value, (_, completed_at) in self.written.items()
                if completed_at is not None
                and completed_at < floor
                and _ordered_less(value, bound)
            ]
            for value in stale:
                del self.written[value]

    def retained(self) -> int:
        return (
            len(self.written) + len(self.write_times) + len(self.read_times)
        )


def _ordered_less(left: Any, right: Any) -> bool:
    try:
        return left < right
    except TypeError:
        return False


class OnlineChecker:
    """Windowed online safety checking for single-writer keyed histories.

    Subscribe it to a :class:`~repro.sim.trace.Trace`
    (``trace.subscribe(on_begin=..., on_complete=...)``); it consumes
    operation records as they begin and complete and never stores the
    history.  See the module docstring for the invariants and the
    windowing trade.
    """

    #: An in-flight op older than this many ops evicts from the window
    #: (a stuck client must not pin the floor and regrow O(ops) state).
    OVERRUN_OPS = 5_000
    #: Completions between global prune/measure sweeps (amortizes the
    #: O(keys) sweep to O(1) per completion).
    SWEEP_EVERY = 256
    #: Report mode token; the MW subclass overrides both of these.
    mode = "sw"
    key_state_factory = _KeyState

    def __init__(self, max_reported: int = 20,
                 overrun_ops: int = OVERRUN_OPS):
        self.max_reported = max_reported
        self.overrun_ops = overrun_ops
        self.checked_writes = 0
        self.checked_reads = 0
        self.violation_count = 0
        self.overrun_unchecked = 0
        self.violations: List[OnlineViolation] = []
        self.max_retained = 0
        self._keys: Dict[Hashable, _KeyState] = {}
        # op_id -> invoked_at of every in-flight storage operation; its
        # minimum is the window floor nothing older than which can still
        # be referenced by a future completion.
        self._pending: Dict[int, float] = {}
        # Ops evicted from the window (stuck clients): skipped, never
        # misjudged, if they eventually complete.  Bounded by the
        # number of clients that ever stalled past the overrun bound.
        self._overrun: set = set()
        self._max_op_id = -1
        self._floor = float("-inf")
        self._since_sweep = 0

    # -- trace subscription ---------------------------------------------------

    def on_begin(self, record) -> None:
        if record.kind in ("write", "read"):
            self._pending[record.op_id] = record.invoked_at
            if record.op_id > self._max_op_id:
                self._max_op_id = record.op_id
            if record.kind == "write":
                state = self._state(record.key)
                state.written[record.value] = (record.invoked_at, None)

    def on_complete(self, record) -> None:
        if record.kind not in ("write", "read"):
            return
        if record.op_id in self._overrun:
            # The window moved past this op while it was stuck; its
            # bounds are gone, so judging it now could flag legal
            # behaviour.  Skip it, visibly.
            self._overrun.discard(record.op_id)
            self.overrun_unchecked += 1
            return
        if record.kind == "write":
            self._complete_write(record)
        else:
            self._complete_read(record)
        self._pending.pop(record.op_id, None)
        # Evict stuck in-flight ops so they cannot pin the floor and
        # regrow O(ops) retained state (the crashed-reader case).
        if self._pending:
            horizon = self._max_op_id - self.overrun_ops
            stuck = [op for op in self._pending if op < horizon]
            for op in stuck:
                del self._pending[op]
                self._evict(op)
        self._floor = min(
            self._pending.values(), default=record.completed_at
        )
        self._keys[record.key].prune(self._floor)
        # Periodic global sweep: prune every key to the shared floor
        # and sample the total retained state for the high-water mark
        # (O(keys) amortized over SWEEP_EVERY completions).
        self._since_sweep += 1
        if self._since_sweep >= self.SWEEP_EVERY:
            self._sweep()

    def _evict(self, op_id: int) -> None:
        """Move one stuck op out of the window (subclass hook)."""
        self._overrun.add(op_id)

    def _sweep(self) -> None:
        self._since_sweep = 0
        retained = len(self._pending) + len(self._overrun)
        for state in self._keys.values():
            state.prune(self._floor)
            retained += state.retained()
        if retained > self.max_retained:
            self.max_retained = retained

    # -- the rules ------------------------------------------------------------

    def _state(self, key: Hashable):
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = self.key_state_factory()
        return state

    def _complete_write(self, record) -> None:
        self.checked_writes += 1
        state = self._state(record.key)
        state.written[record.value] = (
            record.invoked_at, record.completed_at
        )
        if state.write_values and not _ordered_less(
            state.write_values[-1], record.value
        ):
            self._flag(
                "writer-order",
                record.key,
                f"write {record.value!r} completed after "
                f"{state.write_values[-1]!r} but does not supersede it "
                f"(single-writer per-key values must be monotone)",
            )
            return
        state.write_times.append(record.completed_at)
        state.write_values.append(record.value)

    def _complete_read(self, record) -> None:
        self.checked_reads += 1
        state = self._state(record.key)
        value = record.result
        write_bound = state.write_bound(record.invoked_at)
        read_bound = state.read_bound(record.invoked_at)
        if value is BOTTOM:
            if write_bound is not None:
                self._flag(
                    "stale-read",
                    record.key,
                    f"read by {record.process} returned ⊥ although the "
                    f"write of {write_bound!r} completed before it started",
                )
            elif read_bound is not None:
                self._flag(
                    "read-inversion",
                    record.key,
                    f"read by {record.process} returned ⊥ although a "
                    f"preceding read returned {read_bound!r}",
                )
            return
        window = state.written.get(value)
        if window is None:
            if write_bound is not None and _ordered_less(value, write_bound):
                # Older than the retained window: superseded by a write
                # that completed before this read started.
                self._flag(
                    "stale-read",
                    record.key,
                    f"read by {record.process} returned {value!r} although "
                    f"the write of {write_bound!r} completed before it "
                    f"started",
                )
            else:
                self._flag(
                    "fabrication",
                    record.key,
                    f"read by {record.process} returned {value!r}, which "
                    f"no write wrote to this register",
                )
            return
        invoked_at, _ = window
        if invoked_at > record.completed_at:
            self._flag(
                "future-read",
                record.key,
                f"read by {record.process} returned {value!r}, whose "
                f"write was invoked only after the read completed",
            )
        if write_bound is not None and _ordered_less(value, write_bound):
            self._flag(
                "stale-read",
                record.key,
                f"read by {record.process} returned {value!r} although "
                f"the write of {write_bound!r} completed before it started",
            )
        if read_bound is not None and _ordered_less(value, read_bound):
            self._flag(
                "read-inversion",
                record.key,
                f"read by {record.process} returned {value!r} although a "
                f"preceding read returned {read_bound!r}",
            )
        if not state.read_values or _ordered_less(
            state.read_values[-1], value
        ):
            state.read_times.append(record.completed_at)
            state.read_values.append(value)

    def _flag(self, rule: str, key: Hashable, description: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_reported:
            self.violations.append(OnlineViolation(rule, key, description))

    # -- reporting ------------------------------------------------------------

    def report(self) -> OnlineReport:
        self._sweep()   # final measurement (runs shorter than a sweep)
        return OnlineReport(
            checked_writes=self.checked_writes,
            checked_reads=self.checked_reads,
            violation_count=self.violation_count,
            violations=tuple(self.violations),
            keys=tuple(sorted(self._keys, key=repr)),
            max_retained=self.max_retained,
            overrun_unchecked=self.overrun_unchecked,
            mode=self.mode,
        )


class _MwKeyState:
    """Bounded per-register state for the multi-writer checker.

    Mirrors :class:`_KeyState` with the total stamp order in place of
    the single-writer value order: the window maps *stamps* to their
    writes, the cummax series carry stamps, and reads whose write is
    still in flight park on the (globally unique) value until the write
    completes and reveals its actual stamp.
    """

    __slots__ = (
        "window", "stamp_of", "inflight", "evicted", "parked",
        "write_times", "write_stamps", "read_times", "read_stamps",
        "base_write_bound", "base_read_bound",
    )

    def __init__(self):
        # stamp -> (invoked_at, completed_at, value) for windowed writes.
        self.window: Dict[int, Tuple[float, float, Any]] = {}
        # value -> stamp for windowed writes (values are unique per key).
        self.stamp_of: Dict[Any, int] = {}
        # value -> invoked_at of begun-but-incomplete writes.
        self.inflight: Dict[Any, float] = {}
        # Values of writes evicted from the window while in flight:
        # reads returning them are skipped (overrun), never misjudged.
        self.evicted: set = set()
        # value -> [(reader process, claimed stamp), ...] of reads that
        # returned an in-flight write; resolved at write completion.
        self.parked: Dict[Any, List[Tuple[Any, int]]] = {}
        # Cummax series of completed write/read stamps, completion-
        # ordered, bisected by the bound queries below.
        self.write_times: List[float] = []
        self.write_stamps: List[int] = []
        self.read_times: List[float] = []
        self.read_stamps: List[int] = []
        self.base_write_bound: Optional[int] = None
        self.base_read_bound: Optional[int] = None

    def write_bound(self, before: float) -> Optional[int]:
        """Highest stamp whose write completed strictly before ``before``."""
        index = bisect_left(self.write_times, before)
        if index:
            return self.write_stamps[index - 1]
        return self.base_write_bound

    def read_bound(self, before: float) -> Optional[int]:
        """Highest stamp returned by a read completed strictly before
        ``before``."""
        index = bisect_left(self.read_times, before)
        if index:
            return self.read_stamps[index - 1]
        return self.base_read_bound

    def prune(self, floor: float) -> None:
        """Fold state older than the window ``floor`` into the bounds."""
        index = bisect_left(self.write_times, floor)
        if index:
            self.base_write_bound = self.write_stamps[index - 1]
            del self.write_times[:index]
            del self.write_stamps[:index]
        index = bisect_left(self.read_times, floor)
        if index:
            self.base_read_bound = self.read_stamps[index - 1]
            del self.read_times[:index]
            del self.read_stamps[:index]
        if self.base_write_bound is not None and self.window:
            bound = self.base_write_bound
            stale = [
                stamp
                for stamp, (_, completed_at, _value) in self.window.items()
                if completed_at < floor and stamp < bound
            ]
            for stamp in stale:
                value = self.window.pop(stamp)[2]
                if self.stamp_of.get(value) == stamp:
                    del self.stamp_of[value]

    def retained(self) -> int:
        return (
            len(self.window)
            + len(self.inflight)
            + len(self.evicted)
            + sum(len(waiting) for waiting in self.parked.values())
            + len(self.write_times)
            + len(self.read_times)
        )


class MultiWriterOnlineChecker(OnlineChecker):
    """Windowed online safety checking for *multi-writer* keyed histories.

    The polynomial MW mode: all rules run over the protocols' totally
    ordered stamps ``seq·2²⁰ + writer_id`` (see
    :func:`repro.storage.history.make_stamp`), which every storage
    protocol surfaces on ``record.meta["ts"]`` before completing an
    operation.  Checked per key, as operations complete:

    * **stamp-order** — a write's stamp must exceed the stamp of every
      write that completed before it was invoked (quorum discovery
      guarantees this for intersecting-quorum protocols);
    * **stamp-reuse** — two completed writes must never share a stamp;
    * **fabrication** — a read's returned (value, stamp) must match a
      write of this register;
    * **future-read** — a read must not return a write invoked only
      after the read completed;
    * **stale-read** — a read's stamp must not be below the highest
      stamp whose write completed before the read was invoked (and ⊥
      reads must not follow any completed write);
    * **read-inversion** — a read's stamp must not be below the highest
      stamp returned by a read that completed before this one started.

    A read returning a value whose write is still in flight is legal
    (the write may linearize before the read); the claimed-stamp match
    is deferred until the write completes.  Soundness under windowing is
    as in the SW checker: the floor is the oldest in-flight invocation,
    so every bound consulted for a completing operation is exact.
    """

    mode = "mw"
    key_state_factory = _MwKeyState

    def __init__(self, max_reported: int = 20,
                 overrun_ops: int = OnlineChecker.OVERRUN_OPS):
        super().__init__(max_reported=max_reported, overrun_ops=overrun_ops)
        # op_id -> (key, value) of in-flight writes, for eviction.
        self._pending_writes: Dict[int, Tuple[Hashable, Any]] = {}

    def on_begin(self, record) -> None:
        if record.kind in ("write", "read"):
            self._pending[record.op_id] = record.invoked_at
            if record.op_id > self._max_op_id:
                self._max_op_id = record.op_id
            if record.kind == "write":
                self._pending_writes[record.op_id] = (
                    record.key, record.value
                )
                state = self._state(record.key)
                state.inflight[record.value] = record.invoked_at

    def _evict(self, op_id: int) -> None:
        super()._evict(op_id)
        entry = self._pending_writes.pop(op_id, None)
        if entry is not None:
            key, value = entry
            state = self._state(key)
            state.inflight.pop(value, None)
            state.evicted.add(value)
            waiting = state.parked.pop(value, None)
            if waiting:
                self.overrun_unchecked += len(waiting)

    # -- the rules ------------------------------------------------------------

    def _complete_write(self, record) -> None:
        self.checked_writes += 1
        self._pending_writes.pop(record.op_id, None)
        state = self._state(record.key)
        state.inflight.pop(record.value, None)
        stamp = record.meta.get("ts")
        if stamp is None:
            self._flag(
                "missing-stamp",
                record.key,
                f"write {record.value!r} completed without a protocol "
                f"stamp in record.meta['ts']",
            )
            waiting = state.parked.pop(record.value, None)
            if waiting:
                self.overrun_unchecked += len(waiting)
            return
        bound = state.write_bound(record.invoked_at)
        if stamp in state.window:
            self._flag(
                "stamp-reuse",
                record.key,
                f"write {record.value!r} completed with stamp {stamp}, "
                f"already used by write "
                f"{state.window[stamp][2]!r}",
            )
        elif bound is not None and stamp <= bound:
            self._flag(
                "stamp-order",
                record.key,
                f"write {record.value!r} got stamp {stamp} although a "
                f"write with stamp {bound} completed before it was "
                f"invoked (stamps must respect real-time order)",
            )
        state.window[stamp] = (
            record.invoked_at, record.completed_at, record.value
        )
        state.stamp_of[record.value] = stamp
        if not state.write_stamps or stamp > state.write_stamps[-1]:
            state.write_times.append(record.completed_at)
            state.write_stamps.append(stamp)
        waiting = state.parked.pop(record.value, None)
        if waiting:
            for process, claimed in waiting:
                if claimed != stamp:
                    self._flag(
                        "fabrication",
                        record.key,
                        f"read by {process} returned {record.value!r} "
                        f"with stamp {claimed}, but its write carried "
                        f"stamp {stamp}",
                    )

    def _complete_read(self, record) -> None:
        self.checked_reads += 1
        state = self._state(record.key)
        value = record.result
        write_bound = state.write_bound(record.invoked_at)
        read_bound = state.read_bound(record.invoked_at)
        if value is BOTTOM:
            if write_bound is not None:
                self._flag(
                    "stale-read",
                    record.key,
                    f"read by {record.process} returned ⊥ although a "
                    f"write with stamp {write_bound} completed before it "
                    f"started",
                )
            elif read_bound is not None:
                self._flag(
                    "read-inversion",
                    record.key,
                    f"read by {record.process} returned ⊥ although a "
                    f"preceding read returned stamp {read_bound}",
                )
            return
        stamp = record.meta.get("ts")
        if stamp is None:
            self._flag(
                "missing-stamp",
                record.key,
                f"read by {record.process} returned {value!r} without a "
                f"protocol stamp in record.meta['ts']",
            )
            return
        stale = write_bound is not None and stamp < write_bound
        if stale:
            self._flag(
                "stale-read",
                record.key,
                f"read by {record.process} returned {value!r} with stamp "
                f"{stamp} although a write with stamp {write_bound} "
                f"completed before it started",
            )
        if read_bound is not None and stamp < read_bound:
            self._flag(
                "read-inversion",
                record.key,
                f"read by {record.process} returned {value!r} with stamp "
                f"{stamp} although a preceding read returned stamp "
                f"{read_bound}",
            )
        entry = state.window.get(stamp)
        if entry is not None:
            write_invoked, _, written_value = entry
            if written_value != value:
                self._flag(
                    "fabrication",
                    record.key,
                    f"read by {record.process} returned {value!r} with "
                    f"stamp {stamp}, but that stamp's write wrote "
                    f"{written_value!r}",
                )
            elif write_invoked > record.completed_at:
                self._flag(
                    "future-read",
                    record.key,
                    f"read by {record.process} returned {value!r}, whose "
                    f"write was invoked only after the read completed",
                )
        elif value in state.inflight:
            # Legal: the write may linearize before this read.  Defer
            # the claimed-stamp match to the write's completion.
            state.parked.setdefault(value, []).append(
                (record.process, stamp)
            )
        elif value in state.evicted:
            # The write outlived the window; its stamp is unknowable
            # now.  Skip, visibly, instead of misjudging.
            self.overrun_unchecked += 1
            return
        elif not stale:
            # Not a windowed write, not in flight, not superseded by a
            # newer completed write (which would have been pruned-and-
            # flagged above): nothing ever wrote this (value, stamp).
            self._flag(
                "fabrication",
                record.key,
                f"read by {record.process} returned {value!r} with stamp "
                f"{stamp}, which no write of this register produced",
            )
        if not state.read_stamps or stamp > state.read_stamps[-1]:
            state.read_times.append(record.completed_at)
            state.read_stamps.append(stamp)
