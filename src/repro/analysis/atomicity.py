"""SWMR register atomicity checking.

For a single-writer register whose writes carry *distinct* values, an
operation history is atomic (linearizable against the register spec) iff

1. every complete read returns ⊥ or a value some write wrote
   (**no fabrication** — the Theorem 3 proof's ex5 violates this);
2. a read never returns a value whose write was invoked only after the
   read completed (**no reading the future**);
3. if write ``w'`` strictly follows the write of the returned value and
   ``w'`` *precedes* the read, the read is stale (**no stale reads** —
   Figure 1's ex4 violates this);
4. if read ``r1`` precedes read ``r2``, then ``r2`` returns a version at
   least as new as ``r1``'s (**no read inversion**).

This characterization is standard for SWMR registers; the generic
Wing–Gong checker in :mod:`repro.analysis.linearizability` cross-checks
it on small histories.

The checker reports *all* violations rather than raising, so experiments
that intentionally reproduce violations (E1, E7) can present them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CheckerError
from repro.sim.trace import OperationRecord
from repro.storage.history import BOTTOM


@dataclass(frozen=True)
class Violation:
    """One atomicity violation, with the offending operations."""

    rule: str
    description: str
    operations: Tuple[OperationRecord, ...]

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"[{self.rule}] {self.description}"


@dataclass
class AtomicityReport:
    """Checker outcome: violations plus the version assignment used."""

    violations: Tuple[Violation, ...]
    versions: Dict[int, int]  # read op_id -> version index

    @property
    def atomic(self) -> bool:
        return not self.violations


def check_swmr_atomicity(
    records: Iterable[OperationRecord],
) -> AtomicityReport:
    """Check a SWMR history for atomicity; see the module docstring."""
    records = list(records)
    writes = sorted(
        (r for r in records if r.kind == "write"),
        key=lambda r: r.invoked_at,
    )
    reads = [r for r in records if r.kind == "read"]
    violations: List[Violation] = []

    _require_sequential_writer(writes)
    version_of_value = _version_map(writes)

    read_versions: Dict[int, int] = {}
    for read in reads:
        if not read.complete:
            continue
        value = read.result
        if value is BOTTOM:
            read_versions[read.op_id] = 0
            continue
        if value not in version_of_value:
            violations.append(
                Violation(
                    "fabrication",
                    f"read by {read.process} returned {value!r}, "
                    "which no write wrote",
                    (read,),
                )
            )
            continue
        read_versions[read.op_id] = version_of_value[value]

    # Rule 2: no reading the future.
    for read in reads:
        if not read.complete or read.op_id not in read_versions:
            continue
        version = read_versions[read.op_id]
        if version == 0:
            continue
        write = writes[version - 1]
        # Strict comparison: operations touching at a single instant are
        # concurrent (precedence is response < invocation), so a read
        # completing exactly when the write is invoked may still return
        # it — the Wing-Gong checker cross-validates this boundary.
        if write.invoked_at > read.completed_at:
            violations.append(
                Violation(
                    "future-read",
                    f"read by {read.process} returned the value of a "
                    "write invoked only after the read completed",
                    (read, write),
                )
            )

    # Rule 3: no stale reads w.r.t. preceding writes.
    for read in reads:
        if not read.complete or read.op_id not in read_versions:
            continue
        version = read_versions[read.op_id]
        for index, write in enumerate(writes, start=1):
            if index > version and write.precedes(read):
                violations.append(
                    Violation(
                        "stale-read",
                        f"read by {read.process} returned version "
                        f"{version} although write #{index} "
                        f"({write.value!r}) completed before it started",
                        (read, write),
                    )
                )

    # Rule 4: no read inversion.
    complete_reads = [
        r for r in reads if r.complete and r.op_id in read_versions
    ]
    for first in complete_reads:
        for second in complete_reads:
            if first.precedes(second):
                if read_versions[second.op_id] < read_versions[first.op_id]:
                    violations.append(
                        Violation(
                            "read-inversion",
                            f"read by {second.process} returned an older "
                            f"version than the preceding read by "
                            f"{first.process}",
                            (first, second),
                        )
                    )

    return AtomicityReport(tuple(violations), read_versions)


def assert_atomic(records: Iterable[OperationRecord]) -> AtomicityReport:
    """Raise :class:`~repro.errors.CheckerError` unless atomic."""
    report = check_swmr_atomicity(records)
    if not report.atomic:
        lines = "\n".join(str(v) for v in report.violations)
        raise CheckerError(f"history is not atomic:\n{lines}")
    return report


def _require_sequential_writer(writes: Sequence[OperationRecord]) -> None:
    for earlier, later in zip(writes, writes[1:]):
        earlier_end = (
            earlier.completed_at if earlier.complete else float("inf")
        )
        if later.invoked_at < earlier_end:
            raise CheckerError(
                "writer invoked overlapping writes; SWMR histories "
                "require a sequential writer"
            )


def _version_map(writes: Sequence[OperationRecord]) -> Dict[Any, int]:
    mapping: Dict[Any, int] = {}
    for index, write in enumerate(writes, start=1):
        if write.value in mapping:
            raise CheckerError(
                f"duplicate written value {write.value!r}; the checker "
                "requires distinct write values"
            )
        if write.value is BOTTOM:
            raise CheckerError("⊥ is outside the write domain")
        mapping[write.value] = index
    return mapping
