"""Register atomicity checking over the keyed register space.

Histories are **partitioned by register key** and every register is
checked independently — registers are independent objects, so by
locality of linearizability the history is atomic iff each per-key
sub-history is.  This turns the global check into a *sum* of per-key
checks: the quadratic rules below run over per-key operation counts,
which is strictly faster on mixed multi-register workloads and is what
makes million-op soak histories checkable.

For a single-writer register whose writes carry *distinct* values, a
per-key history is atomic (linearizable against the register spec) iff

1. every complete read returns ⊥ or a value some write wrote
   (**no fabrication** — the Theorem 3 proof's ex5 violates this);
2. a read never returns a value whose write was invoked only after the
   read completed (**no reading the future**);
3. if write ``w'`` strictly follows the write of the returned value and
   ``w'`` *precedes* the read, the read is stale (**no stale reads** —
   Figure 1's ex4 violates this);
4. if read ``r1`` precedes read ``r2``, then ``r2`` returns a version at
   least as new as ``r1``'s (**no read inversion**).

This characterization is standard for SWMR registers; the generic
Wing–Gong checker in :mod:`repro.analysis.linearizability` cross-checks
it on small histories.  Registers written *concurrently by distinct
writers* (multi-writer workloads) fall outside the SWMR
characterization; those keys are handed to the Wing–Gong checker
directly and report a single ``mwmr-not-linearizable`` violation when
it fails.

The checker reports *all* violations rather than raising, so experiments
that intentionally reproduce violations (E1, E7) can present them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.errors import CheckerError
from repro.analysis.linearizability import is_linearizable
from repro.sim.trace import OperationRecord
from repro.storage.history import BOTTOM, DEFAULT_KEY


@dataclass(frozen=True)
class Violation:
    """One atomicity violation, with the offending operations."""

    rule: str
    description: str
    operations: Tuple[OperationRecord, ...]

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"[{self.rule}] {self.description}"


@dataclass
class AtomicityReport:
    """Checker outcome: violations plus the version assignment used.

    For multi-register histories the top-level report is the aggregate
    (violations concatenated in key order, versions merged) and
    ``by_key`` holds one independent report per register; single-key
    reports leave ``by_key`` empty.
    """

    violations: Tuple[Violation, ...]
    versions: Dict[int, int]  # read op_id -> version index
    by_key: Dict[Hashable, "AtomicityReport"] = field(default_factory=dict)

    @property
    def atomic(self) -> bool:
        return not self.violations

    def report_for(self, key: Hashable) -> "AtomicityReport":
        """The per-register report for one key (self when unpartitioned)."""
        return self.by_key.get(key, self)

    def verdicts(self) -> Dict[Hashable, bool]:
        """Per-key ``atomic`` verdicts (one entry for single-key runs)."""
        if self.by_key:
            return {key: rep.atomic for key, rep in self.by_key.items()}
        return {DEFAULT_KEY: self.atomic}


def partition_by_key(
    records: Iterable[OperationRecord],
) -> Dict[Hashable, List[OperationRecord]]:
    """Storage operations grouped per register key, key-sorted.

    Only ``write``/``read`` records carry register semantics; other
    kinds (propose/learn) are dropped.  Keys are ordered by ``repr`` so
    aggregate reports are deterministic.
    """
    groups: Dict[Hashable, List[OperationRecord]] = {}
    for record in records:
        if record.kind in ("write", "read"):
            key = getattr(record, "key", DEFAULT_KEY)
            groups.setdefault(key, []).append(record)
    return {key: groups[key] for key in sorted(groups, key=repr)}


def check_by_key(records, check_register, make_report):
    """Partition ``records`` by key, check each register with
    ``check_register``, and aggregate (violations concatenated in key
    order, versions merged) via ``make_report(violations, versions,
    by_key)``.  Single-key histories return their lone per-register
    report directly — the exact historical code path and report shape.
    Shared by the atomicity and regularity checkers.
    """
    groups = partition_by_key(records)
    if len(groups) <= 1:
        only = next(iter(groups.values()), [])
        return check_register(only)
    by_key = {key: check_register(group) for key, group in groups.items()}
    violations: List[Violation] = []
    versions: Dict[int, int] = {}
    for report in by_key.values():
        violations.extend(report.violations)
        versions.update(report.versions)
    return make_report(tuple(violations), versions, by_key)


def check_swmr_atomicity(
    records: Iterable[OperationRecord],
) -> AtomicityReport:
    """Check a (keyed) register history for atomicity.

    Partitions by key and checks each register independently; see the
    module docstring.
    """
    return check_by_key(
        records,
        _check_register,
        lambda violations, versions, by_key: AtomicityReport(
            violations, versions, by_key=by_key
        ),
    )


def _check_register(records: Sequence[OperationRecord]) -> AtomicityReport:
    """Atomicity of one register's history (the pre-keyed checker body)."""
    records = list(records)
    writes = sorted(
        (r for r in records if r.kind == "write"),
        key=lambda r: r.invoked_at,
    )
    reads = [r for r in records if r.kind == "read"]
    violations: List[Violation] = []

    if _has_concurrent_writers(writes):
        # Multi-writer register: outside the SWMR characterization —
        # decided by the generic Wing–Gong checker on this key alone.
        if is_linearizable(records):
            return AtomicityReport((), {})
        return AtomicityReport(
            (
                Violation(
                    "mwmr-not-linearizable",
                    "concurrently-written register history admits no "
                    "linearization",
                    tuple(writes),
                ),
            ),
            {},
        )

    _require_sequential_writer(writes)
    version_of_value = _version_map(writes)

    read_versions: Dict[int, int] = {}
    for read in reads:
        if not read.complete:
            continue
        value = read.result
        if value is BOTTOM:
            read_versions[read.op_id] = 0
            continue
        if value not in version_of_value:
            violations.append(
                Violation(
                    "fabrication",
                    f"read by {read.process} returned {value!r}, "
                    "which no write wrote",
                    (read,),
                )
            )
            continue
        read_versions[read.op_id] = version_of_value[value]

    # Rule 2: no reading the future.
    for read in reads:
        if not read.complete or read.op_id not in read_versions:
            continue
        version = read_versions[read.op_id]
        if version == 0:
            continue
        write = writes[version - 1]
        # Strict comparison: operations touching at a single instant are
        # concurrent (precedence is response < invocation), so a read
        # completing exactly when the write is invoked may still return
        # it — the Wing-Gong checker cross-validates this boundary.
        if write.invoked_at > read.completed_at:
            violations.append(
                Violation(
                    "future-read",
                    f"read by {read.process} returned the value of a "
                    "write invoked only after the read completed",
                    (read, write),
                )
            )

    # Rule 3: no stale reads w.r.t. preceding writes.
    for read in reads:
        if not read.complete or read.op_id not in read_versions:
            continue
        version = read_versions[read.op_id]
        for index, write in enumerate(writes, start=1):
            if index > version and write.precedes(read):
                violations.append(
                    Violation(
                        "stale-read",
                        f"read by {read.process} returned version "
                        f"{version} although write #{index} "
                        f"({write.value!r}) completed before it started",
                        (read, write),
                    )
                )

    # Rule 4: no read inversion.
    complete_reads = [
        r for r in reads if r.complete and r.op_id in read_versions
    ]
    for first in complete_reads:
        for second in complete_reads:
            if first.precedes(second):
                if read_versions[second.op_id] < read_versions[first.op_id]:
                    violations.append(
                        Violation(
                            "read-inversion",
                            f"read by {second.process} returned an older "
                            f"version than the preceding read by "
                            f"{first.process}",
                            (first, second),
                        )
                    )

    return AtomicityReport(tuple(violations), read_versions)


def assert_atomic(records: Iterable[OperationRecord]) -> AtomicityReport:
    """Raise :class:`~repro.errors.CheckerError` unless atomic."""
    report = check_swmr_atomicity(records)
    if not report.atomic:
        lines = "\n".join(str(v) for v in report.violations)
        raise CheckerError(f"history is not atomic:\n{lines}")
    return report


def _has_concurrent_writers(writes: Sequence[OperationRecord]) -> bool:
    """True when writes of *distinct* writers overlap in real time
    (a genuine multi-writer register).  Overlapping writes by a single
    client are still a well-formedness error, raised by
    :func:`_require_sequential_writer`."""
    for earlier, later in zip(writes, writes[1:]):
        earlier_end = (
            earlier.completed_at if earlier.complete else float("inf")
        )
        if later.invoked_at < earlier_end and later.process != earlier.process:
            return True
    return False


def _require_sequential_writer(writes: Sequence[OperationRecord]) -> None:
    for earlier, later in zip(writes, writes[1:]):
        earlier_end = (
            earlier.completed_at if earlier.complete else float("inf")
        )
        if later.invoked_at < earlier_end:
            # Elements of one *batched* round-trip share the wire
            # interval but are logically sequential; their strictly
            # increasing stamps certify the program order the version
            # map below relies on.
            earlier_ts = earlier.meta.get("ts")
            later_ts = later.meta.get("ts")
            if (
                earlier.process == later.process
                and earlier_ts is not None
                and later_ts is not None
                and earlier_ts < later_ts
            ):
                continue
            raise CheckerError(
                "writer invoked overlapping writes; SWMR histories "
                "require a sequential writer"
            )


def _version_map(writes: Sequence[OperationRecord]) -> Dict[Any, int]:
    mapping: Dict[Any, int] = {}
    for index, write in enumerate(writes, start=1):
        if write.value in mapping:
            raise CheckerError(
                f"duplicate written value {write.value!r}; the checker "
                "requires distinct write values"
            )
        if write.value is BOTTOM:
            raise CheckerError("⊥ is outside the write domain")
        mapping[write.value] = index
    return mapping
