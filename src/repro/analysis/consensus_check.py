"""Consensus correctness verdicts over execution traces.

Checks the three properties of Section 4.1 on the operation records
produced by :class:`repro.consensus.system.ConsensusSystem`:

* **Validity** — if all proposers are benign, every value learned by a
  benign learner was proposed;
* **Agreement** — no two benign learners learn different values;
* **Termination** — every correct learner learned (checked against an
  explicit set of learners expected to be correct).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import AgreementViolation, ValidityViolation
from repro.sim.trace import OperationRecord


@dataclass
class ConsensusReport:
    """Outcome of checking one consensus execution."""

    proposed: Tuple[Any, ...]
    learned: Dict[Hashable, Any]
    agreement_ok: bool
    validity_ok: bool
    unterminated: Tuple[Hashable, ...]
    problems: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return (
            self.agreement_ok
            and self.validity_ok
            and not self.unterminated
        )


def check_consensus(
    records: Iterable[OperationRecord],
    benign_learners: Optional[Iterable[Hashable]] = None,
    correct_learners: Optional[Iterable[Hashable]] = None,
    all_proposers_benign: bool = True,
) -> ConsensusReport:
    """Evaluate Validity / Agreement / Termination on a trace.

    ``benign_learners`` filters whose "learn" records count (Byzantine
    learners may "learn" anything); ``correct_learners`` is the set that
    Termination obliges to learn — pass the learners that are correct and
    entitled to terminate in the scenario.
    """
    records = list(records)
    proposals = tuple(
        r.value for r in records if r.kind == "propose"
    )
    benign = None if benign_learners is None else set(benign_learners)

    learned: Dict[Hashable, Any] = {}
    problems: List[str] = []
    for record in records:
        if record.kind != "learn" or not record.complete:
            continue
        if benign is not None and record.process not in benign:
            continue
        if record.process in learned and learned[record.process] != record.result:
            problems.append(
                f"learner {record.process!r} learned twice with different "
                f"values: {learned[record.process]!r} then {record.result!r}"
            )
        learned[record.process] = record.result

    values = set(learned.values())
    agreement_ok = len(values) <= 1
    if not agreement_ok:
        problems.append(f"learners disagree: {sorted(map(repr, values))}")

    validity_ok = True
    if all_proposers_benign:
        for process, value in learned.items():
            if value not in proposals:
                validity_ok = False
                problems.append(
                    f"learner {process!r} learned unproposed value {value!r}"
                )

    unterminated: Tuple[Hashable, ...] = ()
    if correct_learners is not None:
        unterminated = tuple(
            l for l in correct_learners if l not in learned
        )
        if unterminated:
            problems.append(
                f"correct learners did not learn: {list(unterminated)}"
            )

    return ConsensusReport(
        proposed=proposals,
        learned=learned,
        agreement_ok=agreement_ok,
        validity_ok=validity_ok,
        unterminated=unterminated,
        problems=tuple(problems),
    )


def assert_consensus(
    records: Iterable[OperationRecord],
    benign_learners: Optional[Iterable[Hashable]] = None,
    correct_learners: Optional[Iterable[Hashable]] = None,
) -> ConsensusReport:
    """Raise on any violated property."""
    report = check_consensus(
        records, benign_learners, correct_learners
    )
    if not report.agreement_ok:
        raise AgreementViolation("; ".join(report.problems))
    if not report.validity_ok:
        raise ValidityViolation("; ".join(report.problems))
    if report.unterminated:
        raise AssertionError("; ".join(report.problems))
    return report
