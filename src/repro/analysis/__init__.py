"""Correctness checkers and latency accounting."""

from repro.analysis.atomicity import (
    AtomicityReport,
    Violation,
    assert_atomic,
    check_swmr_atomicity,
)
from repro.analysis.consensus_check import (
    ConsensusReport,
    assert_consensus,
    check_consensus,
)
from repro.analysis.latency import (
    LatencySummary,
    learner_delays,
    message_delays,
    summarize_rounds,
    worst_learner_delay,
)
from repro.analysis.linearizability import is_linearizable
from repro.analysis.regularity import RegularityReport, check_swmr_regularity

__all__ = [
    "AtomicityReport",
    "Violation",
    "assert_atomic",
    "check_swmr_atomicity",
    "ConsensusReport",
    "assert_consensus",
    "check_consensus",
    "LatencySummary",
    "learner_delays",
    "message_delays",
    "summarize_rounds",
    "worst_learner_delay",
    "is_linearizable",
    "RegularityReport",
    "check_swmr_regularity",
]
