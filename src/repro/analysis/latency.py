"""Latency accounting: rounds (storage) and message delays (consensus).

Storage operations self-report their round count (the protocol counts
rounds as it runs).  For consensus, message-delay latency is derived from
wall-clock simulated time under a uniform per-hop delay ``Δ``:
``delays = (t_learn − t_propose) / Δ`` — exact when every link has the
same latency, which is how the best-case benches are configured.

Summaries have two equivalent producers: the list-based
:func:`summarize_rounds` over retained records (FULL traces), and the
streaming :meth:`LatencySummary.from_accumulator` over an online
:class:`~repro.analysis.streaming.LatencyAccumulator` (METRICS traces,
where the history is never materialized).  Whenever the accumulator's
quantile reservoir still holds the full stream the two paths agree
exactly — pinned by ``tests/scenarios/test_streaming.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from statistics import mean
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.streaming import LatencyAccumulator, nearest_rank
from repro.sim.trace import OperationRecord


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated latency numbers for one operation kind.

    ``p50_time``/``p99_time`` are nearest-rank percentiles of the
    completion-time distribution — exact from retained records, a
    bounded-reservoir estimate on streamed runs past the reservoir
    capacity.
    """

    kind: str
    count: int
    min_rounds: Optional[int]
    max_rounds: Optional[int]
    mean_rounds: Optional[float]
    min_time: Optional[float]
    max_time: Optional[float]
    mean_time: Optional[float] = None
    p50_time: Optional[float] = None
    p99_time: Optional[float] = None

    def row(self) -> str:
        return (
            f"{self.kind:<8} n={self.count:<4} "
            f"rounds[min/mean/max]={self.min_rounds}/"
            f"{self.mean_rounds}/{self.max_rounds} "
            f"time[min/p50/p99/max]={self.min_time}/{self.p50_time}/"
            f"{self.p99_time}/{self.max_time}"
        )

    @classmethod
    def from_accumulator(
        cls, accumulator: Optional[LatencyAccumulator], kind: str = ""
    ) -> "LatencySummary":
        """The streaming summary of one online accumulator.

        ``None`` (no completion of that kind was ever observed) maps to
        the same empty summary the list-based path produces.
        """
        if accumulator is None or not accumulator.count:
            return cls(kind, 0, None, None, None, None, None)
        return cls(
            kind=accumulator.kind or kind,
            count=accumulator.count,
            min_rounds=accumulator.min_rounds,
            max_rounds=accumulator.max_rounds,
            mean_rounds=accumulator.mean_rounds,
            min_time=accumulator.min_time,
            max_time=accumulator.max_time,
            mean_time=accumulator.mean_time,
            p50_time=accumulator.quantile(0.50),
            p99_time=accumulator.quantile(0.99),
        )


def summarize_rounds(
    records: Iterable[OperationRecord], kind: str
) -> LatencySummary:
    """Aggregate the self-reported round counts of completed operations."""
    done = [r for r in records if r.kind == kind and r.complete]
    if not done:
        return LatencySummary(kind, 0, None, None, None, None, None)
    rounds = [r.rounds for r in done]
    times = sorted(r.completed_at - r.invoked_at for r in done)
    # Exact rational mean, like the streaming accumulator's running sum,
    # so the two paths cannot drift by float-summation order.
    mean_time = float(sum(map(Fraction, times)) / len(times))
    return LatencySummary(
        kind=kind,
        count=len(done),
        min_rounds=min(rounds),
        max_rounds=max(rounds),
        mean_rounds=round(mean(rounds), 3),
        min_time=times[0],
        max_time=times[-1],
        mean_time=round(mean_time, 6),
        p50_time=nearest_rank(times, 0.50),
        p99_time=nearest_rank(times, 0.99),
    )


def message_delays(
    learn_record: OperationRecord, propose_time: float, delta: float
) -> float:
    """Message-delay latency of one learn event under uniform ``Δ``."""
    if not learn_record.complete:
        raise ValueError("learner has not learned")
    return (learn_record.completed_at - propose_time) / delta


def learner_delays(
    records: Iterable[OperationRecord],
    propose_time: float,
    delta: float,
) -> Dict[Hashable, float]:
    """Message delays for every completed learn record in a trace."""
    out: Dict[Hashable, float] = {}
    for record in records:
        if record.kind == "learn" and record.complete:
            out[record.process] = message_delays(record, propose_time, delta)
    return out


def worst_learner_delay(
    records: Iterable[OperationRecord],
    propose_time: float,
    delta: float,
) -> Optional[float]:
    delays = learner_delays(records, propose_time, delta)
    return max(delays.values()) if delays else None
