"""Latency accounting: rounds (storage) and message delays (consensus).

Storage operations self-report their round count (the protocol counts
rounds as it runs).  For consensus, message-delay latency is derived from
wall-clock simulated time under a uniform per-hop delay ``Δ``:
``delays = (t_learn − t_propose) / Δ`` — exact when every link has the
same latency, which is how the best-case benches are configured.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.trace import OperationRecord


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated latency numbers for one operation kind."""

    kind: str
    count: int
    min_rounds: Optional[int]
    max_rounds: Optional[int]
    mean_rounds: Optional[float]
    min_time: Optional[float]
    max_time: Optional[float]

    def row(self) -> str:
        return (
            f"{self.kind:<8} n={self.count:<4} "
            f"rounds[min/mean/max]={self.min_rounds}/"
            f"{self.mean_rounds}/{self.max_rounds} "
            f"time[min/max]={self.min_time}/{self.max_time}"
        )


def summarize_rounds(
    records: Iterable[OperationRecord], kind: str
) -> LatencySummary:
    """Aggregate the self-reported round counts of completed operations."""
    done = [r for r in records if r.kind == kind and r.complete]
    if not done:
        return LatencySummary(kind, 0, None, None, None, None, None)
    rounds = [r.rounds for r in done]
    times = [r.completed_at - r.invoked_at for r in done]
    return LatencySummary(
        kind=kind,
        count=len(done),
        min_rounds=min(rounds),
        max_rounds=max(rounds),
        mean_rounds=round(mean(rounds), 3),
        min_time=min(times),
        max_time=max(times),
    )


def message_delays(
    learn_record: OperationRecord, propose_time: float, delta: float
) -> float:
    """Message-delay latency of one learn event under uniform ``Δ``."""
    if not learn_record.complete:
        raise ValueError("learner has not learned")
    return (learn_record.completed_at - propose_time) / delta


def learner_delays(
    records: Iterable[OperationRecord],
    propose_time: float,
    delta: float,
) -> Dict[Hashable, float]:
    """Message delays for every completed learn record in a trace."""
    out: Dict[Hashable, float] = {}
    for record in records:
        if record.kind == "learn" and record.complete:
            out[record.process] = message_delays(record, propose_time, delta)
    return out


def worst_learner_delay(
    records: Iterable[OperationRecord],
    propose_time: float,
    delta: float,
) -> Optional[float]:
    delays = learner_delays(records, propose_time, delta)
    return max(delays.values()) if delays else None
