"""A generic Wing–Gong linearizability checker for register histories.

Exponential in the worst case — intended for the small histories produced
by scripted experiments and for cross-validating the specialized SWMR
checker of :mod:`repro.analysis.atomicity` in property-based tests.

The sequential specification is a read/write register initialized to ⊥:
``write(v)`` always succeeds and sets the state; ``read()`` returns the
current state.  Incomplete (pending) operations may either be dropped or
take effect — both possibilities are explored, per the standard
definition of linearizability for histories with pending invocations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, FrozenSet, Iterable, List, Optional, Tuple

from repro.sim.trace import OperationRecord
from repro.storage.history import BOTTOM


class _Op:
    __slots__ = ("index", "kind", "value", "result", "start", "end", "pending")

    def __init__(self, index, kind, value, result, start, end, pending):
        self.index = index
        self.kind = kind
        self.value = value
        self.result = result
        self.start = start
        self.end = end
        self.pending = pending


def is_linearizable(records: Iterable[OperationRecord]) -> bool:
    """Decide linearizability of a (keyed) register history.

    The history is partitioned by register key and each register is
    decided independently — registers are independent objects, so by
    locality the whole history is linearizable iff every per-key
    sub-history is.  Partitioning also shrinks the exponential search:
    ``k`` registers of ``n`` operations cost ``k · O(f(n))`` instead of
    ``O(f(k·n))``.

    Pending reads are ignored (they impose no constraint); pending writes
    may or may not take effect and are explored both ways.
    """
    groups = {}
    for record in records:
        if record.kind in ("write", "read"):
            key = getattr(record, "key", 0)
            groups.setdefault(key, []).append(record)
    return all(
        _register_linearizable(group) for group in groups.values()
    )


def _register_linearizable(records: Iterable[OperationRecord]) -> bool:
    """Wing–Gong search over one register's operations."""
    ops: List[_Op] = []
    for record in records:
        pending = not record.complete
        if record.kind == "read" and pending:
            continue  # a pending read constrains nothing
        end = record.completed_at if record.complete else float("inf")
        ops.append(
            _Op(
                len(ops),
                record.kind,
                record.value,
                record.result,
                record.invoked_at,
                end,
                pending,
            )
        )

    n = len(ops)
    if n == 0:
        return True
    full_mask = (1 << n) - 1

    # precedence: op i must linearize before op j if i.end < j.start
    @lru_cache(maxsize=None)
    def explore(done_mask: int, state_key: Any) -> bool:
        if done_mask == full_mask:
            return True
        for op in ops:
            bit = 1 << op.index
            if done_mask & bit:
                continue
            # op is eligible iff every operation that *precedes* it is done
            eligible = True
            for other in ops:
                other_bit = 1 << other.index
                if done_mask & other_bit or other.index == op.index:
                    continue
                if other.end < op.start:
                    eligible = False
                    break
            if not eligible:
                continue
            if op.kind == "write":
                if explore(done_mask | bit, op.value):
                    return True
                if op.pending:
                    # a pending write may also never take effect: skip it
                    if explore(done_mask | bit, state_key):
                        return True
            elif op.kind == "read":
                current = BOTTOM if state_key is _INIT else state_key
                if op.result == current or (
                    op.result is BOTTOM and current is BOTTOM
                ):
                    if explore(done_mask | bit, state_key):
                        return True
        return False

    result = explore(0, _INIT)
    explore.cache_clear()
    return result


class _InitSentinel:
    def __repr__(self) -> str:
        return "<init>"


_INIT = _InitSentinel()
