"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class AdversaryError(ReproError):
    """An adversary structure is malformed (e.g. not subset-closed)."""


class QuorumSystemError(ReproError):
    """A (refined) quorum system is malformed or violates its properties."""


class PropertyViolation(QuorumSystemError):
    """A specific RQS property does not hold.

    Attributes
    ----------
    property_name:
        One of ``"P1"``, ``"P2"``, ``"P3"``.
    witness:
        A tuple of the sets witnessing the violation (shape depends on the
        property; see :mod:`repro.core.properties`).
    """

    def __init__(self, property_name: str, witness: tuple, message: str = ""):
        self.property_name = property_name
        self.witness = witness
        text = message or f"RQS property {property_name} violated: {witness!r}"
        super().__init__(text)


class SimulationError(ReproError):
    """The simulation reached an invalid state (bug or bad configuration)."""


class DeadlockError(SimulationError):
    """The event queue drained while tasks were still blocked."""


class ProtocolError(ReproError):
    """A protocol implementation observed an impossible condition."""


class ScenarioError(ReproError):
    """A scenario specification is malformed or unsupported."""


class UnknownProtocolError(ScenarioError):
    """A scenario names a protocol id that was never registered."""


class CheckerError(ReproError):
    """A correctness checker was fed a malformed history."""


class AtomicityViolation(CheckerError):
    """An operation history is not atomic (not linearizable).

    Carries the offending operations so experiments can report them.
    """

    def __init__(self, message: str, operations: tuple = ()):
        self.operations = operations
        super().__init__(message)


class AgreementViolation(CheckerError):
    """Two benign learners learned different values."""


class ValidityViolation(CheckerError):
    """A learned value was never proposed although all proposers are benign."""
