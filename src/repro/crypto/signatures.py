"""Simulated digital signatures.

The consensus algorithm authenticates some messages (``new_view_ack``,
``sign_ack``, ``view_change``) with signatures whose only required
property is the paper's unforgeability axiom: *if a Byzantine process
sends ⟨m⟩_σp for a benign process p, then p already sent ⟨m⟩_σp*.

Instead of real cryptography we use a bookkeeping oracle: a
:class:`SignatureService` records every ``(signer, content)`` pair that
was genuinely signed, and verification checks membership.  Byzantine
processes may *replay* signatures they have seen (matching real crypto)
but any fabricated :class:`Signed` object fails verification because the
service never recorded it.

``Signed`` values are immutable and hashable so they can travel inside
message payloads and be stored in ``Updateproof`` sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable, Iterable, Set, Tuple

from repro.errors import ProtocolError


@dataclass(frozen=True)
class Signed:
    """A signed statement: ``content`` claimed to be signed by ``signer``."""

    signer: Hashable
    content: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signed({self.signer!r}, {self.content!r})"


class SignatureService:
    """The signing/verification oracle for one execution."""

    def __init__(self):
        self._genuine: Set[Tuple[Hashable, Any]] = set()

    def sign(self, signer: Hashable, content: Any) -> Signed:
        """Produce a genuine signature (only the signer itself may call).

        Protocol code must route all signing through the owning process;
        the service cannot tell callers apart (that is the processes'
        contract), but Byzantine *forgery* — building a ``Signed`` for a
        benign signer without calling ``sign`` as it — is detected by
        :meth:`verify`.
        """
        record = (signer, _freeze(content))
        self._genuine.add(record)
        return Signed(signer, content)

    def verify(self, signature: Signed) -> bool:
        """True iff the signature was genuinely produced in this execution."""
        return (signature.signer, _freeze(signature.content)) in self._genuine

    def verify_all(self, signatures: Iterable[Signed]) -> bool:
        return all(self.verify(s) for s in signatures)

    def require(self, signature: Signed) -> None:
        if not self.verify(signature):
            raise ProtocolError(f"forged signature detected: {signature!r}")


def _freeze(content: Any) -> Any:
    """Best-effort conversion of content to a hashable canonical form."""
    if isinstance(content, (list, tuple)):
        return tuple(_freeze(c) for c in content)
    if isinstance(content, (set, frozenset)):
        return frozenset(_freeze(c) for c in content)
    if isinstance(content, dict):
        return tuple(
            sorted(((_freeze(k), _freeze(v)) for k, v in content.items()),
                   key=repr)
        )
    return content
