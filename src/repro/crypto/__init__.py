"""Simulated cryptographic primitives (unforgeable signatures)."""

from repro.crypto.signatures import SignatureService, Signed

__all__ = ["SignatureService", "Signed"]
