"""repro — a reproduction of "Refined Quorum Systems" (Guerraoui &
Vukolić, PODC 2007).

The library provides:

* :mod:`repro.core` — refined quorum systems over general adversary
  structures (the paper's primary contribution).
* :mod:`repro.sim` — a deterministic discrete-event simulation substrate
  modelling the paper's asynchronous message-passing system.
* :mod:`repro.storage` — the optimally-resilient, best-case-optimal
  Byzantine atomic storage algorithm (Figures 5–7) plus baselines.
* :mod:`repro.consensus` — the RQS-based Byzantine consensus algorithm
  (Figures 9–15) plus baselines.
* :mod:`repro.analysis` — atomicity/linearizability/consensus checkers
  and latency accounting.
* :mod:`repro.experiments` — drivers regenerating every figure and claim
  of the paper (see DESIGN.md for the experiment index).
"""

__version__ = "1.0.0"

from repro.core import (
    Adversary,
    ExplicitAdversary,
    RefinedQuorumSystem,
    ThresholdAdversary,
)

__all__ = [
    "Adversary",
    "ExplicitAdversary",
    "RefinedQuorumSystem",
    "ThresholdAdversary",
    "__version__",
]
