"""repro — a reproduction of "Refined Quorum Systems" (Guerraoui &
Vukolić, PODC 2007).

The library provides:

* :mod:`repro.core` — refined quorum systems over general adversary
  structures (the paper's primary contribution).
* :mod:`repro.sim` — a deterministic discrete-event simulation substrate
  modelling the paper's asynchronous message-passing system.
* :mod:`repro.storage` — the optimally-resilient, best-case-optimal
  Byzantine atomic storage algorithm (Figures 5–7) plus baselines.
* :mod:`repro.consensus` — the RQS-based Byzantine consensus algorithm
  (Figures 9–15) plus baselines.
* :mod:`repro.analysis` — atomicity/linearizability/consensus checkers
  and latency accounting.
* :mod:`repro.scenarios` — the unified declarative scenario layer: a
  :class:`~repro.scenarios.ScenarioSpec` plus ``run(spec)`` is the
  public way to execute any protocol under any fault schedule, and a
  :class:`~repro.scenarios.SweepSpec` plus ``run_grid(sweep)`` is the
  public way to execute a whole grid of them (serial or
  multiprocessing).
* :mod:`repro.experiments` — drivers regenerating every figure and claim
  of the paper (see docs/experiments.md); each one is a sweep grid
  literal plus a reporting hook.

All executions go through :mod:`repro.scenarios`: build a spec, call
``run``, read verdicts off the :class:`~repro.scenarios.RunResult` —
and all parameter studies go through sweeps: build a grid literal, call
``run_grid``, export the :class:`~repro.scenarios.SweepResult`.
"""

__version__ = "1.1.0"

from repro.core import (
    Adversary,
    ExplicitAdversary,
    RefinedQuorumSystem,
    ThresholdAdversary,
)
from repro.scenarios import (
    ByzantineRole,
    Crash,
    FaultPlan,
    Propose,
    RandomMix,
    Read,
    RunResult,
    ScenarioSpec,
    SweepResult,
    SweepSpec,
    Write,
    available_protocols,
    labeled,
    register_protocol,
    run,
    run_grid,
    write_bench_json,
)

__all__ = [
    "Adversary",
    "ByzantineRole",
    "Crash",
    "ExplicitAdversary",
    "FaultPlan",
    "Propose",
    "RandomMix",
    "Read",
    "RefinedQuorumSystem",
    "RunResult",
    "ScenarioSpec",
    "SweepResult",
    "SweepSpec",
    "ThresholdAdversary",
    "Write",
    "__version__",
    "available_protocols",
    "labeled",
    "register_protocol",
    "run",
    "run_grid",
    "write_bench_json",
]
