"""Wire messages of the RQS consensus algorithm (Figures 9-15).

``Update`` messages are unauthenticated (they carry the best-case path);
``NewViewAck``, ``SignAck`` and ``ViewChange`` are authenticated via
:class:`repro.crypto.signatures.Signed` wrappers, used only outside the
best case, per the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable, Optional, Tuple

from repro.crypto.signatures import Signed

QuorumId = FrozenSet[Hashable]


@dataclass(frozen=True)
class Prepare:
    """``prepare⟨v, view, vProof, Q⟩`` (Figure 15 line 9)."""

    value: Any
    view: int
    v_proof: Optional[Tuple[Signed, ...]]   # new_view_acks; None in initView
    quorum: Optional[QuorumId]              # the quorum vProof came from


@dataclass(frozen=True)
class Update:
    """``update_step⟨v, view, Q⟩`` (Figure 15 lines 33/38).

    ``step ∈ {1, 2, 3}``; ``quorum`` is ``∅``-equivalent ``None`` for
    step 1 and the triggering quorum for steps 2 and 3.
    """

    step: int
    value: Any
    view: int
    quorum: Optional[QuorumId]


def update_statement(step: int, value: Any, view: int) -> Tuple:
    """Canonical signable content of an update message (``Q`` excluded:
    ``sign_req`` matches ``update_step⟨v, w, ∗⟩``)."""
    return ("update", step, value, view)


@dataclass(frozen=True)
class NewView:
    """``new_view⟨view, viewProof⟩`` (Figure 15 line 2)."""

    view: int
    view_proof: Optional[Tuple[Signed, ...]]  # signed view_change messages


@dataclass(frozen=True, eq=False)
class AckData:
    """The unsigned body of a ``new_view_ack`` (Figure 15 line 28).

    Mirrors the acceptor variables: ``prep``/``prep_view`` (last prepared
    value and its views), ``update[step]`` / ``update_view[step]`` /
    ``update_q[(step, w)]`` / ``update_proof[(step, w)]`` for
    ``step ∈ {1, 2}``.  The body is signed via :meth:`canonical`.
    """

    view: int
    prep: Any
    prep_view: FrozenSet[int]
    update: "dict[int, Any]"
    update_view: "dict[int, FrozenSet[int]]"
    update_q: "dict[tuple[int, int], Tuple[QuorumId, ...]]"
    update_proof: "dict[tuple[int, int], Tuple[Signed, ...]]"

    def update_q_of(self, step: int, view: int) -> Tuple[QuorumId, ...]:
        return self.update_q.get((step, view), ())

    def update_proof_of(self, step: int, view: int) -> Tuple[Signed, ...]:
        return self.update_proof.get((step, view), ())

    def canonical(self) -> Tuple:
        """A hashable form binding every field (signature content)."""
        return (
            "new_view_ack",
            self.view,
            self.prep,
            tuple(sorted(self.prep_view)),
            tuple(sorted(self.update.items(), key=repr)),
            tuple(
                sorted(
                    ((k, tuple(sorted(v))) for k, v in self.update_view.items()),
                    key=repr,
                )
            ),
            tuple(sorted(self.update_q.items(), key=repr)),
            tuple(sorted(self.update_proof.items(), key=repr)),
        )


@dataclass(frozen=True)
class NewViewAck:
    """A signed ``new_view_ack``: the body plus the acceptor signature."""

    body: AckData
    signature: Signed


@dataclass(frozen=True)
class SignReq:
    """``sign_req⟨v, w, step⟩`` (Figure 15 line 24)."""

    value: Any
    view: int
    step: int


@dataclass(frozen=True)
class SignAck:
    """``sign_ack⟨m⟩σ`` (Figure 15 line 29): a signed update statement."""

    signature: Signed


@dataclass(frozen=True)
class ViewChange:
    """``view_change⟨nextView⟩σ`` (Figure 14 line 4)."""

    next_view: int
    signature: Signed


@dataclass(frozen=True)
class Decision:
    """``decision⟨v⟩`` (Figure 14 line 7 / Figure 15 line 40)."""

    value: Any


@dataclass(frozen=True)
class DecisionPull:
    """``⟨decision_pull⟩`` (Figure 15 line 103)."""


@dataclass(frozen=True)
class Sync:
    """``sync`` (Figure 15 line 102): arms acceptor suspect timers."""
