"""The consensus acceptor (Figures 10, 12, 14, 15).

One class implements the Locking-module acceptor (prepare/update cascade,
consult phase) and the Election-module acceptor (suspect timers and
``view_change`` certificates).  All handlers are event-driven; the only
multi-message interaction — gathering ``sign_ack`` signatures before
answering a ``new_view`` — is tracked with an explicit pending record.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.crypto.signatures import SignatureService, Signed
from repro.sim.conditions import AckSet, ConditionMap, Event
from repro.sim.network import Message
from repro.sim.process import Process
from repro.consensus.choose import choose as run_choose
from repro.consensus.decisions import DecisionTracker
from repro.consensus.messages import (
    AckData,
    Decision,
    DecisionPull,
    NewView,
    NewViewAck,
    Prepare,
    SignAck,
    SignReq,
    Sync,
    Update,
    ViewChange,
    update_statement,
)
from repro.consensus.validate import (
    validate_new_view_ack,
    validate_view_proof,
    view_change_statement,
)

INIT_VIEW = 0

AcceptorId = Hashable
QuorumId = FrozenSet[AcceptorId]


class _PendingNewViewAck:
    """Bookkeeping for one outstanding new_view reply (lines 23-27)."""

    def __init__(self, proposer: Hashable, view: int, needed: Set[Tuple[int, int]]):
        self.proposer = proposer
        self.view = view
        self.needed = needed
        self.collected: Dict[Tuple[int, int], Dict[Hashable, Signed]] = {
            key: {} for key in needed
        }


class Acceptor(Process):
    """A benign consensus acceptor."""

    def __init__(
        self,
        pid: AcceptorId,
        rqs: RefinedQuorumSystem,
        proposers: Sequence[Hashable],
        learners: Sequence[Hashable],
        service: SignatureService,
        delta: float = 1.0,
        max_views: int = 30,
    ):
        super().__init__(pid)
        self.rqs = rqs
        self.proposers = tuple(proposers)
        self.learners = tuple(learners)
        self.service = service
        self.delta = delta

        # -- Locking-module state (Figure 15 initialization) --
        self.view = INIT_VIEW
        self.prep: Any = None
        self.prep_view: Set[int] = set()
        self.update: Dict[int, Any] = {1: None, 2: None}
        self.update_view: Dict[int, Set[int]] = {1: set(), 2: set()}
        self.update_q: Dict[Tuple[int, int], Set[QuorumId]] = {}
        self.update_proof: Dict[Tuple[int, int], Tuple[Signed, ...]] = {}
        self.old: Set[Tuple] = set()
        self.decided: Optional[Any] = None
        #: Waitable "this acceptor decided" condition (see Learner).
        self.decided_event = Event(f"{pid} decided")

        # update-message sender bookkeeping, (step, value, view) -> a
        # signalling AckSet (condition-native: waitable, never scanned
        # by the event loop).
        self._update_senders = ConditionMap(AckSet, "update{} v={!r} w={}")
        self._decisions = DecisionTracker(rqs)
        self._pending_nva: Optional[_PendingNewViewAck] = None

        # -- Election-module state (Figure 14) --
        self.suspect_timeout = 5.0 * delta
        self.next_view = INIT_VIEW
        self.max_views = max_views
        self._timer_armed = False
        self._timer_stopped = False
        self._timer_generation = 0
        self._decision_senders = ConditionMap(AckSet, "decision v={!r}")

    # -- helpers -----------------------------------------------------------------

    def leader_of(self, view: int) -> Hashable:
        return self.proposers[view % len(self.proposers)]

    def _broadcast_update(self, update: Update) -> None:
        self.old.add(update_statement(update.step, update.value, update.view))
        for target in sorted(self.rqs.ground_set, key=repr):
            self.send(target, update)
        for learner in self.learners:
            self.send(learner, update)
        # The paper's model delivers a process's broadcast to itself too.
        self._handle_update(self.pid, update)

    # -- dispatch -------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Prepare):
            self._handle_prepare(message.src, payload)
        elif isinstance(payload, Update):
            self._handle_update(message.src, payload)
        elif isinstance(payload, NewView):
            self._handle_new_view(message.src, payload)
        elif isinstance(payload, SignReq):
            self._handle_sign_req(message.src, payload)
        elif isinstance(payload, SignAck):
            self._handle_sign_ack(message.src, payload)
        elif isinstance(payload, Decision):
            self._handle_decision(message.src, payload)
        elif isinstance(payload, DecisionPull):
            self._handle_decision_pull(message.src)
        elif isinstance(payload, Sync):
            self._arm_suspect_timer()

    # -- prepare (lines 31-33) ---------------------------------------------------------

    def _handle_prepare(self, src: Hashable, prepare: Prepare) -> None:
        if prepare.view == INIT_VIEW:
            self._arm_suspect_timer()
        if prepare.view != self.view:
            return
        if not all(w < self.view for w in self.prep_view):
            return
        if self.view != INIT_VIEW:
            if src != self.leader_of(self.view):
                return
            if not self._prepare_proof_ok(prepare):
                return
        value = prepare.value
        if self.prep == value:
            self.prep_view.add(self.view)
        else:
            self.prep = value
            self.prep_view = {self.view}
        self._broadcast_update(Update(1, value, self.view, None))

    def _prepare_proof_ok(self, prepare: Prepare) -> bool:
        """Re-validate ``vProof`` and check ``v`` against ``choose()``."""
        if prepare.v_proof is None or prepare.quorum is None:
            return False
        if prepare.quorum not in set(self.rqs.quorums):
            return False
        v_proof: Dict[AcceptorId, AckData] = {}
        for ack in prepare.v_proof:
            sender = ack.signature.signer
            if not validate_new_view_ack(
                self.service, self.rqs, sender, ack, prepare.view
            ):
                return False
            v_proof[sender] = ack.body
        if not prepare.quorum <= set(v_proof):
            return False
        result = run_choose(
            self.rqs, prepare.value, v_proof, prepare.quorum
        )
        return (not result.abort) and result.value == prepare.value

    # -- update cascade (lines 34-38) -----------------------------------------------------

    def _handle_update(self, src: AcceptorId, update: Update) -> None:
        if src not in self.rqs.ground_set:
            return
        decided = self._decisions.record(src, update)
        if decided is not None:
            self._decide(decided)
        if update.step not in (1, 2):
            return
        senders = self._update_senders(update.step, update.value, update.view)
        senders.add(src)
        if (
            update.value != self.prep
            or update.view != self.view
            or self.view not in self.prep_view
        ):
            return
        step, value = update.step, update.value
        for quorum in self.rqs.quorums:
            if not quorum <= senders:
                continue
            self._trigger_update(step, value, quorum)

    def _trigger_update(self, step: int, value: Any, quorum: QuorumId) -> None:
        """Lines 34-38 for one triggering quorum ``Q``."""
        if self.update[step] == value:
            self.update_view[step].add(self.view)
        else:
            self.update[step] = value
            self.update_view[step] = {self.view}
            for view_key in [k for k in self.update_q if k[0] == step]:
                del self.update_q[view_key]
            for view_key in [k for k in self.update_proof if k[0] == step]:
                del self.update_proof[view_key]
        stored = self.update_q.setdefault((step, self.view), set())
        fire = (
            (step == 1 and quorum not in stored)
            or (step == 2 and not stored)
        )
        if fire:
            stored.add(quorum)
            self._broadcast_update(
                Update(step + 1, value, self.view, quorum)
            )

    # -- deciding (lines 51-53 + Figure 14 line 7, line 40) ---------------------------------

    def _decide(self, value: Any) -> None:
        if self.decided is not None:
            return
        self.decided = value
        self.decided_event.set()
        for target in sorted(self.rqs.ground_set, key=repr):
            self.send(target, Decision(value))
        self._record_decision(self.pid, value)

    def _handle_decision(self, src: Hashable, decision: Decision) -> None:
        self._record_decision(src, decision.value)

    def _record_decision(self, src: Hashable, value: Any) -> None:
        senders = self._decision_senders(value)
        senders.add(src)
        acceptor_senders = senders & set(self.rqs.ground_set)
        if any(q <= acceptor_senders for q in self.rqs.quorums):
            self._stop_suspect_timer()

    def _handle_decision_pull(self, src: Hashable) -> None:
        if self.decided is not None:
            self.send(src, Decision(self.decided))

    # -- consult phase (lines 21-29) ------------------------------------------------------

    def _handle_new_view(self, src: Hashable, new_view: NewView) -> None:
        if new_view.view <= self.view:
            return
        if src != self.leader_of(new_view.view):
            return
        if not validate_view_proof(
            self.service, self.rqs, new_view.view, new_view.view_proof
        ):
            return
        self.view = new_view.view
        needed = {
            (step, w)
            for step in (1, 2)
            for w in self.update_view[step]
            if not self.update_proof.get((step, w))
        }
        self._pending_nva = _PendingNewViewAck(src, new_view.view, needed)
        if not needed:
            self._send_new_view_ack()
            return
        for step, w in sorted(needed, key=repr):
            quorums = self.update_q.get((step, w))
            targets = (
                sorted(next(iter(quorums)), key=repr)
                if quorums
                else sorted(self.rqs.ground_set, key=repr)
            )
            for target in targets:
                self.send(target, SignReq(self.update[step], w, step))
            # An acceptor can sign its own statement immediately.
            if self.pid in set(targets):
                self._handle_sign_req(self.pid, SignReq(self.update[step], w, step))

    def _handle_sign_req(self, src: Hashable, request: SignReq) -> None:
        statement = update_statement(request.step, request.value, request.view)
        if statement in self.old:
            signed = self.service.sign(self.pid, statement)
            if src == self.pid:
                self._handle_sign_ack(self.pid, SignAck(signed))
            else:
                self.send(src, SignAck(signed))

    def _handle_sign_ack(self, src: Hashable, ack: SignAck) -> None:
        pending = self._pending_nva
        if pending is None:
            return
        signed = ack.signature
        if signed.signer != src or not self.service.verify(signed):
            return
        content = signed.content
        for step, w in list(pending.needed):
            statement = update_statement(step, self.update[step], w)
            if content != statement:
                continue
            bucket = pending.collected[(step, w)]
            bucket[src] = signed
            if self.rqs.is_basic(set(bucket)):
                self.update_proof[(step, w)] = tuple(
                    bucket[s] for s in sorted(bucket, key=repr)
                )
                pending.needed.discard((step, w))
        if not pending.needed and pending.view == self.view:
            self._send_new_view_ack()

    def _send_new_view_ack(self) -> None:
        pending = self._pending_nva
        if pending is None:
            return
        self._pending_nva = None
        body = AckData(
            view=self.view,
            prep=self.prep,
            prep_view=frozenset(self.prep_view),
            update=dict(self.update),
            update_view={
                step: frozenset(views)
                for step, views in self.update_view.items()
            },
            update_q={
                key: tuple(sorted(values, key=repr))
                for key, values in self.update_q.items()
            },
            update_proof=dict(self.update_proof),
        )
        signature = self.service.sign(self.pid, body.canonical())
        self.send(pending.proposer, NewViewAck(body, signature))

    # -- election module (Figure 14, acceptor side) -------------------------------------------

    def _arm_suspect_timer(self) -> None:
        if self._timer_armed or self._timer_stopped:
            return
        self._timer_armed = True
        self._schedule_suspect()

    def _schedule_suspect(self) -> None:
        generation = self._timer_generation
        self.sim.call_later(
            self.suspect_timeout, lambda: self._suspect_fired(generation)
        )

    def _suspect_fired(self, generation: int) -> None:
        if (
            generation != self._timer_generation
            or self._timer_stopped
            or self.crashed
        ):
            return
        self._timer_generation += 1
        self.suspect_timeout *= 2.0
        self.next_view += 1
        if self.next_view > self.max_views:
            return  # simulation bound, not part of the protocol
        leader = self.leader_of(self.next_view)
        signed = self.service.sign(
            self.pid, view_change_statement(self.next_view)
        )
        self.send(leader, ViewChange(self.next_view, signed))
        self._schedule_suspect()

    def _stop_suspect_timer(self) -> None:
        self._timer_stopped = True
        self._timer_generation += 1
