"""Single-decree crash Paxos baseline (Lamport's synod protocol).

Crash-failure model, majority quorums.  A proposer runs Phase 1
(``prepare``/``promise``) then Phase 2 (``accept``/``accepted``);
learners learn when a majority of acceptors accepted the same
(ballot, value).  With the classic message flow a value is learned four
message delays after a propose (prepare → promise → accept → accepted),
versus two for the RQS algorithm under a class-1 quorum — the baseline
row of experiment E12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.sim.conditions import AckSet, ConditionMap, Counter
from repro.sim.network import Message, Network, Rule, TraceLevel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.tasks import WaitUntil
from repro.sim.trace import Trace


@dataclass(frozen=True)
class PaxPrepare:
    ballot: int


@dataclass(frozen=True)
class PaxPromise:
    ballot: int
    accepted_ballot: int
    accepted_value: Any


@dataclass(frozen=True)
class PaxAccept:
    ballot: int
    value: Any


@dataclass(frozen=True)
class PaxAccepted:
    ballot: int
    value: Any


class PaxosAcceptor(Process):
    def __init__(self, pid: Hashable, learners: Tuple[Hashable, ...]):
        super().__init__(pid)
        self.learners = learners
        self.promised = -1
        self.accepted_ballot = -1
        self.accepted_value: Any = None

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PaxPrepare):
            if payload.ballot > self.promised:
                self.promised = payload.ballot
                self.send(
                    message.src,
                    PaxPromise(
                        payload.ballot,
                        self.accepted_ballot,
                        self.accepted_value,
                    ),
                )
        elif isinstance(payload, PaxAccept):
            if payload.ballot >= self.promised:
                self.promised = payload.ballot
                self.accepted_ballot = payload.ballot
                self.accepted_value = payload.value
                accepted = PaxAccepted(payload.ballot, payload.value)
                self.send(message.src, accepted)
                for learner in self.learners:
                    self.send(learner, accepted)


class PaxosProposer(Process):
    def __init__(
        self,
        pid: Hashable,
        acceptors: Tuple[Hashable, ...],
        trace: Trace,
        ballot_base: int,
        ballot_stride: int,
    ):
        super().__init__(pid)
        self.acceptors = acceptors
        self.trace = trace
        self.majority = len(acceptors) // 2 + 1
        self.ballot = ballot_base
        self.stride = ballot_stride
        self._promises: Dict[int, Dict[Hashable, PaxPromise]] = {}
        self._promise_counts = ConditionMap(Counter, "paxos promises b={}")
        self._accepted = ConditionMap(AckSet, "paxos accepted b={}")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PaxPromise):
            promises = self._promises.setdefault(payload.ballot, {})
            if message.src not in promises:
                promises[message.src] = payload
                self._promise_counts(payload.ballot).add()
        elif isinstance(payload, PaxAccepted):
            self._accepted(payload.ballot).add(message.src)

    def propose(self, value: Any):
        record = self.trace.begin("propose", self.pid, self.sim.now, value)
        while True:
            self.ballot += self.stride
            ballot = self.ballot
            for acceptor in self.acceptors:
                self.send(acceptor, PaxPrepare(ballot))
            yield WaitUntil(
                self._promise_counts(ballot).at_least(self.majority),
                f"paxos phase1 b={ballot}",
            )
            promises = self._promises[ballot].values()
            prior = max(promises, key=lambda p: p.accepted_ballot)
            chosen = (
                prior.accepted_value
                if prior.accepted_ballot >= 0
                else value
            )
            for acceptor in self.acceptors:
                self.send(acceptor, PaxAccept(ballot, chosen))
            yield WaitUntil(
                self._accepted(ballot).at_least(self.majority),
                f"paxos phase2 b={ballot}",
            )
            self.trace.complete(record, self.sim.now, chosen)
            return record


class PaxosLearner(Process):
    def __init__(self, pid: Hashable, n_acceptors: int, trace: Trace):
        super().__init__(pid)
        self.majority = n_acceptors // 2 + 1
        self.trace = trace
        self.learned: Any = None
        self.learned_at: Optional[float] = None
        self._accepted: Dict[Tuple[int, Any], Set[Hashable]] = {}
        self._record = None

    def bind(self, network):  # type: ignore[override]
        bound = super().bind(network)
        self._record = self.trace.begin("learn", self.pid, self.sim.now)
        return bound

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PaxAccepted) and self.learned is None:
            key = (payload.ballot, payload.value)
            senders = self._accepted.setdefault(key, set())
            senders.add(message.src)
            if len(senders) >= self.majority:
                self.learned = payload.value
                self.learned_at = self.sim.now
                self.trace.complete(self._record, self.sim.now, payload.value)


class PaxosSystem:
    """Wired single-decree Paxos deployment."""

    def __init__(
        self,
        n_acceptors: int = 5,
        n_proposers: int = 2,
        n_learners: int = 3,
        delta: float = 1.0,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        self.delta = delta
        acceptor_ids = tuple(range(1, n_acceptors + 1))
        learner_ids = tuple(f"l{i + 1}" for i in range(n_learners))
        self.acceptors = {
            aid: PaxosAcceptor(aid, learner_ids).bind(self.network)
            for aid in acceptor_ids
        }
        self.proposers = [
            PaxosProposer(
                f"p{i + 1}", acceptor_ids, self.trace,
                ballot_base=i, ballot_stride=n_proposers,
            ).bind(self.network)
            for i in range(n_proposers)
        ]
        self.learners = [
            PaxosLearner(lid, n_acceptors, self.trace).bind(self.network)
            for lid in learner_ids
        ]

    def run_best_case(self, value: Any, horizon: float = 60.0):
        self.sim.spawn(self.proposers[0].propose(value), "paxos propose")
        self.sim.run(until=horizon)
        return {
            learner.pid: (
                None
                if learner.learned_at is None
                else learner.learned_at / self.delta
            )
            for learner in self.learners
        }
