"""Validation of authenticated consensus artifacts.

* :func:`validate_new_view_ack` — the "valid acks" check of Figure 15
  line 4: the ack is signed by its sender, and every claimed update is
  backed by ``Updateproof`` signatures of the matching update statement
  from a *basic* subset of acceptors (so at least one benign acceptor
  really sent it).
* :func:`validate_view_proof` — "viewProof matches view" (line 21): a
  quorum of validly-signed ``view_change⟨view⟩`` messages.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.crypto.signatures import SignatureService, Signed
from repro.consensus.messages import (
    AckData,
    NewViewAck,
    ViewChange,
    update_statement,
)

AcceptorId = Hashable


def view_change_statement(view: int) -> Tuple:
    return ("view_change", view)


def validate_new_view_ack(
    service: SignatureService,
    rqs: RefinedQuorumSystem,
    sender: AcceptorId,
    ack: NewViewAck,
    expected_view: int,
) -> bool:
    """Is this a valid ``new_view_ack`` from ``sender`` for the view?"""
    body = ack.body
    if body.view != expected_view:
        return False
    signature = ack.signature
    if signature.signer != sender:
        return False
    if signature.content != body.canonical():
        return False
    if not service.verify(signature):
        return False
    for step in (1, 2):
        value = body.update.get(step)
        for view in body.update_view.get(step, frozenset()):
            proof = body.update_proof_of(step, view)
            statement = update_statement(step, value, view)
            signers = set()
            for signed in proof:
                if signed.content != statement or not service.verify(signed):
                    return False
                signers.add(signed.signer)
            if not rqs.is_basic(signers):
                return False
    return True


def validate_view_proof(
    service: SignatureService,
    rqs: RefinedQuorumSystem,
    view: int,
    view_proof: Optional[Iterable[ViewChange]],
) -> bool:
    """A quorum of genuine ``view_change⟨view⟩`` signatures?"""
    if view_proof is None:
        return False
    statement = view_change_statement(view)
    signers = set()
    for message in view_proof:
        signed = message.signature
        if message.next_view != view or signed.content != statement:
            return False
        if not service.verify(signed):
            return False
        signers.add(signed.signer)
    return any(q <= signers for q in rqs.quorums)
