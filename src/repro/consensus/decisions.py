"""Decision detection shared by acceptors and learners (Figure 15, 51-53).

Every acceptor and learner decides a value ``v`` in view ``w`` upon
receiving

* the same ``update1⟨v, w, ∗⟩`` from a class-1 quorum (2 message delays),
* the same ``update2⟨v, w, Q2⟩`` from the class-2 quorum ``Q2`` itself
  (note the payload quorum id must equal the sender quorum), or
* the same ``update3⟨v, w, ∗⟩`` from any quorum (4 message delays).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Hashable, Optional

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.conditions import AckSet, ConditionMap
from repro.consensus.messages import Update

AcceptorId = Hashable
QuorumId = FrozenSet[AcceptorId]


class DecisionTracker:
    """Accumulates update messages and fires the decide rules.

    Sender sets are signalling :class:`~repro.sim.conditions.AckSet`
    containers (condition-native consensus internals): tasks and tests
    can derive indexed wait conditions from them (``includes_any`` over
    a quorum class) instead of polling, and the tracker's own checks
    keep reading them as plain sets.
    """

    def __init__(self, rqs: RefinedQuorumSystem):
        self.rqs = rqs
        # (step, value, view) -> senders, payload quorum ignored (steps 1, 3)
        self._senders = ConditionMap(AckSet, "update{} v={!r} w={}")
        # (value, view, payload quorum) -> senders (step 2 exact-match rule)
        self._senders2 = ConditionMap(AckSet, "update2 v={!r} w={} q={}")

    def senders(self, step: int, value: Any, view: int) -> AckSet:
        """The (signalling) sender set of one update statement."""
        return self._senders(step, value, view)

    def record(self, sender: AcceptorId, update: Update) -> Optional[Any]:
        """Feed one update message; return the decided value, if any."""
        self._senders(update.step, update.value, update.view).add(sender)
        if update.step == 2 and update.quorum is not None:
            self._senders2(update.value, update.view, update.quorum).add(
                sender
            )
        return self._check(update)

    def _check(self, update: Update) -> Optional[Any]:
        senders = self._senders(update.step, update.value, update.view)
        if update.step == 1:
            if any(q1 <= senders for q1 in self.rqs.qc1):
                return update.value
        elif update.step == 2 and update.quorum is not None:
            exact = self._senders2(update.value, update.view, update.quorum)
            if update.quorum in set(self.rqs.qc2) and update.quorum <= exact:
                return update.value
        elif update.step == 3:
            if any(q <= senders for q in self.rqs.quorums):
                return update.value
        return None
