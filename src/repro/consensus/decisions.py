"""Decision detection shared by acceptors and learners (Figure 15, 51-53).

Every acceptor and learner decides a value ``v`` in view ``w`` upon
receiving

* the same ``update1⟨v, w, ∗⟩`` from a class-1 quorum (2 message delays),
* the same ``update2⟨v, w, Q2⟩`` from the class-2 quorum ``Q2`` itself
  (note the payload quorum id must equal the sender quorum), or
* the same ``update3⟨v, w, ∗⟩`` from any quorum (4 message delays).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.consensus.messages import Update

AcceptorId = Hashable
QuorumId = FrozenSet[AcceptorId]


class DecisionTracker:
    """Accumulates update messages and fires the decide rules."""

    def __init__(self, rqs: RefinedQuorumSystem):
        self.rqs = rqs
        # (step, value, view) -> senders, payload quorum ignored (steps 1, 3)
        self._senders: Dict[Tuple[int, Any, int], Set[AcceptorId]] = {}
        # (value, view, payload quorum) -> senders (step 2 exact-match rule)
        self._senders2: Dict[Tuple[Any, int, QuorumId], Set[AcceptorId]] = {}

    def record(self, sender: AcceptorId, update: Update) -> Optional[Any]:
        """Feed one update message; return the decided value, if any."""
        key = (update.step, update.value, update.view)
        self._senders.setdefault(key, set()).add(sender)
        if update.step == 2 and update.quorum is not None:
            key2 = (update.value, update.view, update.quorum)
            self._senders2.setdefault(key2, set()).add(sender)
        return self._check(update)

    def _check(self, update: Update) -> Optional[Any]:
        senders = self._senders[(update.step, update.value, update.view)]
        if update.step == 1:
            if any(q1 <= senders for q1 in self.rqs.qc1):
                return update.value
        elif update.step == 2 and update.quorum is not None:
            exact = self._senders2[(update.value, update.view, update.quorum)]
            if update.quorum in set(self.rqs.qc2) and update.quorum <= exact:
                return update.value
        elif update.step == 3:
            if any(q <= senders for q in self.rqs.quorums):
                return update.value
        return None
