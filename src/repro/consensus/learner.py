"""The consensus learner (Figure 15, lines 51-53, 60, 101-103).

A learner decides via the same three update rules as acceptors, learns as
soon as it decides, and additionally learns upon receiving ``decision``
messages from a basic subset of acceptors.  While unlearned it
periodically pulls decisions from acceptors (bounded in simulation).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set

from repro.core.rqs import RefinedQuorumSystem
from repro.sim.conditions import AckSet, ConditionMap, Event
from repro.sim.network import Message
from repro.sim.process import Process
from repro.sim.trace import OperationRecord, Trace
from repro.consensus.decisions import DecisionTracker
from repro.consensus.messages import Decision, DecisionPull, Update


class Learner(Process):
    """A benign learner."""

    def __init__(
        self,
        pid: Hashable,
        rqs: RefinedQuorumSystem,
        trace: Trace,
        delta: float = 1.0,
        pull_interval: float = 10.0,
        max_pulls: int = 50,
    ):
        super().__init__(pid)
        self.rqs = rqs
        self.trace = trace
        self.learned: Optional[Any] = None
        self.learned_at: Optional[float] = None
        #: Waitable "decision learned" condition — tasks and tests can
        #: ``yield WaitUntil(learner.learned_event)`` instead of polling.
        self.learned_event = Event(f"{pid} learned")
        self._decisions = DecisionTracker(rqs)
        self._decision_senders = ConditionMap(AckSet, "decision v={!r}")
        self._pull_interval = pull_interval
        self._pulls_left = max_pulls
        self._pull_armed = False
        self._record: Optional[OperationRecord] = None

    def bind(self, network):  # type: ignore[override]
        bound = super().bind(network)
        self._record = self.trace.begin("learn", self.pid, self.sim.now)
        return bound

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Update):
            self._arm_pulls()
            if message.src in self.rqs.ground_set:
                decided = self._decisions.record(message.src, payload)
                if decided is not None:
                    self._learn(decided)
        elif isinstance(payload, Decision):
            self._arm_pulls()
            if message.src in self.rqs.ground_set:
                senders = self._decision_senders(payload.value)
                senders.add(message.src)
                if self.rqs.is_basic(senders):
                    self._learn(payload.value)

    def _learn(self, value: Any) -> None:
        if self.learned is not None:
            return
        self.learned = value
        self.learned_at = self.sim.now
        if self._record is not None:
            self.trace.complete(self._record, self.sim.now, value)
        self.learned_event.set()

    # -- decision pulling (lines 102-103; bounded for simulation) -------------

    def _arm_pulls(self) -> None:
        if self._pull_armed or self.learned is not None:
            return
        self._pull_armed = True
        self.sim.call_later(self._pull_interval, self._pull)

    def _pull(self) -> None:
        if self.learned is not None or self.crashed or self._pulls_left <= 0:
            return
        self._pulls_left -= 1
        for acceptor in sorted(self.rqs.ground_set, key=repr):
            self.send(acceptor, DecisionPull())
        self.sim.call_later(self._pull_interval, self._pull)
