"""The ``choose()`` function and its predicates (Figure 13).

``choose`` is "the heart of the algorithm": given the array ``vProof`` of
``new_view_ack`` bodies from a quorum ``Q``, it either picks the unique
value that may have been decided in an earlier view, aborts (which proves
``Q`` contains a Byzantine acceptor — the proposer then waits for a
different quorum), or falls through to the proposer's own value when
nothing is locked.

Predicates (paper lines in brackets):

* ``Cand2(v, w)`` [1] — some class-1 quorum minus an adversary set
  uniformly reports having *prepared* ``v`` in ``w``
  (evidence that ``v`` may have been Decided-2 in ``w``).
* ``C3 / Cand3(v, w, char)`` [2-3] — some class-2 quorum minus an
  adversary set uniformly reports having *1-updated* ``v`` in ``w`` with
  that quorum, under ``P3a`` (``char='a'``) or ``P3b`` (``char='b'``)
  (evidence for Decided-3).
* ``Valid3(v, w, char)`` [4] — every Cand3-witnessing quorum's acceptors
  are consistent about having prepared ``v`` in ``w``.
* ``Cand4(v, w)`` [5] — some acceptor reports having *2-updated* ``v``
  in ``w`` (evidence for Decided-4; backed by signatures during ack
  validation).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.consensus.messages import AckData

AcceptorId = Hashable
QuorumId = FrozenSet[AcceptorId]
VProof = Dict[AcceptorId, AckData]


class ChooseResult(Tuple):
    """``(value, abort)`` — tuple subclass for readable reprs."""

    def __new__(cls, value: Any, abort: bool):
        return super().__new__(cls, (value, abort))

    @property
    def value(self) -> Any:
        return self[0]

    @property
    def abort(self) -> bool:
        return self[1]


def cand2(rqs: RefinedQuorumSystem, v_proof: VProof, quorum: QuorumId, v: Any, w: int) -> bool:
    """Line 1: ``∃Q1 ∈ QC1, ∃B ∈ B`` with every acceptor of
    ``(Q1 ∩ Q) \\ B`` reporting ``Prep = v`` and ``w ∈ Prepview``.

    The minimal witness ``B`` is the set of non-conforming acceptors of
    ``Q1 ∩ Q``, so membership of that set in ``B`` is the whole test.
    """
    for q1 in rqs.qc1:
        base = q1 & quorum
        nonconforming = {
            a
            for a in base
            if not _prepared(v_proof, a, v, w)
        }
        if rqs.adversary.contains(nonconforming):
            return True
    return False


def _prepared(v_proof: VProof, acceptor: AcceptorId, v: Any, w: int) -> bool:
    ack = v_proof.get(acceptor)
    return ack is not None and ack.prep == v and w in ack.prep_view


def _one_updated_with(
    v_proof: VProof, acceptor: AcceptorId, v: Any, w: int, q2: QuorumId
) -> bool:
    ack = v_proof.get(acceptor)
    return (
        ack is not None
        and ack.update.get(1) == v
        and w in ack.update_view.get(1, frozenset())
        and q2 in ack.update_q_of(1, w)
    )


def c3(
    rqs: RefinedQuorumSystem,
    v_proof: VProof,
    quorum: QuorumId,
    v: Any,
    w: int,
    char: str,
    q2: QuorumId,
) -> bool:
    """Line 2 for a fixed ``Q2``: is there ``B ∈ B`` with ``P3char`` such
    that all of ``(Q2 ∩ Q) \\ B`` 1-updated ``v`` in ``w`` with ``Q2``?

    Both P3a and P3b are anti-monotone in ``B`` and any witness must
    cover the non-conforming acceptors, so the minimal ``B`` decides.
    """
    base = q2 & quorum
    nonconforming = frozenset(
        a for a in base if not _one_updated_with(v_proof, a, v, w, q2)
    )
    if not rqs.adversary.contains(nonconforming):
        return False
    if char == "a":
        return rqs.p3a(q2, quorum, nonconforming)
    if char == "b":
        return rqs.p3b(q2, quorum, nonconforming)
    raise ValueError(f"char must be 'a' or 'b', got {char!r}")


def cand3(
    rqs: RefinedQuorumSystem,
    v_proof: VProof,
    quorum: QuorumId,
    v: Any,
    w: int,
    char: str,
) -> bool:
    """Line 3: ``∃Q2 ∈ QC2, ∃B ∈ B: C3(v, w, char, Q2, B)``."""
    return any(
        c3(rqs, v_proof, quorum, v, w, char, q2) for q2 in rqs.qc2
    )


def valid3(
    rqs: RefinedQuorumSystem,
    v_proof: VProof,
    quorum: QuorumId,
    v: Any,
    w: int,
    char: str,
) -> bool:
    """Line 4: every C3-witnessing ``Q2`` is internally consistent —
    each of its acceptors either prepared ``v`` in ``w`` or has only
    higher views in its ``Prepview``."""
    for q2 in rqs.qc2:
        if not c3(rqs, v_proof, quorum, v, w, char, q2):
            continue
        for acceptor in q2 & quorum:
            ack = v_proof.get(acceptor)
            if ack is None:
                continue
            prepared_here = ack.prep == v and w in ack.prep_view
            only_higher = all(w_prime > w for w_prime in ack.prep_view)
            if not (prepared_here or only_higher):
                return False
    return True


def cand4(v_proof: VProof, quorum: QuorumId, v: Any, w: int) -> bool:
    """Line 5: some acceptor of ``Q`` reports having 2-updated ``v`` in
    ``w`` (its ack carries the signature proof, checked at validation)."""
    for acceptor in quorum:
        ack = v_proof.get(acceptor)
        if (
            ack is not None
            and ack.update.get(2) == v
            and w in ack.update_view.get(2, frozenset())
        ):
            return True
    return False


def _candidates(
    rqs: RefinedQuorumSystem, v_proof: VProof, quorum: QuorumId
) -> List[Tuple[Any, int, str]]:
    """All ``(v, w, origin)`` for which some candidate predicate holds.

    ``origin ∈ {"cand2", "cand3a", "cand3b", "cand4"}``.  The candidate
    universe is every (value, view) mentioned in any ack field.
    """
    pairs: Set[Tuple[Any, int]] = set()
    for ack in v_proof.values():
        if ack.prep is not None:
            for w in ack.prep_view:
                pairs.add((ack.prep, w))
        for step in (1, 2):
            value = ack.update.get(step)
            if value is not None:
                for w in ack.update_view.get(step, frozenset()):
                    pairs.add((value, w))
    found: List[Tuple[Any, int, str]] = []
    for v, w in pairs:
        if cand2(rqs, v_proof, quorum, v, w):
            found.append((v, w, "cand2"))
        if cand3(rqs, v_proof, quorum, v, w, "a"):
            found.append((v, w, "cand3a"))
        if cand3(rqs, v_proof, quorum, v, w, "b"):
            found.append((v, w, "cand3b"))
        if cand4(v_proof, quorum, v, w):
            found.append((v, w, "cand4"))
    return found


def choose(
    rqs: RefinedQuorumSystem,
    default_value: Any,
    v_proof: VProof,
    quorum: QuorumId,
) -> ChooseResult:
    """``choose(v', vProof, Q)`` (Figure 13 lines 10-21)."""
    found = _candidates(rqs, v_proof, quorum)
    if not found:
        return ChooseResult(default_value, False)   # line 21

    view_max = max(w for _, w, _ in found)           # line 12
    at_max = [(v, origin) for v, w, origin in found if w == view_max]

    # Line 13-14: Cand3(·, 'a') or Cand4 → that value, unconditionally.
    for v, origin in at_max:
        if origin in ("cand3a", "cand4"):
            return ChooseResult(v, False)

    # Line 15-16: two distinct Cand3(·, 'b') values → abort.
    b_values = {v for v, origin in at_max if origin == "cand3b"}
    if len(b_values) >= 2:
        return ChooseResult(default_value, True)

    # Line 17-19: a single Cand3(·, 'b') value → Valid3 gate.
    if b_values:
        (v,) = b_values
        if valid3(rqs, v_proof, quorum, v, view_max, "b"):
            return ChooseResult(v, False)
        return ChooseResult(default_value, True)

    # Line 20: fall back to a Cand2 value.
    for v, origin in at_max:
        if origin == "cand2":
            return ChooseResult(v, False)

    # Unreachable: found was non-empty at view_max.
    raise AssertionError("candidate bookkeeping is inconsistent")
