"""PBFT-lite single-shot baseline (Castro–Liskov normal case).

``n = 3f + 1`` acceptors ("replicas"), a fixed primary.  Normal-case flow
for one decision: the proposer's request reaches the primary, which sends
``pre-prepare``; replicas exchange ``prepare`` then ``commit``; a learner
learns on ``f + 1`` matching ``committed`` notifications.

Message-delay count to learners from the propose:
request(1) → pre-prepare(2) → prepare(3) → commit(4) → committed(5) for
non-primary replicas; with the usual "reply after commit" shortcut the
first replies land 5Δ after the propose — never better than the RQS
algorithm's 2Δ best case and strictly worse than its 4Δ worst best-case.
View changes are not implemented (this baseline only measures the
fault-free fast path of E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.sim.network import Message, Network, Rule, TraceLevel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace


@dataclass(frozen=True)
class Request:
    value: Any


@dataclass(frozen=True)
class PrePrepare:
    view: int
    value: Any


@dataclass(frozen=True)
class BftPrepare:
    view: int
    value: Any


@dataclass(frozen=True)
class Commit:
    view: int
    value: Any


@dataclass(frozen=True)
class Committed:
    view: int
    value: Any


class PbftReplica(Process):
    def __init__(
        self,
        pid: Hashable,
        replicas: Tuple[Hashable, ...],
        learners: Tuple[Hashable, ...],
        f: int,
        primary: Hashable,
    ):
        super().__init__(pid)
        self.replicas = replicas
        self.learners = learners
        self.f = f
        self.primary = primary
        self.pre_prepared: Optional[Any] = None
        self.prepared = False
        self.committed_local = False
        self._prepares: Dict[Any, Set[Hashable]] = {}
        self._commits: Dict[Any, Set[Hashable]] = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Request) and self.pid == self.primary:
            if self.pre_prepared is None:
                self.pre_prepared = payload.value
                for replica in self.replicas:
                    self.send(replica, PrePrepare(0, payload.value))
        elif isinstance(payload, PrePrepare):
            if message.src == self.primary and self.pre_prepared is None:
                self.pre_prepared = payload.value
                for replica in self.replicas:
                    self.send(replica, BftPrepare(0, payload.value))
        elif isinstance(payload, BftPrepare):
            senders = self._prepares.setdefault(payload.value, set())
            senders.add(message.src)
            # prepared: pre-prepare + 2f matching prepares
            if (
                not self.prepared
                and self.pre_prepared == payload.value
                and len(senders) >= 2 * self.f
            ):
                self.prepared = True
                for replica in self.replicas:
                    self.send(replica, Commit(0, payload.value))
        elif isinstance(payload, Commit):
            senders = self._commits.setdefault(payload.value, set())
            senders.add(message.src)
            # committed-local: 2f + 1 matching commits
            if (
                not self.committed_local
                and len(senders) >= 2 * self.f + 1
            ):
                self.committed_local = True
                for learner in self.learners:
                    self.send(learner, Committed(0, payload.value))


class PbftLearner(Process):
    def __init__(self, pid: Hashable, f: int, trace: Trace):
        super().__init__(pid)
        self.f = f
        self.trace = trace
        self.learned: Any = None
        self.learned_at: Optional[float] = None
        self._committed: Dict[Any, Set[Hashable]] = {}
        self._record = None

    def bind(self, network):  # type: ignore[override]
        bound = super().bind(network)
        self._record = self.trace.begin("learn", self.pid, self.sim.now)
        return bound

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Committed) and self.learned is None:
            senders = self._committed.setdefault(payload.value, set())
            senders.add(message.src)
            if len(senders) >= self.f + 1:
                self.learned = payload.value
                self.learned_at = self.sim.now
                self.trace.complete(self._record, self.sim.now, payload.value)


class PbftSystem:
    """Wired PBFT-lite deployment (fault-free fast path only)."""

    def __init__(
        self,
        f: int = 1,
        n_learners: int = 3,
        delta: float = 1.0,
        rules: Optional[List[Rule]] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
    ):
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        self.delta = delta
        self.f = f
        n = 3 * f + 1
        replica_ids = tuple(range(1, n + 1))
        learner_ids = tuple(f"l{i + 1}" for i in range(n_learners))
        self.replicas = {
            rid: PbftReplica(
                rid, replica_ids, learner_ids, f, primary=replica_ids[0]
            ).bind(self.network)
            for rid in replica_ids
        }
        self.learners = [
            PbftLearner(lid, f, self.trace).bind(self.network)
            for lid in learner_ids
        ]
        self.client = Process("client").bind(self.network)

    def run_best_case(self, value: Any, horizon: float = 60.0):
        """Client sends the request to the primary at t=0."""
        self.client.send(1, Request(value))
        self.sim.run(until=horizon)
        return {
            learner.pid: (
                None
                if learner.learned_at is None
                else learner.learned_at / self.delta
            )
            for learner in self.learners
        }
