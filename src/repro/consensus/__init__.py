"""The RQS-based Byzantine consensus algorithm (Figures 9-15) plus
baselines (crash Paxos, PBFT-lite)."""

from repro.consensus.acceptor import INIT_VIEW, Acceptor
from repro.consensus.choose import ChooseResult, choose
from repro.consensus.decisions import DecisionTracker
from repro.consensus.learner import Learner
from repro.consensus.messages import (
    AckData,
    Decision,
    DecisionPull,
    NewView,
    NewViewAck,
    Prepare,
    SignAck,
    SignReq,
    Sync,
    Update,
    ViewChange,
)
from repro.consensus.proposer import EquivocatingProposer, Proposer
from repro.consensus.system import ConsensusSystem

__all__ = [
    "INIT_VIEW",
    "Acceptor",
    "ChooseResult",
    "choose",
    "DecisionTracker",
    "Learner",
    "AckData",
    "Decision",
    "DecisionPull",
    "NewView",
    "NewViewAck",
    "Prepare",
    "SignAck",
    "SignReq",
    "Sync",
    "Update",
    "ViewChange",
    "EquivocatingProposer",
    "Proposer",
    "ConsensusSystem",
]
