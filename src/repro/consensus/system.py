"""End-to-end wiring for consensus executions.

:class:`ConsensusSystem` assembles the proposer/acceptor/learner roles
over a simulated network and exposes scenario drivers: best-case
single-proposer runs, contended runs, Byzantine acceptors/proposers and
pre-GST asynchrony (via network rules).

This class is the thin wiring behind the ``"rqs-consensus"`` protocol of
:mod:`repro.scenarios` — prefer building a
:class:`~repro.scenarios.ScenarioSpec` and calling
:func:`repro.scenarios.run` over instantiating it directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.crypto.signatures import SignatureService
from repro.sim.network import Network, Rule, TraceLevel
from repro.sim.simulator import Simulator
from repro.sim.trace import OperationRecord, Trace
from repro.consensus.acceptor import Acceptor
from repro.consensus.learner import Learner
from repro.consensus.proposer import Proposer

AcceptorFactory = Callable[..., Acceptor]
ProposerFactory = Callable[..., Proposer]


class ConsensusSystem:
    """A fully wired consensus deployment."""

    def __init__(
        self,
        rqs: RefinedQuorumSystem,
        n_proposers: int = 2,
        n_learners: int = 3,
        delta: float = 1.0,
        acceptor_factories: Optional[Dict[Hashable, AcceptorFactory]] = None,
        proposer_factories: Optional[Dict[int, ProposerFactory]] = None,
        crash_times: Optional[Dict[Hashable, float]] = None,
        rules: Optional[Sequence[Rule]] = None,
        sync_delay: float = 10.0,
        trace_level: TraceLevel = TraceLevel.FULL,
    ):
        self.rqs = rqs
        self.delta = delta
        self.sim = Simulator()
        self.network = Network(
            self.sim, delta=delta, rules=list(rules or []),
            trace_level=trace_level,
        )
        self.trace = Trace(
            retain=self.network.trace_level >= TraceLevel.FULL
        )
        self.service = SignatureService()

        self.proposer_ids = tuple(f"p{i + 1}" for i in range(n_proposers))
        self.learner_ids = tuple(f"l{i + 1}" for i in range(n_learners))

        self.proposers: List[Proposer] = []
        factories_p = proposer_factories or {}
        for index, pid in enumerate(self.proposer_ids):
            factory = factories_p.get(index, Proposer)
            proposer = factory(
                pid,
                rqs,
                self.proposer_ids,
                self.service,
                self.trace,
                delta=delta,
                sync_delay=sync_delay,
            )
            proposer.bind(self.network)
            self.proposers.append(proposer)

        self.acceptors: Dict[Hashable, Acceptor] = {}
        factories_a = acceptor_factories or {}
        for aid in sorted(rqs.ground_set, key=repr):
            factory = factories_a.get(aid, Acceptor)
            acceptor = factory(
                aid,
                rqs,
                self.proposer_ids,
                self.learner_ids,
                self.service,
                delta=delta,
            )
            acceptor.bind(self.network)
            self.acceptors[aid] = acceptor

        self.learners: List[Learner] = []
        for lid in self.learner_ids:
            learner = Learner(lid, rqs, self.trace, delta=delta)
            learner.bind(self.network)
            self.learners.append(learner)

        for pid_or_aid, time in (crash_times or {}).items():
            self.process(pid_or_aid).schedule_crash(time)

    # -- access -------------------------------------------------------------------

    def process(self, pid: Hashable):
        return self.network.process(pid)

    def learner(self, index: int) -> Learner:
        return self.learners[index]

    # -- drivers -------------------------------------------------------------------

    def propose_at(self, time: float, value: Any, proposer_index: int = 0):
        proposer = self.proposers[proposer_index]
        holder: Dict[str, Any] = {}

        def start() -> None:
            holder["task"] = self.sim.spawn(
                proposer.propose(value), f"{proposer.pid}.propose({value!r})"
            )

        self.sim.call_at(time, start)
        return holder

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_best_case(
        self, value: Any, horizon: float = 60.0
    ) -> Dict[Hashable, Optional[float]]:
        """Single correct proposer proposes at t=0; returns per-learner
        message-delay latencies (``None`` for learners that never learn)."""
        self.propose_at(0.0, value, proposer_index=0)
        self.sim.run(until=horizon)
        delays: Dict[Hashable, Optional[float]] = {}
        for learner in self.learners:
            if learner.learned_at is None:
                delays[learner.pid] = None
            else:
                delays[learner.pid] = learner.learned_at / self.delta
        return delays

    def learned_values(self) -> Dict[Hashable, Any]:
        return {
            learner.pid: learner.learned
            for learner in self.learners
            if learner.learned is not None
        }

    def operations(self) -> Tuple[OperationRecord, ...]:
        return self.trace.records
