"""The consensus proposer (Figures 9, 14, 15).

In the initial view a proposer skips the consult phase and immediately
sends ``prepare⟨v, 0, nil, ∅⟩``.  When elected for a later view ``w`` it
runs the consult phase: ``new_view`` to all acceptors, gather valid
``new_view_ack``s from a quorum not yet known faulty, run ``choose()``;
on abort the quorum is blacklisted and the proposer waits for another
quorum (Figure 15 lines 3-8), which the paper proves terminates once a
quorum of benign acceptors answers.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Optional, Sequence, Set, Tuple

from repro.core.rqs import RefinedQuorumSystem
from repro.crypto.signatures import SignatureService
from repro.sim.conditions import Check
from repro.sim.network import Message
from repro.sim.process import Process
from repro.sim.tasks import WaitUntil
from repro.sim.trace import Trace
from repro.consensus.choose import choose as run_choose
from repro.consensus.acceptor import INIT_VIEW
from repro.consensus.messages import (
    Decision,
    DecisionPull,
    NewView,
    NewViewAck,
    Prepare,
    Sync,
    ViewChange,
)
from repro.consensus.validate import (
    validate_new_view_ack,
    view_change_statement,
)

AcceptorId = Hashable
QuorumId = FrozenSet[AcceptorId]


class Proposer(Process):
    """A benign proposer."""

    def __init__(
        self,
        pid: Hashable,
        rqs: RefinedQuorumSystem,
        proposers: Sequence[Hashable],
        service: SignatureService,
        trace: Trace,
        delta: float = 1.0,
        sync_delay: float = 10.0,
    ):
        super().__init__(pid)
        self.rqs = rqs
        self.proposers = tuple(proposers)
        self.service = service
        self.trace = trace
        self.sync_delay = sync_delay
        self.delta = delta

        self.view = INIT_VIEW
        self.view_proof: Optional[Tuple[ViewChange, ...]] = None
        self.value: Any = None
        self.halted = False
        self._proposed_once = False
        self._faulty: Set[QuorumId] = set()
        # per-view valid new_view_acks: view -> {acceptor: NewViewAck}
        self._acks: Dict[int, Dict[AcceptorId, NewViewAck]] = {}
        # view_change certificates: view -> {acceptor: ViewChange}
        self._view_changes: Dict[int, Dict[AcceptorId, ViewChange]] = {}
        self._decisions: Dict[Any, Set[Hashable]] = {}
        # Outstanding consult-phase waits: signalled whenever one of the
        # predicate's inputs (acks, view, halted) changes.
        self._consult_watches: list = []

    def _signal_consult(self) -> None:
        for condition in self._consult_watches:
            condition.signal()

    def leader_of(self, view: int) -> Hashable:
        return self.proposers[view % len(self.proposers)]

    # -- message handling -----------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, NewViewAck):
            self._handle_new_view_ack(message.src, payload)
        elif isinstance(payload, ViewChange):
            self._handle_view_change(message.src, payload)
        elif isinstance(payload, Decision):
            self._handle_decision(message.src, payload)

    def _handle_new_view_ack(self, src: AcceptorId, ack: NewViewAck) -> None:
        view = ack.body.view
        if not validate_new_view_ack(self.service, self.rqs, src, ack, view):
            return
        self._acks.setdefault(view, {})[src] = ack
        self._signal_consult()

    def _handle_view_change(self, src: AcceptorId, message: ViewChange) -> None:
        if self.halted or src not in self.rqs.ground_set:
            return
        signed = message.signature
        if signed.signer != src or not self.service.verify(signed):
            return
        if signed.content != view_change_statement(message.next_view):
            return
        bucket = self._view_changes.setdefault(message.next_view, {})
        bucket[src] = message
        next_view = message.next_view
        if next_view <= self.view:
            return
        if self.leader_of(next_view) != self.pid:
            return
        senders = set(bucket)
        if any(q <= senders for q in self.rqs.quorums):
            # Elected (Figure 14 lines 10-13).
            self.view_proof = tuple(
                bucket[s] for s in sorted(bucket, key=repr)
            )
            self.view = next_view
            # A consult wait for an older view must notice it was
            # abandoned (its predicate reads self.view).
            self._signal_consult()
            if self.value is not None:
                self.sim.spawn(
                    self._propose_in_current_view(),
                    f"{self.pid} propose view {next_view}",
                )

    def _handle_decision(self, src: Hashable, decision: Decision) -> None:
        senders = self._decisions.setdefault(decision.value, set())
        senders.add(src)
        acceptor_senders = senders & set(self.rqs.ground_set)
        if any(q <= acceptor_senders for q in self.rqs.quorums):
            self.halted = True  # Figure 15 line 104
            self._signal_consult()

    # -- proposing ----------------------------------------------------------------

    def propose(self, value: Any):
        """Coroutine: propose ``value`` (spawn on the simulator)."""
        record = self.trace.begin("propose", self.pid, self.sim.now, value)
        self.value = value
        if not self._proposed_once:
            self._proposed_once = True
            self.sim.call_later(self.sync_delay, self._post_propose_sync)
        yield from self._propose_in_current_view()
        self.trace.complete(record, self.sim.now, "proposed")
        return record

    def _post_propose_sync(self) -> None:
        """Figure 15 lines 101-103: arm acceptor timers and pull decisions."""
        if self.halted or self.crashed:
            return
        for acceptor in sorted(self.rqs.ground_set, key=repr):
            self.send(acceptor, Sync())
            self.send(acceptor, DecisionPull())

    def resync(self) -> None:
        """Re-send the post-propose Sync/DecisionPull (a client
        retransmitting over lossy pre-GST channels; the scenario layer's
        ``Resync`` workload op)."""
        self._post_propose_sync()

    def _propose_in_current_view(self):
        view = self.view
        if view != INIT_VIEW:
            # Consult phase (Figure 15 lines 2-8).
            for acceptor in sorted(self.rqs.ground_set, key=repr):
                self.send(acceptor, NewView(view, self.view_proof))
            while True:
                quorum_holder: Dict[str, QuorumId] = {}

                def some_fresh_quorum() -> bool:
                    if self.view != view or self.halted:
                        return True  # abandon: a newer view took over
                    acks = self._acks.get(view, {})
                    senders = set(acks)
                    for candidate in self.rqs.quorums:
                        if candidate in self._faulty:
                            continue
                        if candidate <= senders:
                            quorum_holder["q"] = candidate
                            return True
                    return False

                condition = Check(
                    some_fresh_quorum, f"{self.pid} consult view {view}"
                )
                self._consult_watches.append(condition)
                try:
                    yield WaitUntil(condition)
                finally:
                    self._consult_watches.remove(condition)
                if self.view != view or self.halted:
                    return
                quorum = quorum_holder["q"]
                acks = self._acks[view]
                v_proof_bodies = {a: acks[a].body for a in quorum}
                result = run_choose(
                    self.rqs, self.value, v_proof_bodies, quorum
                )
                if result.abort:
                    self._faulty.add(quorum)  # line 7
                    continue
                chosen = result.value
                v_proof = tuple(acks[a] for a in sorted(quorum, key=repr))
                for acceptor in sorted(self.rqs.ground_set, key=repr):
                    self.send(
                        acceptor, Prepare(chosen, view, v_proof, quorum)
                    )
                return
        # Initial view: no consult phase (Figure 9).
        for acceptor in sorted(self.rqs.ground_set, key=repr):
            self.send(acceptor, Prepare(self.value, INIT_VIEW, None, None))


class EquivocatingProposer(Proposer):
    """Byzantine proposer: sends different initial-view values to
    different halves of the acceptors (the classic attack the view-change
    machinery must recover from)."""

    benign = False

    def __init__(self, *args, value_a: Any = "A", value_b: Any = "B", **kwargs):
        super().__init__(*args, **kwargs)
        self.value_a = value_a
        self.value_b = value_b

    def _propose_in_current_view(self):
        acceptors = sorted(self.rqs.ground_set, key=repr)
        half = len(acceptors) // 2
        for acceptor in acceptors[:half]:
            self.send(acceptor, Prepare(self.value_a, INIT_VIEW, None, None))
        for acceptor in acceptors[half:]:
            self.send(acceptor, Prepare(self.value_b, INIT_VIEW, None, None))
        return
        yield  # pragma: no cover - makes this a generator
