"""Fixed-slot shared-memory result transport for worker processes.

Multi-process executors (the sharded soak engine, ``run_grid``'s
shared-memory collection path) need to move pickled results from worker
processes back to the parent without funneling every byte through the
``multiprocessing`` result pipe — on large grids and high-shard soaks
the pipe serializes all results through one reader thread, while a
:class:`SlotBlock` gives every worker its own pre-sized landing zone.

The layout is deliberately boring: ``slots`` fixed-size slots of
``slot_size`` bytes each, every slot prefixed by an 8-byte big-endian
length.  A slot is *empty* while its length prefix is zero (the segment
is zero-filled at creation), and *filled* exactly once by the worker
that owns the index — workers never share a slot, so no locking is
needed.  Payloads larger than the slot return ``False`` from
:meth:`SlotBlock.write` and the caller falls back to the pipe; the
transport degrades, it never truncates.

CPython 3.9–3.12 registers *attached* segments with the resource
tracker, which then unlinks them at worker exit and warns about leaks
it caused itself (bpo-38119).  :meth:`SlotBlock.attach` unregisters the
segment after attaching — the parent, which created the segment, is the
sole owner and unlinks it in :meth:`SlotBlock.destroy`.  Fork-started
workers avoid the attach path entirely: they inherit the parent's
already-mapped :class:`SlotBlock` object through a module global set
before the pool spawns.
"""

from __future__ import annotations

import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

#: 8-byte big-endian length prefix on every slot; zero means empty.
HEADER = struct.Struct(">Q")


class SlotBlock:
    """A shared-memory segment divided into fixed, single-writer slots."""

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 slot_size: int, owner: bool):
        self.shm = shm
        self.slots = slots
        self.slot_size = slot_size
        self.owner = owner

    @classmethod
    def create(cls, slots: int, slot_size: int) -> "SlotBlock":
        """Allocate a zero-filled block for ``slots`` payloads of up to
        ``slot_size`` bytes each (created by the parent, who owns the
        unlink)."""
        if slots < 1 or slot_size < 1:
            raise ValueError(
                f"SlotBlock needs slots >= 1 and slot_size >= 1, got "
                f"{slots} x {slot_size}"
            )
        total = slots * (HEADER.size + slot_size)
        shm = shared_memory.SharedMemory(create=True, size=total)
        # Linux gives zero pages; be explicit so emptiness is an
        # invariant, not a platform accident.
        shm.buf[:total] = bytes(total)
        return cls(shm, slots, slot_size, owner=True)

    @classmethod
    def attach(cls, name: str, slots: int, slot_size: int) -> "SlotBlock":
        """Map an existing block by name (spawn-started workers).

        The resource tracker is told to forget the segment immediately:
        attaching must not transfer unlink responsibility to the worker
        (bpo-38119).
        """
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker shape varies
            pass
        return cls(shm, slots, slot_size, owner=False)

    def _offset(self, index: int) -> int:
        if not 0 <= index < self.slots:
            raise IndexError(
                f"slot {index} out of range for {self.slots}-slot block"
            )
        return index * (HEADER.size + self.slot_size)

    def write(self, index: int, data: bytes) -> bool:
        """Fill slot ``index``; ``False`` (slot untouched) on overflow."""
        if len(data) > self.slot_size:
            return False
        base = self._offset(index)
        start = base + HEADER.size
        self.shm.buf[start:start + len(data)] = data
        # Length prefix last: a non-zero header means the payload bytes
        # before it are fully in place.
        self.shm.buf[base:base + HEADER.size] = HEADER.pack(len(data))
        return True

    def read(self, index: int) -> Optional[bytes]:
        """The payload of slot ``index``, or ``None`` while empty."""
        base = self._offset(index)
        (length,) = HEADER.unpack_from(bytes(
            self.shm.buf[base:base + HEADER.size]
        ))
        if length == 0:
            return None
        start = base + HEADER.size
        return bytes(self.shm.buf[start:start + length])

    def close(self) -> None:
        self.shm.close()

    def destroy(self) -> None:
        """Unmap and (if owner) unlink the segment."""
        self.shm.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotBlock({self.shm.name!r}, {self.slots} x "
            f"{self.slot_size} bytes)"
        )
