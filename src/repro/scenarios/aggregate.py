"""Aggregation of sweep executions into portable result tables.

A grid run (:func:`repro.scenarios.sweeps.run_grid`) produces one
:class:`CellResult` per grid cell — the cell's axis coordinates, an
``ok`` flag, an optional protocol ``verdict`` (``"atomic"``, ``"ok"``,
``"violation"``, …) and a flat JSON-safe ``metrics`` mapping — and
bundles them into a :class:`SweepResult`.

The bundle is deliberately *portable*: every exported field survives a
JSON or CSV round-trip bit-for-bit, and the canonical JSON rendering is
byte-identical no matter which executor produced it (serial or
multiprocessing), which is what makes sweep outputs diffable artifacts.
``BENCH_*.json`` perf-trajectory files are written with
:func:`write_bench_json`.

Summary statistics use nearest-rank percentiles (:func:`percentile`) so
``p50``/``p99`` are always values that actually occurred.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ScenarioError

#: Column names a sweep axis may not use (they anchor the CSV layout).
RESERVED_COLUMNS = ("index", "ok", "verdict", "error")


# -- canonical JSON-safe values ------------------------------------------------

def jsonable(value: Any) -> Any:
    """``value`` converted to a canonical JSON-safe equivalent.

    Mappings become string-keyed dicts, sequences become lists, sets are
    sorted, and anything else non-primitive collapses to ``repr``.  The
    conversion is deterministic, so two executions of the same sweep —
    on any executor backend — serialize byte-identically.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Strict JSON has no NaN/Infinity tokens; stringify them so the
        # export stays RFC 8259-parseable everywhere.
        if math.isnan(value) or math.isinf(value):
            return repr(value)
        return value
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return repr(value)


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (``p`` in [0, 100])."""
    if not values:
        raise ScenarioError("percentile of an empty sequence")
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summary_stats(values: Sequence[float]) -> Dict[str, float]:
    """``count``/``mean``/``min``/``p50``/``p99``/``max`` of ``values``."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean": round(sum(values) / len(values), 9),
        "min": min(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "max": max(values),
    }


# -- one cell ------------------------------------------------------------------

@dataclass(frozen=True)
class CellResult:
    """The outcome of one grid cell.

    ``point`` maps axis names to their *labels* (strings — the portable
    coordinates of the cell).  ``ok`` is False when the cell raised; the
    exception is summarized in ``error`` and the other cells of the
    sweep are unaffected.  ``result`` optionally carries the live
    :class:`~repro.scenarios.result.RunResult` handle when the sweep ran
    in-process — it is excluded from comparisons and never exported.
    """

    index: int
    point: Mapping[str, str]
    ok: bool
    verdict: Optional[str] = None
    metrics: Mapping[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    result: Optional[Any] = field(
        default=None, compare=False, repr=False
    )

    def require(self) -> "CellResult":
        """This cell, raising its captured error if it failed.

        Use before reading ``metrics`` in reporting code so a cell that
        was isolated by the executor surfaces its real error instead of
        a missing-metric ``KeyError``.
        """
        if not self.ok:
            raise ScenarioError(
                f"cell {self.index} {dict(self.point)} failed: {self.error}"
            )
        return self

    def unwrap(self) -> Any:
        """The live :class:`RunResult` handle, or a clear error.

        Raises when the cell failed (propagating its captured error) or
        when the cell ran out-of-process and carries portable metrics
        only (multiprocessing backend, or ``keep_results=False``).
        """
        self.require()
        if self.result is None:
            raise ScenarioError(
                f"cell {self.index} {dict(self.point)} has no live result "
                f"handle; run the sweep serially with keep_results=True"
            )
        return self.result

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "point": dict(self.point),
            "ok": self.ok,
            "verdict": self.verdict,
            "metrics": dict(self.metrics),
            "error": self.error,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "CellResult":
        return cls(
            index=int(payload["index"]),
            point=dict(payload["point"]),
            ok=bool(payload["ok"]),
            verdict=payload.get("verdict"),
            metrics=dict(payload.get("metrics", {})),
            error=payload.get("error"),
        )


# -- the aggregated table ------------------------------------------------------

@dataclass(frozen=True)
class SweepResult:
    """Every cell of one executed sweep, plus the grid's axis labels.

    The table is queryable (:meth:`select`, :meth:`cell`,
    :meth:`verdict_counts`, :meth:`summarize`) and exportable
    (:meth:`to_json` / :meth:`to_csv`), with lossless round-trips via
    :meth:`from_json` and :meth:`cells_from_csv`.
    """

    name: str
    axes: Tuple[Tuple[str, Tuple[str, ...]], ...]
    cells: Tuple[CellResult, ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(
            self,
            "axes",
            tuple((str(n), tuple(labels)) for n, labels in self.axes),
        )
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(self, "metadata", dict(self.metadata))

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    # -- queries --------------------------------------------------------------

    def select(self, **filters: Any) -> Tuple[CellResult, ...]:
        """Cells whose axis labels match every filter (values are
        compared by their string label, so ``seed=3`` matches ``"3"``)."""
        unknown = set(filters) - set(self.axis_names)
        if unknown:
            raise ScenarioError(
                f"unknown axes {sorted(unknown)}; "
                f"sweep {self.name!r} has {list(self.axis_names)}"
            )
        wanted = {k: plain_label(v) for k, v in filters.items()}
        return tuple(
            c for c in self.cells
            if all(c.point.get(k) == v for k, v in wanted.items())
        )

    def cell(self, **filters: Any) -> CellResult:
        """The unique cell matching ``filters``."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise ScenarioError(
                f"expected exactly one cell for {filters!r} in sweep "
                f"{self.name!r}, found {len(matches)}"
            )
        return matches[0]

    def failures(self) -> Tuple[CellResult, ...]:
        return tuple(c for c in self.cells if not c.ok)

    def verdict_counts(self) -> Dict[str, int]:
        """``{verdict: cell count}``, failed cells counted as ``"error"``."""
        counts: Dict[str, int] = {}
        for c in self.cells:
            key = c.verdict if c.ok else "error"
            if key is None:
                continue
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def metric_values(self, key: str, **filters: Any) -> List[float]:
        """Numeric values of ``metrics[key]`` over matching ok cells
        (dotted keys reach into nested summaries: ``"latency.p99"``)."""
        out: List[float] = []
        for c in self.select(**filters) if filters else self.cells:
            if not c.ok:
                continue
            value: Any = c.metrics
            for part in key.split("."):
                if not isinstance(value, Mapping) or part not in value:
                    value = None
                    break
                value = value[part]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out.append(value)
        return out

    def summarize(self, key: str, **filters: Any) -> Dict[str, float]:
        """mean/p50/p99 summary of one numeric metric across cells."""
        return summary_stats(self.metric_values(key, **filters))

    def table(self) -> List[str]:
        """Human-readable one-line-per-cell rendering."""
        rows = []
        for c in self.cells:
            coords = " ".join(f"{k}={v}" for k, v in c.point.items())
            if not c.ok:
                rows.append(f"[{c.index:>3}] {coords}  ERROR {c.error}")
                continue
            verdict = f"  {c.verdict}" if c.verdict else ""
            nums = " ".join(
                f"{k}={v}" for k, v in c.metrics.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            rows.append(f"[{c.index:>3}] {coords}{verdict}  {nums}".rstrip())
        return rows

    # -- JSON -----------------------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "sweep": self.name,
            "axes": [[name, list(labels)] for name, labels in self.axes],
            "cells": [c.to_jsonable() for c in self.cells],
            "verdicts": self.verdict_counts(),
            "metadata": dict(self.metadata),
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical across executor backends."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "SweepResult":
        return cls(
            name=payload["sweep"],
            axes=tuple(
                (name, tuple(labels)) for name, labels in payload["axes"]
            ),
            cells=tuple(
                CellResult.from_jsonable(c) for c in payload["cells"]
            ),
            metadata=dict(payload.get("metadata", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_jsonable(json.loads(text))

    # -- CSV ------------------------------------------------------------------

    def metric_columns(self) -> Tuple[str, ...]:
        keys = set()
        for c in self.cells:
            keys.update(c.metrics)
        return tuple(sorted(keys))

    def to_csv(self) -> str:
        """One row per cell: ``index``, one column per axis, ``ok``,
        ``verdict``, ``error``, then one JSON-encoded column per metric
        key (JSON-encoding keeps numeric/str/nested values lossless)."""
        buffer = io.StringIO()
        metric_keys = self.metric_columns()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            ["index", *self.axis_names, "ok", "verdict", "error",
             *metric_keys]
        )
        for c in self.cells:
            writer.writerow(
                [
                    c.index,
                    *(c.point[a] for a in self.axis_names),
                    "true" if c.ok else "false",
                    c.verdict or "",
                    c.error or "",
                    *(
                        json.dumps(c.metrics[k], sort_keys=True)
                        if k in c.metrics else ""
                        for k in metric_keys
                    ),
                ]
            )
        return buffer.getvalue()

    @classmethod
    def cells_from_csv(cls, text: str) -> Tuple[CellResult, ...]:
        """Invert :meth:`to_csv` (cells only; the sweep name and axis
        label inventory are not part of the CSV)."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader)
        try:
            ok_at = header.index("ok")
            error_at = header.index("error")
        except ValueError:
            raise ScenarioError("not a sweep CSV: missing ok/error columns")
        axis_names = header[1:ok_at]
        metric_keys = header[error_at + 1:]
        cells = []
        for row in reader:
            metrics = {
                key: json.loads(cell)
                for key, cell in zip(metric_keys, row[error_at + 1:])
                if cell != ""
            }
            cells.append(
                CellResult(
                    index=int(row[0]),
                    point=dict(zip(axis_names, row[1:ok_at])),
                    ok=row[ok_at] == "true",
                    verdict=row[ok_at + 1] or None,
                    metrics=metrics,
                    error=row[ok_at + 2] or None,
                )
            )
        return tuple(cells)


def plain_label(value: Any) -> str:
    """The portable string label of a plain (unlabeled) axis value.

    Shared by grid expansion (:func:`repro.scenarios.sweeps.axis_label`)
    and result filtering (:meth:`SweepResult.select`) so the two always
    agree on coordinates.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, (bool, int, float)):
        return str(value)
    return repr(value)


# -- BENCH_*.json emission -----------------------------------------------------

def write_bench_json(
    result: SweepResult, directory: Union[str, Path] = "."
) -> Path:
    """Write ``BENCH_<name>.json`` for the perf trajectory.

    The file is the canonical :meth:`SweepResult.to_json` rendering, so
    successive runs of the same sweep diff cleanly.
    """
    safe = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in result.name
    )
    path = Path(directory) / f"BENCH_{safe}.json"
    path.write_text(result.to_json())
    return path
