"""``run(spec)`` — the single entry point for executing a scenario.

The runner resolves the protocol adapter, wires the system, applies the
fault plan (crashes are scheduled before workload operations so that a
crash and an operation at the same instant resolve crash-first), then
schedules the workload and runs to the spec's horizon (or completion).

The execute phase (the event loop proper, excluding wiring and RQS
construction) is wall-timed onto ``RunResult.execute_seconds`` so perf
benches measure scheduler throughput without re-implementing the
pipeline.
"""

from __future__ import annotations

import time

from repro.scenarios.registry import get_protocol
from repro.scenarios.result import RunResult
from repro.scenarios.spec import ScenarioSpec


def run(spec: ScenarioSpec) -> RunResult:
    """Execute one scenario and return its bundled result."""
    adapter_cls = get_protocol(spec.protocol)
    adapter = adapter_cls.build(spec)
    adapter.apply_faults(spec)
    adapter.schedule(spec)
    start = time.perf_counter()
    adapter.execute(spec)
    elapsed = time.perf_counter() - start
    result = RunResult(spec, adapter)
    result.execute_seconds = elapsed
    return result
