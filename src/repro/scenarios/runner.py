"""``run(spec)`` — the single entry point for executing a scenario.

The runner resolves the protocol adapter, wires the system, applies the
fault plan (crashes are scheduled before workload operations so that a
crash and an operation at the same instant resolve crash-first), then
schedules the workload and runs to the spec's horizon (or completion).

Streaming runs (``TraceLevel.METRICS``, where operation records are not
retained) additionally get the **windowed online checker** subscribed to
the trace before execution: single-writer ``RandomMix`` storage
workloads are safety-checked as operations complete, so horizon-free
soaks produce a real verdict without ever materializing the history —
read it via ``RunResult.online``.  FULL runs keep the exact post-hoc
checkers instead.

The execute phase (the event loop proper, excluding wiring and RQS
construction) is wall-timed onto ``RunResult.execute_seconds`` so perf
benches measure scheduler throughput without re-implementing the
pipeline.
"""

from __future__ import annotations

import time

from repro.analysis.streaming import OnlineChecker
from repro.scenarios.registry import get_protocol
from repro.scenarios.result import RunResult
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import RandomMix


def _wire_online_checker(adapter, spec) -> None:
    """Subscribe the windowed checker to streaming storage runs.

    Engaged only where its invariants are sound: records are being
    streamed (not retained), the protocol is a storage protocol, the
    register space is single-writer, and the workload is a *single*
    ``RandomMix`` (sequential integer write values, totally ordered per
    key — the ordering the windowed rules rely on; two mixes interleave
    their value ranges in time, breaking monotonicity).
    """
    if adapter.trace.retain:
        return
    if getattr(adapter, "kind", "") != "storage":
        return
    if spec.n_writers != 1:
        return
    if len(spec.workload) != 1 or not isinstance(
        spec.workload[0], RandomMix
    ):
        return
    checker = OnlineChecker()
    adapter.trace.subscribe(
        on_begin=checker.on_begin, on_complete=checker.on_complete
    )
    adapter.online_checker = checker


def run(spec: ScenarioSpec) -> RunResult:
    """Execute one scenario and return its bundled result."""
    adapter_cls = get_protocol(spec.protocol)
    adapter = adapter_cls.build(spec)
    _wire_online_checker(adapter, spec)
    adapter.apply_faults(spec)
    adapter.schedule(spec)
    start = time.perf_counter()
    adapter.execute(spec)
    elapsed = time.perf_counter() - start
    result = RunResult(spec, adapter)
    result.execute_seconds = elapsed
    return result
