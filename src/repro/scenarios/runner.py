"""``run(spec)`` — the single entry point for executing a scenario.

The runner resolves the protocol adapter, wires the system, applies the
fault plan (crashes are scheduled before workload operations so that a
crash and an operation at the same instant resolve crash-first), then
schedules the workload and runs to the spec's horizon (or completion).

Streaming runs (``TraceLevel.METRICS``, where operation records are not
retained) additionally get the **windowed online checker** subscribed to
the trace before execution: ``RandomMix`` storage workloads are
safety-checked as operations complete — the value-ordered SW checker
for single-writer specs, the stamp-ordered MW checker for multi-writer
ones — so horizon-free soaks produce a real verdict without ever
materializing the history; read it via ``RunResult.online``.  Where no
checker applies, a structured :class:`~repro.analysis.streaming.
OnlineRefusal` lands on ``RunResult.online_refusal`` instead of a bare
``None``.  FULL runs keep the exact post-hoc checkers.

The execute phase (the event loop proper, excluding wiring and RQS
construction) is wall-timed onto ``RunResult.execute_seconds`` so perf
benches measure scheduler throughput without re-implementing the
pipeline.
"""

from __future__ import annotations

import time

from repro.analysis.streaming import (
    MultiWriterOnlineChecker,
    OnlineChecker,
    OnlineRefusal,
)
from repro.scenarios.registry import get_protocol
from repro.scenarios.result import RunResult
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import RandomMix


def _wire_online_checker(adapter, spec) -> None:
    """Subscribe the windowed checker to streaming storage runs.

    Engaged only where its invariants are sound: records are being
    streamed (not retained), the protocol is a storage protocol, and
    the workload is a *single* ``RandomMix`` (sequential integer write
    values — unique per run, totally ordered per key for a single
    writer; two mixes interleave their value ranges in time, breaking
    both).  Single-writer specs get the value-ordered
    :class:`OnlineChecker`, multi-writer specs the stamp-ordered
    :class:`MultiWriterOnlineChecker`.  Streamed runs outside this
    envelope get a structured :class:`OnlineRefusal` on the adapter so
    ``RunResult`` can explain the missing verdict.
    """
    if adapter.trace.retain:
        # FULL traces keep records: the exact post-hoc checkers apply,
        # so there is nothing to refuse.
        return
    if getattr(adapter, "kind", "") != "storage":
        adapter.online_refusal = OnlineRefusal(
            "not-storage",
            f"protocol {spec.protocol!r} has no register semantics to "
            f"check online; consensus verdicts need retained records",
        )
        return
    if len(spec.workload) != 1 or not isinstance(
        spec.workload[0], RandomMix
    ):
        adapter.online_refusal = OnlineRefusal(
            "workload-shape",
            "the online checker requires a single RandomMix workload: "
            "scripted operations and multi-mix specs interleave value "
            "ranges the windowed rules cannot order",
        )
        return
    if spec.n_writers == 1:
        checker = OnlineChecker()
    else:
        checker = MultiWriterOnlineChecker()
    adapter.trace.subscribe(
        on_begin=checker.on_begin, on_complete=checker.on_complete
    )
    adapter.online_checker = checker


def run(spec: ScenarioSpec):
    """Execute one scenario and return its bundled result.

    Specs with ``shards > 1`` dispatch to the sharded executor
    (:func:`repro.scenarios.sharding.run_sharded`), which partitions the
    keyed draw across worker processes and returns the merged
    :class:`~repro.scenarios.sharding.ShardedRunResult`; everything else
    runs in-process and returns a plain :class:`RunResult`.
    """
    if spec.shards > 1:
        from repro.scenarios.sharding import run_sharded

        return run_sharded(spec)
    adapter_cls = get_protocol(spec.protocol)
    adapter = adapter_cls.build(spec)
    _wire_online_checker(adapter, spec)
    adapter.apply_faults(spec)
    adapter.schedule(spec)
    start = time.perf_counter()
    cpu_start = time.process_time()
    adapter.execute(spec)
    elapsed = time.perf_counter() - start
    cpu_elapsed = time.process_time() - cpu_start
    result = RunResult(spec, adapter)
    result.execute_seconds = elapsed
    result.execute_cpu_seconds = cpu_elapsed
    return result
