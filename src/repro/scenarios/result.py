"""The result of running one scenario.

:class:`RunResult` bundles the execution trace with latency metrics and
correctness verdicts.  Checkers are *lazy* — an atomicity or
linearizability check only runs when its property is first read, so
cheap smoke runs pay nothing for verdicts they never look at.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.analysis.atomicity import (
    AtomicityReport,
    check_swmr_atomicity,
    partition_by_key,
)
from repro.analysis.consensus_check import ConsensusReport, check_consensus
from repro.analysis.latency import LatencySummary, summarize_rounds
from repro.analysis.linearizability import is_linearizable
from repro.sim.trace import OperationRecord
from repro.storage.history import DEFAULT_KEY


class RunResult:
    """Trace + metrics + verdicts for one executed scenario."""

    def __init__(self, spec, adapter):
        self.spec = spec
        self.adapter = adapter
        #: Wall seconds of the execute phase (set by the runner); the
        #: scheduler-throughput denominator used by ``bench_simcore``.
        self.execute_seconds: Optional[float] = None

    # -- raw execution access -------------------------------------------------

    @property
    def system(self):
        """The wired protocol system (servers, clients, network, sim)."""
        return self.adapter.system

    @property
    def trace(self):
        return self.adapter.trace

    @property
    def records(self) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.records

    @property
    def completed(self) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.completed()

    def of_kind(self, kind: str) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.of_kind(kind)

    @property
    def writes(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("write")

    @property
    def reads(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("read")

    @property
    def proposes(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("propose")

    @property
    def learns(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("learn")

    def write(self, index: int = 0) -> OperationRecord:
        return self.writes[index]

    def read(self, index: int = 0) -> OperationRecord:
        return self.reads[index]

    @property
    def blocked(self) -> Tuple[str, ...]:
        """Names of operations still blocked when the run stopped."""
        return tuple(t.name for t in self.adapter.sim.blocked_tasks())

    # -- verdicts (lazy) ------------------------------------------------------

    @cached_property
    def atomicity(self) -> AtomicityReport:
        """Aggregate atomicity verdict over the keyed storage history.

        Registers are checked independently per key (the sum of per-key
        checks); this is the aggregate report — per-register reports
        hang off :attr:`atomicity_by_key`.
        """
        return check_swmr_atomicity(self.records)

    @property
    def atomicity_by_key(self) -> Dict[Hashable, AtomicityReport]:
        """Per-register atomicity reports, key → report."""
        report = self.atomicity
        if report.by_key:
            return dict(report.by_key)
        keys = self.keys
        return {keys[0] if keys else DEFAULT_KEY: report}

    @property
    def key_verdicts(self) -> Dict[Hashable, bool]:
        """Per-register ``atomic`` booleans (the sweep-friendly view)."""
        return {
            key: rep.atomic for key, rep in self.atomicity_by_key.items()
        }

    @property
    def keys(self) -> Tuple[Hashable, ...]:
        """Register keys addressed by this execution (repr-sorted)."""
        return tuple(partition_by_key(self.records))

    def of_key(self, key: Hashable) -> Tuple[OperationRecord, ...]:
        """This execution's operations on one register."""
        return tuple(
            r for r in self.records
            if r.kind in ("write", "read")
            and getattr(r, "key", DEFAULT_KEY) == key
        )

    @cached_property
    def linearizable(self) -> bool:
        """Wing–Gong linearizability of the register history (small runs);
        keyed histories are decided register-by-register (locality)."""
        return is_linearizable(self.records)

    @cached_property
    def consensus(self) -> ConsensusReport:
        """Consensus verdict; Termination is checked against every
        learner the scenario did not crash (use :meth:`check_consensus`
        for custom benign/correct sets)."""
        return self.check_consensus(
            correct_learners=self.adapter.correct_learner_pids()
        )

    def check_consensus(self, **kwargs: Any) -> ConsensusReport:
        return check_consensus(self.records, **kwargs)

    # -- latency metrics ------------------------------------------------------

    def latency(self, kind: str) -> LatencySummary:
        return summarize_rounds(self.records, kind)

    @property
    def learned(self) -> Dict[Hashable, Any]:
        """Learner pid → learned value (completed learners only)."""
        return {
            r.process: r.result for r in self.learns if r.complete
        }

    @property
    def learner_delays(self) -> Dict[Hashable, Optional[float]]:
        """Learner pid → message-delay latency from the first propose
        (``None`` for learners that never learned)."""
        proposes = self.proposes
        origin = proposes[0].invoked_at if proposes else 0.0
        delays: Dict[Hashable, Optional[float]] = {}
        for pid in self.adapter.learner_pids():
            delays[pid] = None
        for record in self.learns:
            if record.complete:
                delays[record.process] = (
                    (record.completed_at - origin) / self.spec.delta
                )
        return delays

    @property
    def worst_learner_delay(self) -> Optional[float]:
        """Max learner delay, or ``None`` if any learner never learned."""
        delays = self.learner_delays
        if not delays or any(d is None for d in delays.values()):
            return None
        return max(delays.values())

    # -- determinism ----------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """A hashable execution digest for reproducibility assertions.

        Uses the network's monotone ``sent_count`` (== ``len(log)`` at
        full tracing) so fingerprints stay comparable across
        :class:`~repro.sim.network.TraceLevel` settings.  Single-key
        histories keep the historical digest shape byte-for-byte;
        multi-register histories append each record's key so per-key
        schedules are pinned too.
        """
        keyed = any(
            getattr(r, "key", DEFAULT_KEY) != DEFAULT_KEY
            for r in self.records
        )
        if keyed:
            return tuple(
                (r.kind, r.process, r.invoked_at, r.completed_at,
                 repr(r.result), r.rounds, r.key)
                for r in self.records
            ) + (self.adapter.network.sent_count,)
        return tuple(
            (r.kind, r.process, r.invoked_at, r.completed_at,
             repr(r.result), r.rounds)
            for r in self.records
        ) + (self.adapter.network.sent_count,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult({self.spec.protocol!r}, "
            f"{len(self.records)} operations, "
            f"{len(self.completed)} completed)"
        )
