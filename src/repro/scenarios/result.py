"""The result of running one scenario.

:class:`RunResult` bundles the execution trace with latency metrics and
correctness verdicts.  Checkers are *lazy* — an atomicity or
linearizability check only runs when its property is first read, so
cheap smoke runs pay nothing for verdicts they never look at.

Results report uniformly across retention modes.  On FULL runs the
record-backed surface (``records``/``atomicity``/``latency``) is exact
and post-hoc; on streaming runs (``TraceLevel.METRICS``) the history was
never materialized, so the record-backed verdicts raise with guidance
and the streaming surface takes over: per-kind begun/completed counts
(:meth:`ops_begun`/:meth:`ops_completed`), accumulator-backed latency
summaries (``latency`` falls through to the online path), and the
windowed online safety verdict (:attr:`online`).  :meth:`summary` is
the mode-independent portable digest.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.analysis.atomicity import (
    AtomicityReport,
    check_swmr_atomicity,
    partition_by_key,
)
from repro.analysis.consensus_check import ConsensusReport, check_consensus
from repro.analysis.latency import LatencySummary, summarize_rounds
from repro.analysis.linearizability import is_linearizable
from repro.analysis.streaming import OnlineRefusal, OnlineReport
from repro.errors import CheckerError
from repro.sim.trace import OperationRecord
from repro.storage.history import DEFAULT_KEY


class RunResult:
    """Trace + metrics + verdicts for one executed scenario."""

    def __init__(self, spec, adapter):
        self.spec = spec
        self.adapter = adapter
        #: Wall seconds of the execute phase (set by the runner); the
        #: scheduler-throughput denominator used by ``bench_simcore``.
        self.execute_seconds: Optional[float] = None
        #: CPU seconds of the execute phase (``time.process_time``) —
        #: immune to timesharing, so the fair capacity denominator when
        #: comparing against sharded runs on oversubscribed hosts.
        self.execute_cpu_seconds: Optional[float] = None

    # -- raw execution access -------------------------------------------------

    @property
    def system(self):
        """The wired protocol system (servers, clients, network, sim)."""
        return self.adapter.system

    @property
    def trace(self):
        return self.adapter.trace

    @property
    def records(self) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.records

    @property
    def completed(self) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.completed()

    def of_kind(self, kind: str) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.of_kind(kind)

    @property
    def writes(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("write")

    @property
    def reads(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("read")

    @property
    def proposes(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("propose")

    @property
    def learns(self) -> Tuple[OperationRecord, ...]:
        return self.of_kind("learn")

    def write(self, index: int = 0) -> OperationRecord:
        return self.writes[index]

    def read(self, index: int = 0) -> OperationRecord:
        return self.reads[index]

    @property
    def blocked(self) -> Tuple[str, ...]:
        """Names of operations still blocked when the run stopped."""
        return tuple(t.name for t in self.adapter.sim.blocked_tasks())

    # -- streaming surface (valid at every retention mode) --------------------

    @property
    def streamed(self) -> bool:
        """True when operation records were not retained (METRICS)."""
        return not self.adapter.trace.retain

    def ops_begun(self, kind: Optional[str] = None) -> int:
        """Operations invoked (one kind, or all) — counter-backed, so
        exact at every retention mode."""
        trace = self.adapter.trace
        if kind is None:
            return trace.begun_total()
        return trace.begun.get(kind, 0)

    def ops_completed(self, kind: Optional[str] = None) -> int:
        trace = self.adapter.trace
        if kind is None:
            return trace.completed_total()
        return trace.completed_counts.get(kind, 0)

    def op_kinds(self) -> Tuple[str, ...]:
        """Operation kinds begun during this run, sorted — the
        result-shape-independent way to enumerate kinds (mirrored by
        ``ShardedRunResult``)."""
        return tuple(sorted(self.adapter.trace.begun))

    @property
    def events_processed(self) -> int:
        """Simulator events consumed by the execute phase."""
        return self.adapter.sim.events_processed

    @property
    def online(self) -> Optional[OnlineReport]:
        """The windowed online checker's verdict, when one was wired
        (streaming RandomMix storage runs — SW or MW mode); else None,
        with :attr:`online_refusal` naming the reason."""
        checker = getattr(self.adapter, "online_checker", None)
        return checker.report() if checker is not None else None

    @property
    def online_refusal(self) -> Optional[OnlineRefusal]:
        """Why this run carries no online verdict (streamed runs the
        runner declined to wire a checker to); None when a checker ran
        or when records were retained for the post-hoc checkers."""
        if getattr(self.adapter, "online_checker", None) is not None:
            return None
        return getattr(self.adapter, "online_refusal", None)

    @property
    def server_history(self) -> Optional[Dict[str, Any]]:
        """Server-side history-matrix accounting (rqs-storage systems):
        retained/GC'd cell counters and the ``bounded_history`` flag —
        the flat-memory exhibit for bounded soaks.  None for protocols
        without a history matrix."""
        stats = getattr(self.adapter.system, "history_stats", None)
        return stats() if callable(stats) else None

    def _require_records(self, what: str) -> None:
        if self.streamed and self.ops_begun() > len(self._retained()):
            raise CheckerError(
                f"{what} needs retained operation records, but this run "
                f"streamed them (TraceLevel.METRICS discards records as "
                f"operations complete); use RunResult.online for the "
                f"windowed streaming verdict, the ops_begun/ops_completed "
                f"counters, and the accumulator-backed latency summaries "
                f"— or run at TraceLevel.FULL"
            )

    def _retained(self) -> Tuple[OperationRecord, ...]:
        return self.adapter.trace.records

    # -- verdicts (lazy) ------------------------------------------------------

    @cached_property
    def atomicity(self) -> AtomicityReport:
        """Aggregate atomicity verdict over the keyed storage history.

        Registers are checked independently per key (the sum of per-key
        checks); this is the aggregate report — per-register reports
        hang off :attr:`atomicity_by_key`.  Requires retained records
        (FULL tracing); streamed runs use :attr:`online`.
        """
        self._require_records("the post-hoc atomicity checker")
        return check_swmr_atomicity(self.records)

    @property
    def atomicity_by_key(self) -> Dict[Hashable, AtomicityReport]:
        """Per-register atomicity reports, key → report."""
        report = self.atomicity
        if report.by_key:
            return dict(report.by_key)
        keys = self.keys
        return {keys[0] if keys else DEFAULT_KEY: report}

    @property
    def key_verdicts(self) -> Dict[Hashable, bool]:
        """Per-register ``atomic`` booleans (the sweep-friendly view)."""
        return {
            key: rep.atomic for key, rep in self.atomicity_by_key.items()
        }

    @property
    def keys(self) -> Tuple[Hashable, ...]:
        """Register keys addressed by this execution (repr-sorted)."""
        return tuple(partition_by_key(self.records))

    def of_key(self, key: Hashable) -> Tuple[OperationRecord, ...]:
        """This execution's operations on one register."""
        return tuple(
            r for r in self.records
            if r.kind in ("write", "read")
            and getattr(r, "key", DEFAULT_KEY) == key
        )

    @cached_property
    def linearizable(self) -> bool:
        """Wing–Gong linearizability of the register history (small runs);
        keyed histories are decided register-by-register (locality)."""
        self._require_records("the Wing–Gong linearizability checker")
        return is_linearizable(self.records)

    @cached_property
    def consensus(self) -> ConsensusReport:
        """Consensus verdict; Termination is checked against every
        learner the scenario did not crash (use :meth:`check_consensus`
        for custom benign/correct sets)."""
        return self.check_consensus(
            correct_learners=self.adapter.correct_learner_pids()
        )

    def check_consensus(self, **kwargs: Any) -> ConsensusReport:
        self._require_records("the consensus checker")
        return check_consensus(self.records, **kwargs)

    # -- latency metrics ------------------------------------------------------

    def latency(self, kind: str) -> LatencySummary:
        """The latency summary for one operation kind.

        Record-backed (exact quantiles) on FULL runs; falls through to
        the streaming accumulator on streamed runs — the two paths
        agree exactly whenever the accumulator's reservoir holds the
        full stream.
        """
        if self.streamed:
            return self.latency_streaming(kind)
        return summarize_rounds(self.records, kind)

    def latency_streaming(self, kind: str) -> LatencySummary:
        """The accumulator-backed summary (available at every mode)."""
        return LatencySummary.from_accumulator(
            self.adapter.trace.accumulator(kind), kind
        )

    def summary(self) -> Dict[str, Any]:
        """A portable mode-independent digest of this execution:
        per-kind op counts and streaming latency summaries, message
        volume, and whichever safety verdict this mode carries."""
        trace = self.adapter.trace
        kinds = sorted(trace.begun)
        out: Dict[str, Any] = {
            "operations": self.ops_begun(),
            "completed": self.ops_completed(),
            "blocked": len(self.blocked),
            "messages": self.adapter.network.sent_count,
            "kinds": {
                kind: {
                    "begun": self.ops_begun(kind),
                    "completed": self.ops_completed(kind),
                    "latency": self.latency_streaming(kind),
                }
                for kind in kinds
            },
        }
        online = self.online
        if online is not None:
            out["verdict"] = online.verdict
            out["verdict_source"] = "online-windowed"
            out["checker_mode"] = online.mode
            out["keys_checked"] = len(online.keys)
            out["violations"] = online.violation_count
        elif not self.streamed:
            out["verdict_source"] = "post-hoc"
        else:
            out["verdict_source"] = "unchecked"
            refusal = self.online_refusal
            if refusal is not None:
                out["online_refusal"] = refusal.reason
        return out

    @property
    def learned(self) -> Dict[Hashable, Any]:
        """Learner pid → learned value (completed learners only)."""
        return {
            r.process: r.result for r in self.learns if r.complete
        }

    @property
    def learner_delays(self) -> Dict[Hashable, Optional[float]]:
        """Learner pid → message-delay latency from the first propose
        (``None`` for learners that never learned)."""
        proposes = self.proposes
        origin = proposes[0].invoked_at if proposes else 0.0
        delays: Dict[Hashable, Optional[float]] = {}
        for pid in self.adapter.learner_pids():
            delays[pid] = None
        for record in self.learns:
            if record.complete:
                delays[record.process] = (
                    (record.completed_at - origin) / self.spec.delta
                )
        return delays

    @property
    def worst_learner_delay(self) -> Optional[float]:
        """Max learner delay, or ``None`` if any learner never learned."""
        delays = self.learner_delays
        if not delays or any(d is None for d in delays.values()):
            return None
        return max(delays.values())

    # -- determinism ----------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """A hashable execution digest for reproducibility assertions.

        Single-key histories keep the historical digest shape
        byte-for-byte; multi-register histories append each record's
        key so per-key schedules are pinned too.  Requires retained
        records (FULL tracing) — on streamed runs the digest would
        silently collapse to the message count alone, so it refuses
        instead; assert on the streaming counters
        (``ops_begun``/``ops_completed``/``events_processed``/
        ``sent_count``) there.
        """
        self._require_records("fingerprint()")
        keyed = any(
            getattr(r, "key", DEFAULT_KEY) != DEFAULT_KEY
            for r in self.records
        )
        if keyed:
            return tuple(
                (r.kind, r.process, r.invoked_at, r.completed_at,
                 repr(r.result), r.rounds, r.key)
                for r in self.records
            ) + (self.adapter.network.sent_count,)
        return tuple(
            (r.kind, r.process, r.invoked_at, r.completed_at,
             repr(r.result), r.rounds)
            for r in self.records
        ) + (self.adapter.network.sent_count,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult({self.spec.protocol!r}, "
            f"{len(self.records)} operations, "
            f"{len(self.completed)} completed)"
        )
