"""The unified scenario layer — the public way to run any execution.

One declarative :class:`ScenarioSpec` describes protocol, quorum system,
clients, synchrony bound, fault plan, workload and seed; :func:`run`
executes it and returns a :class:`RunResult` with the trace, latency
metrics and lazy correctness verdicts.  Every protocol in the repository
is registered here:

``rqs-storage`` · ``abd`` · ``fastabd`` · ``naive`` ·
``rqs-consensus`` · ``paxos`` · ``pbft``

Quickstart::

    from repro.scenarios import ScenarioSpec, Write, Read, run

    result = run(ScenarioSpec(
        protocol="rqs-storage",
        rqs="example6",                  # threshold_rqs(8, 3, 1, 1, 2)
        readers=1,
        workload=(Write(0.0, "hello"), Read(5.0)),
    ))
    assert result.read().result == "hello"
    assert result.atomicity.atomic

Invariant: all executions go through this layer — experiment drivers and
examples build a spec instead of wiring Simulator/Network by hand.

Grids of scenarios are sweeps: a :class:`SweepSpec` (axes of protocols ×
RQS constructions × fault plans × seeds) expands into frozen specs and
:func:`run_grid` executes them on a serial or multiprocessing backend,
aggregating into a portable :class:`SweepResult` table — see
:mod:`repro.scenarios.sweeps`.  Second invariant: **new figure = new
grid literal**.

Storage runs address a **keyed register space**: ``Write``/``Read``
carry a ``key`` (default: the single historical register) and a writer
index, ``RandomMix`` draws keys ``uniform``/``zipfian`` over
``ScenarioSpec.n_keys``, and ``n_writers > 1`` deploys concurrent
writers with totally-ordered timestamps.  Verdicts partition per key:
``RunResult.atomicity`` is the aggregate, ``RunResult.key_verdicts``
the per-register view.

Long runs **stream**: at ``TraceLevel.METRICS`` operation records are
never retained — counters, online latency accumulators and (for
single-writer ``RandomMix`` workloads) the windowed online checker
take over (``RunResult.online``), and the open-loop stopping rule
(``ScenarioSpec.duration``/``max_ops``) generates ops lazily per
client for horizon-free million-op soaks in O(clients + keys) memory.

The biggest soaks **shard**: ``ScenarioSpec.shards > 1`` partitions a
keyed streaming soak across worker processes by the deterministic
load-weighted :func:`shard_assignment` rule (crc32 for uniform mixes,
a greedy LPT bin-pack over the zipfian draw weights for skewed ones —
independent single-writer registers need no coordination) and merges
per-shard counters, accumulators and online verdicts into one
:class:`ShardedRunResult`; :func:`recommend_shards` turns the observed
per-shard CPU profile into a shard-count recommendation — see
:mod:`repro.scenarios.sharding`.

Quorum systems can be **expression-defined**: a planning-level
:class:`~repro.core.algebra.QuorumSystem` (``a*b + c*d`` over
capacitated :class:`~repro.core.algebra.Node` leaves) is a valid
``ScenarioSpec.rqs`` value (lifted on resolution), and the
``quorum_strategy`` knob (``"uniform"``/``"optimal"``/a
:class:`~repro.core.strategy.Strategy`) makes storage clients draw each
operation's quorum from a seeded distribution instead of broadcasting —
see :mod:`repro.core.algebra` and :mod:`repro.core.strategy`.
"""

from repro.core.strategy import Strategy
from repro.scenarios.aggregate import (
    CellResult,
    SweepResult,
    jsonable,
    percentile,
    summary_stats,
    write_bench_json,
)
from repro.scenarios.faults import (
    ACCEPTOR,
    PROPOSER,
    SERVER,
    ByzantineRole,
    Crash,
    Delay,
    Drop,
    FaultPlan,
    Hold,
    Partition,
    PayloadIs,
    crashes,
    lossy_until_gst,
    payload_is,
)
from repro.scenarios.registry import (
    available_protocols,
    get_protocol,
    register_protocol,
)
from repro.scenarios.result import RunResult
from repro.scenarios.runner import run
from repro.scenarios.sharding import (
    ShardedRunResult,
    recommend_shards,
    run_sharded,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    named_rqs,
    register_rqs,
    resolve_rqs,
)
from repro.scenarios.sweeps import (
    AxisValue,
    SweepSpec,
    default_measure,
    derive_seed,
    labeled,
    run_grid,
)
from repro.scenarios.workloads import (
    Propose,
    RandomMix,
    Read,
    Resync,
    Write,
    key_shard,
    shard_assignment,
)
from repro.sim.network import TraceLevel
from repro.storage.history import DEFAULT_KEY

# Importing the adapters registers every built-in protocol.
from repro.scenarios import adapters as _adapters  # noqa: F401

__all__ = [
    "ACCEPTOR",
    "AxisValue",
    "CellResult",
    "PROPOSER",
    "SERVER",
    "ByzantineRole",
    "Crash",
    "DEFAULT_KEY",
    "Delay",
    "Drop",
    "FaultPlan",
    "Hold",
    "Partition",
    "PayloadIs",
    "Propose",
    "RandomMix",
    "Read",
    "Resync",
    "RunResult",
    "ScenarioSpec",
    "ShardedRunResult",
    "Strategy",
    "SweepResult",
    "SweepSpec",
    "TraceLevel",
    "Write",
    "available_protocols",
    "crashes",
    "default_measure",
    "derive_seed",
    "get_protocol",
    "jsonable",
    "key_shard",
    "labeled",
    "lossy_until_gst",
    "named_rqs",
    "payload_is",
    "percentile",
    "recommend_shards",
    "register_protocol",
    "register_rqs",
    "resolve_rqs",
    "run",
    "run_grid",
    "run_sharded",
    "shard_assignment",
    "summary_stats",
    "write_bench_json",
]
