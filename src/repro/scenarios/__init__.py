"""The unified scenario layer — the public way to run any execution.

One declarative :class:`ScenarioSpec` describes protocol, quorum system,
clients, synchrony bound, fault plan, workload and seed; :func:`run`
executes it and returns a :class:`RunResult` with the trace, latency
metrics and lazy correctness verdicts.  Every protocol in the repository
is registered here:

``rqs-storage`` · ``abd`` · ``fastabd`` · ``naive`` ·
``rqs-consensus`` · ``paxos`` · ``pbft``

Quickstart::

    from repro.scenarios import ScenarioSpec, Write, Read, run

    result = run(ScenarioSpec(
        protocol="rqs-storage",
        rqs="example6",                  # threshold_rqs(8, 3, 1, 1, 2)
        readers=1,
        workload=(Write(0.0, "hello"), Read(5.0)),
    ))
    assert result.read().result == "hello"
    assert result.atomicity.atomic

Invariant: all executions go through this layer — experiment drivers and
examples build a spec instead of wiring Simulator/Network by hand.
"""

from repro.scenarios.faults import (
    ACCEPTOR,
    PROPOSER,
    SERVER,
    ByzantineRole,
    Crash,
    Delay,
    Drop,
    FaultPlan,
    Hold,
    Partition,
    crashes,
    lossy_until_gst,
)
from repro.scenarios.registry import (
    available_protocols,
    get_protocol,
    register_protocol,
)
from repro.scenarios.result import RunResult
from repro.scenarios.runner import run
from repro.scenarios.spec import (
    ScenarioSpec,
    named_rqs,
    register_rqs,
    resolve_rqs,
)
from repro.scenarios.workloads import (
    Propose,
    RandomMix,
    Read,
    Resync,
    Write,
)

# Importing the adapters registers every built-in protocol.
from repro.scenarios import adapters as _adapters  # noqa: F401

__all__ = [
    "ACCEPTOR",
    "PROPOSER",
    "SERVER",
    "ByzantineRole",
    "Crash",
    "Delay",
    "Drop",
    "FaultPlan",
    "Hold",
    "Partition",
    "Propose",
    "RandomMix",
    "Read",
    "Resync",
    "RunResult",
    "ScenarioSpec",
    "Write",
    "available_protocols",
    "crashes",
    "get_protocol",
    "lossy_until_gst",
    "named_rqs",
    "register_protocol",
    "register_rqs",
    "resolve_rqs",
    "run",
]
