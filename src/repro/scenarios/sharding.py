"""The sharded multi-process soak engine.

Single-writer registers are independent by construction — the per-key
verdict partitioning and the windowed online checkers already exploit
this — so a streamed keyed ``RandomMix`` soak partitions across worker
processes without coordination.  :func:`run_sharded` splits a spec with
``shards > 1`` into per-key-shard sub-specs, runs each shard's
simulator in its own process, and merges the per-shard streaming
surfaces into one :class:`ShardedRunResult` shaped like a streamed
:class:`~repro.scenarios.result.RunResult`.

**The key→shard rule.**
:func:`~repro.scenarios.workloads.shard_assignment` maps every key of
``range(n_keys)`` to a shard as a pure function of ``(seed, n_keys,
distribution, skew, shards)``, balancing *expected load* rather than
key counts: uniform mixes keep the historical crc32 rule
(``key -> crc32(f"shard:{seed}:{key!r}") % shards`` — bit-identical to
every pre-weighted sharded run), while zipfian mixes spread the hot
keys with a greedy LPT bin-pack over the exact Fraction draw weights
``1/(k+1)**skew``, so a skewed soak keeps its shards near-evenly
loaded (:attr:`ShardedRunResult.imbalance`).  Either way the rule is
deterministic, derived from the spec, and independent of the op
stream.  Every shard's generators consume the *full* seeded draw
(identical gaps, keys, and value serials as the unsharded run) and
yield only in-shard operations, so the union of the shard schedules is
a fixed partition of the unsharded schedule — the basis of the
equivalence tests.

**Collection.**  Workers pickle a :class:`ShardOutcome` — per-kind op
counters, latency accumulators, the shard's online verdict, server
history stats, CPU seconds, and peak RSS — into a per-shard
shared-memory slot (:class:`~repro.scenarios.shm.SlotBlock`; one slot
per shard, single writer, no locking).  Oversized outcomes fall back to
the multiprocessing result pipe; nothing is truncated.

**Merge semantics.**  Counters and Fraction-exact latency sums add;
reservoirs merge order-independently
(:meth:`~repro.analysis.streaming.QuantileReservoir.merge`); the merged
online verdict sums checked/violation counts over the repr-sorted key
union, and REFUSES — ``online is None`` with a structured
``shard-refused`` :class:`~repro.analysis.streaming.OnlineRefusal` —
if *any* shard ran unchecked.  A sharded soak never passes vacuously.

**Throughput accounting.**  Each worker reports
``time.process_time()`` CPU seconds, immune to timesharing, so
:attr:`ShardedRunResult.capacity_ops_per_sec` (the sum over shards of
``completed / cpu_seconds``) measures aggregate capacity even on hosts
with fewer cores than shards; wall-clock ops/sec is reported alongside.

Nested multiprocessing is detected (pool workers are daemonic and
cannot fork): sharded specs inside ``run_grid`` workers fall back to
serial in-process shard execution with identical results.
"""

from __future__ import annotations

import multiprocessing
import pickle
import resource
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.latency import LatencySummary
from repro.analysis.streaming import (
    LatencyAccumulator,
    OnlineRefusal,
    OnlineReport,
)
from repro.errors import ScenarioError
from repro.scenarios.registry import get_protocol
from repro.scenarios.shm import SlotBlock
from repro.scenarios.spec import ScenarioSpec

#: Per-shard result slot: 1 MiB holds a ShardOutcome with full
#: reservoirs (2 kinds x 2048 floats plus counters) with wide margin.
SHARD_SLOT_BYTES = 1 << 20

#: Capped violation examples carried through the merge, matching the
#: online checkers' own ``max_reported``.
MERGE_MAX_VIOLATIONS = 20


def split_max_ops(max_ops: Optional[int], shards: int) -> List[Optional[int]]:
    """Partition an op budget over shards (first shards absorb the
    remainder); ``None`` (duration-bounded run) stays ``None``."""
    if max_ops is None:
        return [None] * shards
    base, extra = divmod(max_ops, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def shard_spec(spec: ScenarioSpec, index: int) -> ScenarioSpec:
    """The single-process sub-spec executing shard ``index``.

    ``shards`` drops back to 1 (no re-dispatch) and the shard view
    moves into params, where the storage adapter threads it into the
    workload generators.
    """
    allotment = split_max_ops(spec.max_ops, spec.shards)
    params = dict(spec.params)
    params["shard_index"] = index
    params["shard_count"] = spec.shards
    return spec.with_(
        shards=1, max_ops=allotment[index], params=params
    )


@dataclass
class ShardOutcome:
    """Everything one shard's worker sends home — the full streaming
    surface of its :class:`RunResult`, flattened to plain picklable
    data plus the live accumulators."""

    index: int
    begun: Dict[str, int]
    completed: Dict[str, int]
    blocked: Tuple[str, ...]
    events: int
    messages: int
    accumulators: Dict[str, LatencyAccumulator]
    online: Optional[OnlineReport]
    online_refusal: Optional[OnlineRefusal]
    server_history: Optional[Dict[str, Any]] = None
    execute_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_rss_kb: int = 0


def _run_shard(spec: ScenarioSpec, index: int) -> ShardOutcome:
    """Execute shard ``index`` of a sharded spec in this process."""
    from repro.scenarios.runner import run

    sub = shard_spec(spec, index)
    result = run(sub)
    trace = result.adapter.trace
    accumulators = {
        kind: acc for kind in trace.completed_counts
        if (acc := trace.accumulator(kind)) is not None
    }
    return ShardOutcome(
        index=index,
        begun=dict(trace.begun),
        completed=dict(trace.completed_counts),
        blocked=result.blocked,
        events=result.events_processed,
        messages=result.adapter.network.sent_count,
        accumulators=accumulators,
        online=result.online,
        online_refusal=result.online_refusal,
        server_history=result.server_history,
        execute_seconds=result.execute_seconds or 0.0,
        cpu_seconds=result.execute_cpu_seconds or 0.0,
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    )


# -- worker-process plumbing --------------------------------------------------
#
# Fork-started workers inherit these globals (set by the parent before
# the pool spawns); spawn-started workers rebuild them in the
# initializer from the pickled payload and the shm name.

_SHARD_SPEC: Optional[ScenarioSpec] = None
_SHARD_SLOTS: Optional[SlotBlock] = None


def _shard_initialize(payload: bytes, shm_name: Optional[str],
                      slots: int, slot_size: int) -> None:
    global _SHARD_SPEC, _SHARD_SLOTS
    if _SHARD_SPEC is None:
        _SHARD_SPEC = pickle.loads(payload)
    if _SHARD_SLOTS is None and shm_name is not None:
        _SHARD_SLOTS = SlotBlock.attach(shm_name, slots, slot_size)


def _shard_worker(index: int) -> Tuple[int, Optional[ShardOutcome]]:
    """Run one shard; land the outcome in its shm slot, falling back to
    the result pipe when the pickle outgrows the slot."""
    outcome = _run_shard(_SHARD_SPEC, index)
    if _SHARD_SLOTS is not None:
        data = pickle.dumps(outcome, pickle.HIGHEST_PROTOCOL)
        if _SHARD_SLOTS.write(index, data):
            return (index, None)
    return (index, outcome)


# -- merging ------------------------------------------------------------------


def _merge_online(
    outcomes: List[ShardOutcome],
) -> Tuple[Optional[OnlineReport], Optional[OnlineRefusal]]:
    """One aggregate verdict, or a structured refusal if any shard ran
    unchecked — a sharded soak never passes vacuously."""
    unchecked = [o for o in outcomes if o.online is None]
    if unchecked:
        details = "; ".join(
            f"shard {o.index}: "
            + (o.online_refusal.reason if o.online_refusal else "no-verdict")
            for o in unchecked
        )
        return None, OnlineRefusal(
            "shard-refused",
            f"{len(unchecked)}/{len(outcomes)} shards carry no online "
            f"verdict ({details}); the merged soak refuses rather than "
            f"pass vacuously",
        )
    reports = [o.online for o in outcomes]
    modes = {report.mode for report in reports}
    if len(modes) != 1:
        return None, OnlineRefusal(
            "shard-refused",
            f"shards disagree on checker mode {sorted(modes)}; merged "
            f"counts would mix value-ordered and stamp-ordered checks",
        )
    violations: List[Any] = []
    for report in reports:
        violations.extend(report.violations)
    keys = sorted(
        {key for report in reports for key in report.keys}, key=repr
    )
    return OnlineReport(
        checked_writes=sum(r.checked_writes for r in reports),
        checked_reads=sum(r.checked_reads for r in reports),
        violation_count=sum(r.violation_count for r in reports),
        violations=tuple(violations[:MERGE_MAX_VIOLATIONS]),
        keys=tuple(keys),
        # Shards peak independently, so the sum is an upper bound on
        # simultaneous retention — conservative for the flat-memory gate.
        max_retained=sum(r.max_retained for r in reports),
        overrun_unchecked=sum(r.overrun_unchecked for r in reports),
        mode=modes.pop(),
    ), None


def _merge_server_history(
    outcomes: List[ShardOutcome],
) -> Optional[Dict[str, Any]]:
    parts = [o.server_history for o in outcomes]
    if any(part is None for part in parts):
        return None
    return {
        "bounded_history": all(part["bounded_history"] for part in parts),
        "retained_cells": sum(part["retained_cells"] for part in parts),
        "max_retained_cells": sum(
            part["max_retained_cells"] for part in parts
        ),
        "gc_removed_cells": sum(part["gc_removed_cells"] for part in parts),
    }


def _merge_accumulators(
    outcomes: List[ShardOutcome],
) -> Dict[str, LatencyAccumulator]:
    kinds = sorted({kind for o in outcomes for kind in o.accumulators})
    return {
        kind: LatencyAccumulator.merge(
            [o.accumulators[kind] for o in outcomes
             if kind in o.accumulators]
        )
        for kind in kinds
    }


class ShardedRunResult:
    """The merged result of a sharded soak — the streaming surface of
    :class:`~repro.scenarios.result.RunResult` (op counters, online
    verdict/refusal, accumulator-backed latency, server history,
    :meth:`summary`) plus the sharded extras: per-shard outcomes,
    CPU-time capacity, and per-shard peak RSS."""

    def __init__(self, spec: ScenarioSpec, outcomes: List[ShardOutcome],
                 worker_processes: int):
        self.spec = spec
        self.outcomes = sorted(outcomes, key=lambda o: o.index)
        self.n_shards = len(self.outcomes)
        #: Worker processes actually used (0 = serial in-process
        #: fallback under nested multiprocessing).
        self.worker_processes = worker_processes
        #: Parent wall seconds for the whole sharded execute phase.
        self.execute_seconds: Optional[float] = None
        self._online, self._online_refusal = _merge_online(self.outcomes)
        self._accumulators = _merge_accumulators(self.outcomes)

    # -- streaming surface (mirrors RunResult) --------------------------------

    @property
    def streamed(self) -> bool:
        return True

    def op_kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({k for o in self.outcomes for k in o.begun}))

    def ops_begun(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(sum(o.begun.values()) for o in self.outcomes)
        return sum(o.begun.get(kind, 0) for o in self.outcomes)

    def ops_completed(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(sum(o.completed.values()) for o in self.outcomes)
        return sum(o.completed.get(kind, 0) for o in self.outcomes)

    @property
    def online(self) -> Optional[OnlineReport]:
        return self._online

    @property
    def online_refusal(self) -> Optional[OnlineRefusal]:
        return self._online_refusal

    @property
    def server_history(self) -> Optional[Dict[str, Any]]:
        return _merge_server_history(self.outcomes)

    @property
    def blocked(self) -> Tuple[str, ...]:
        return tuple(
            f"shard{o.index}:{name}"
            for o in self.outcomes for name in o.blocked
        )

    @property
    def events_processed(self) -> int:
        return sum(o.events for o in self.outcomes)

    @property
    def messages(self) -> int:
        return sum(o.messages for o in self.outcomes)

    def latency(self, kind: str) -> LatencySummary:
        return self.latency_streaming(kind)

    def latency_streaming(self, kind: str) -> LatencySummary:
        return LatencySummary.from_accumulator(
            self._accumulators.get(kind), kind
        )

    # -- sharded extras -------------------------------------------------------

    @property
    def cpu_seconds(self) -> float:
        """Total worker CPU seconds across shards."""
        return sum(o.cpu_seconds for o in self.outcomes)

    @property
    def capacity_ops_per_sec(self) -> float:
        """Aggregate capacity: the sum over shards of that shard's
        completed ops per CPU second.  CPU time is immune to
        timesharing, so this measures what the shard fleet sustains
        with a core per shard even when the host has fewer cores."""
        return sum(
            sum(o.completed.values()) / o.cpu_seconds
            for o in self.outcomes if o.cpu_seconds > 0
        )

    @property
    def imbalance(self) -> float:
        """Shard-load imbalance: ``max / mean`` of per-shard completed
        ops.  ``1.0`` is perfectly balanced; ``shards`` is the
        everything-on-one-shard worst case.  Duration-bounded zipfian
        soaks surface the key→shard rule's quality here (budget-bounded
        runs split ``max_ops`` evenly by construction)."""
        counts = [sum(o.completed.values()) for o in self.outcomes]
        mean = sum(counts) / len(counts)
        if mean <= 0:
            return 1.0
        return max(counts) / mean

    @property
    def shard_rss_kb(self) -> Tuple[int, ...]:
        """Per-shard worker peak RSS (``ru_maxrss``, KiB on Linux)."""
        return tuple(o.peak_rss_kb for o in self.outcomes)

    @property
    def max_shard_rss_kb(self) -> int:
        return max(self.shard_rss_kb)

    def summary(self) -> Dict[str, Any]:
        """The portable digest, same shape as ``RunResult.summary()``
        plus the ``shards`` block."""
        out: Dict[str, Any] = {
            "operations": self.ops_begun(),
            "completed": self.ops_completed(),
            "blocked": len(self.blocked),
            "messages": self.messages,
            "kinds": {
                kind: {
                    "begun": self.ops_begun(kind),
                    "completed": self.ops_completed(kind),
                    "latency": self.latency_streaming(kind),
                }
                for kind in self.op_kinds()
            },
            "shards": {
                "count": self.n_shards,
                "workers": self.worker_processes,
                "cpu_seconds": round(self.cpu_seconds, 6),
                "capacity_ops_per_sec": round(
                    self.capacity_ops_per_sec, 2
                ),
                "imbalance": round(self.imbalance, 4),
                "max_shard_rss_kb": self.max_shard_rss_kb,
            },
        }
        online = self.online
        if online is not None:
            out["verdict"] = online.verdict
            out["verdict_source"] = "online-windowed"
            out["checker_mode"] = online.mode
            out["keys_checked"] = len(online.keys)
            out["violations"] = online.violation_count
        else:
            out["verdict_source"] = "unchecked"
            refusal = self.online_refusal
            if refusal is not None:
                out["online_refusal"] = refusal.reason
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedRunResult({self.spec.protocol!r}, "
            f"{self.n_shards} shards, {self.ops_completed()} completed)"
        )


def recommend_shards(result: ShardedRunResult) -> int:
    """The shard count this workload's observed CPU profile supports.

    The effective parallelism of the finished run — total worker CPU
    seconds over the slowest shard's CPU seconds, rounded — is how many
    evenly-loaded shards the same work would have kept busy.  A
    balanced fleet returns ``n_shards`` (keep or grow the count); a
    skewed one returns fewer (the slowest shard is the bottleneck, so
    extra shards mostly idle).  Pure arithmetic over
    :attr:`ShardOutcome.cpu_seconds` — no re-execution.
    """
    cpu = [o.cpu_seconds for o in result.outcomes]
    slowest = max(cpu, default=0.0)
    if slowest <= 0:
        return max(1, result.n_shards)
    return max(1, round(sum(cpu) / slowest))


# -- the executor -------------------------------------------------------------


def run_sharded(spec: ScenarioSpec,
                processes: Optional[int] = None) -> ShardedRunResult:
    """Execute a ``shards > 1`` spec across worker processes.

    Each shard runs its own simulator over the full seeded draw,
    filtered to its key shard; outcomes come home over shared-memory
    slots and merge order-independently.  Inside a daemonic pool worker
    (nested multiprocessing cannot fork) the shards run serially
    in-process instead — same outcomes, same merge.
    """
    if spec.shards < 2:
        raise ScenarioError(
            f"run_sharded needs shards >= 2, got {spec.shards}; "
            f"use run(spec) for single-process execution"
        )
    adapter_cls = get_protocol(spec.protocol)
    if getattr(adapter_cls, "kind", "") != "storage":
        raise ScenarioError(
            f"sharded execution partitions independent registers; "
            f"protocol {spec.protocol!r} is not a storage protocol"
        )
    start = time.perf_counter()
    if multiprocessing.current_process().daemon:
        outcomes = [_run_shard(spec, index) for index in range(spec.shards)]
        result = ShardedRunResult(spec, outcomes, worker_processes=0)
        result.execute_seconds = time.perf_counter() - start
        return result

    global _SHARD_SPEC, _SHARD_SLOTS
    workers = min(processes or spec.shards, spec.shards)
    block = SlotBlock.create(spec.shards, SHARD_SLOT_BYTES)
    payload = pickle.dumps(spec, pickle.HIGHEST_PROTOCOL)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    # Fork-started workers inherit these; the initializer covers spawn.
    _SHARD_SPEC, _SHARD_SLOTS = spec, block
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_shard_initialize,
            initargs=(payload, block.shm.name, spec.shards,
                      SHARD_SLOT_BYTES),
        ) as pool:
            collected: List[ShardOutcome] = []
            for index, inline in pool.imap_unordered(
                _shard_worker, range(spec.shards)
            ):
                if inline is not None:
                    collected.append(inline)
                    continue
                data = block.read(index)
                if data is None:  # pragma: no cover - worker died
                    raise ScenarioError(
                        f"shard {index} reported success but its result "
                        f"slot is empty"
                    )
                collected.append(pickle.loads(data))
    finally:
        _SHARD_SPEC, _SHARD_SLOTS = None, None
        block.destroy()
    result = ShardedRunResult(spec, collected, worker_processes=workers)
    result.execute_seconds = time.perf_counter() - start
    return result
