"""Declarative workload operations for scenario specifications.

A workload is a tuple of operation literals.  Clients obey the paper's
well-formedness rule — no client invokes an operation before its previous
one completed — so operations addressed to the same client are run
sequentially, each starting no earlier than its scheduled time.
Operations on distinct clients run concurrently.

* :class:`Write` / :class:`Read` — storage operations (single writer,
  readers addressed by index).
* :class:`Propose` — a consensus proposal by proposer index.
* :class:`Resync` — re-send the proposer's post-propose Sync (models a
  client retransmitting over lossy pre-GST channels).
* :class:`RandomMix` — a seeded random mix of writes and reads over a
  horizon (storage protocols); deterministic per scenario seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union


@dataclass(frozen=True)
class Write:
    """The writer writes ``value``, starting no earlier than ``at``."""

    at: float
    value: Any


@dataclass(frozen=True)
class Read:
    """Reader ``reader`` reads, starting no earlier than ``at``."""

    at: float
    reader: int = 0


@dataclass(frozen=True)
class Propose:
    """Proposer ``proposer`` proposes ``value`` at time ``at``."""

    at: float
    value: Any
    proposer: int = 0


@dataclass(frozen=True)
class Resync:
    """Proposer ``proposer`` re-sends Sync/DecisionPull at time ``at``."""

    at: float
    proposer: int = 0


@dataclass(frozen=True)
class RandomMix:
    """``writes`` writes and ``reads`` reads at seeded-random times in
    ``[start, start + horizon)``; write values are sequential integers,
    reads are spread round-robin over the readers."""

    writes: int
    reads: int
    horizon: float
    start: float = 0.0


WorkloadOp = Union[Write, Read, Propose, Resync, RandomMix]
Workload = Tuple[WorkloadOp, ...]


def expand_random_mix(
    mix: RandomMix, n_readers: int, seed: int, first_value: int = 1
) -> Tuple[List[Write], Dict[int, List[Read]]]:
    """Materialize a :class:`RandomMix` into concrete Write/Read ops.

    Mirrors the historical ``StorageSystem.random_workload`` draw order
    (writes first, then reads) so seeded schedules stay reproducible.
    """
    rng = random.Random(seed)
    write_times = sorted(
        mix.start + rng.uniform(0.0, mix.horizon) for _ in range(mix.writes)
    )
    writes = [
        Write(at=time, value=value)
        for value, time in enumerate(write_times, start=first_value)
    ]
    per_reader: Dict[int, List[Read]] = {}
    for index in range(mix.reads):
        reader = index % max(n_readers, 1)
        per_reader.setdefault(reader, []).append(
            Read(at=mix.start + rng.uniform(0.0, mix.horizon), reader=reader)
        )
    for reader, ops in per_reader.items():
        ops.sort(key=lambda op: op.at)
    return writes, per_reader
