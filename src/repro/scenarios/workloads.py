"""Declarative workload operations for scenario specifications.

A workload is a tuple of operation literals.  Clients obey the paper's
well-formedness rule — no client invokes an operation before its previous
one completed — so operations addressed to the same client are run
sequentially, each starting no earlier than its scheduled time.
Operations on distinct clients run concurrently.

* :class:`Write` / :class:`Read` — storage operations on one register of
  the keyed space (writers and readers addressed by index; the default
  key preserves the historical single-register literals).
* :class:`Propose` — a consensus proposal by proposer index.
* :class:`Resync` — re-send the proposer's post-propose Sync (models a
  client retransmitting over lossy pre-GST channels).
* :class:`RandomMix` — a seeded random mix of writes and reads over a
  horizon (storage protocols); deterministic per scenario seed.  Keys
  are drawn from a ``uniform`` or ``zipfian`` distribution over the
  spec's ``n_keys`` registers, and writes are spread round-robin over
  the spec's ``n_writers`` writer clients.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Any, Dict, Hashable, List, Tuple, Union

from repro.errors import ScenarioError
from repro.storage.history import DEFAULT_KEY

#: Valid ``RandomMix.distribution`` names.
KEY_DISTRIBUTIONS = ("uniform", "zipfian")


@dataclass(frozen=True)
class Write:
    """Writer ``writer`` writes ``value`` to register ``key``, starting
    no earlier than ``at``."""

    at: float
    value: Any
    key: Hashable = DEFAULT_KEY
    writer: int = 0


@dataclass(frozen=True)
class Read:
    """Reader ``reader`` reads register ``key``, starting no earlier
    than ``at``."""

    at: float
    reader: int = 0
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True)
class Propose:
    """Proposer ``proposer`` proposes ``value`` at time ``at``."""

    at: float
    value: Any
    proposer: int = 0


@dataclass(frozen=True)
class Resync:
    """Proposer ``proposer`` re-sends Sync/DecisionPull at time ``at``."""

    at: float
    proposer: int = 0


@dataclass(frozen=True)
class RandomMix:
    """``writes`` writes and ``reads`` reads at seeded-random times in
    ``[start, start + horizon)``; write values are sequential integers,
    reads are spread round-robin over the readers and writes round-robin
    over the writers.

    ``distribution`` picks each operation's register over the spec's
    ``n_keys``: ``"uniform"`` draws every key equally, ``"zipfian"``
    draws key ``k`` with weight ``1 / (k + 1) ** skew`` (key 0 hottest —
    the standard contention skew).  Single-key expansions draw no keys
    at all, so historical seeds reproduce the exact same schedules.
    """

    writes: int
    reads: int
    horizon: float
    start: float = 0.0
    distribution: str = "uniform"
    skew: float = 1.0

    def __post_init__(self):
        if self.distribution not in KEY_DISTRIBUTIONS:
            raise ScenarioError(
                f"unknown RandomMix distribution {self.distribution!r}; "
                f"valid: {', '.join(KEY_DISTRIBUTIONS)}"
            )


WorkloadOp = Union[Write, Read, Propose, Resync, RandomMix]
Workload = Tuple[WorkloadOp, ...]


def _draw_keys(
    rng: random.Random, mix: RandomMix, count: int, n_keys: int
) -> List[int]:
    """``count`` register keys from the mix's keyspace distribution."""
    if mix.distribution == "uniform":
        return [rng.randrange(n_keys) for _ in range(count)]
    weights = [1.0 / (k + 1) ** mix.skew for k in range(n_keys)]
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    return [
        bisect_right(cumulative, rng.random() * total) for _ in range(count)
    ]


def expand_random_mix(
    mix: RandomMix,
    n_readers: int,
    seed: int,
    first_value: int = 1,
    n_keys: int = 1,
    n_writers: int = 1,
) -> Tuple[List[Write], Dict[int, List[Read]]]:
    """Materialize a :class:`RandomMix` into concrete Write/Read ops.

    Mirrors the historical ``StorageSystem.random_workload`` draw order
    (write times first, then read times, then — only for multi-key
    expansions — write keys and read keys) so seeded single-key
    schedules stay bit-for-bit reproducible.  Writes carry their
    round-robin ``writer`` index; the returned reads are grouped per
    reader and sorted by start time.
    """
    if mix.reads > 0 and n_readers < 1:
        raise ScenarioError(
            f"RandomMix schedules {mix.reads} reads but the scenario has "
            f"no readers; set readers >= 1 (or reads=0)"
        )
    if n_keys < 1:
        raise ScenarioError(f"n_keys must be >= 1, got {n_keys}")
    if n_writers < 1:
        raise ScenarioError(f"n_writers must be >= 1, got {n_writers}")
    rng = random.Random(seed)
    write_times = sorted(
        mix.start + rng.uniform(0.0, mix.horizon) for _ in range(mix.writes)
    )
    read_slots: List[Tuple[int, float]] = []
    for index in range(mix.reads):
        reader = index % n_readers
        read_slots.append(
            (reader, mix.start + rng.uniform(0.0, mix.horizon))
        )
    # Key draws happen after every time draw, so single-key expansions
    # (which skip them) consume the identical random stream as the
    # pre-keyed code.
    if n_keys > 1:
        write_keys = _draw_keys(rng, mix, mix.writes, n_keys)
        read_keys = _draw_keys(rng, mix, mix.reads, n_keys)
    else:
        write_keys = [DEFAULT_KEY] * mix.writes
        read_keys = [DEFAULT_KEY] * mix.reads
    writes = [
        Write(at=time, value=value, key=write_keys[index],
              writer=index % n_writers)
        for index, (value, time) in enumerate(
            zip(range(first_value, first_value + mix.writes), write_times)
        )
    ]
    per_reader: Dict[int, List[Read]] = {}
    for index, (reader, time) in enumerate(read_slots):
        per_reader.setdefault(reader, []).append(
            Read(at=time, reader=reader, key=read_keys[index])
        )
    for reader, ops in per_reader.items():
        ops.sort(key=lambda op: op.at)
    return writes, per_reader
