"""Declarative workload operations for scenario specifications.

A workload is a tuple of operation literals.  Clients obey the paper's
well-formedness rule — no client invokes an operation before its previous
one completed — so operations addressed to the same client are run
sequentially, each starting no earlier than its scheduled time.
Operations on distinct clients run concurrently.

* :class:`Write` / :class:`Read` — storage operations on one register of
  the keyed space (writers and readers addressed by index; the default
  key preserves the historical single-register literals).
* :class:`Propose` — a consensus proposal by proposer index.
* :class:`Resync` — re-send the proposer's post-propose Sync (models a
  client retransmitting over lossy pre-GST channels).
* :class:`RandomMix` — a seeded random mix of writes and reads over a
  horizon (storage protocols); deterministic per scenario seed.  Keys
  are drawn from a ``uniform`` or ``zipfian`` distribution over the
  spec's ``n_keys`` registers, and writes are spread round-robin over
  the spec's ``n_writers`` writer clients.

A :class:`RandomMix` expands two ways:

* :func:`expand_random_mix` — the historical materializing path: full
  per-client op lists, used when the workload mixes literals.
* :meth:`RandomMix.stream` — an :class:`OpStream` of lazy per-client
  iterators drawing from the *same RNG consumption order*, so every
  existing seed produces a bit-identical schedule while clients never
  hold materialized op objects.

Horizon-free runs (``ScenarioSpec.duration`` / ``max_ops``) skip the
closed-loop draw entirely: :func:`open_loop_stream` gives each client an
independent seeded generator that draws inter-arrival gaps and keys one
operation at a time — O(1) state per client, unbounded op counts.

Sharded soaks (``ScenarioSpec.shards > 1``) filter at this level:
:func:`shard_assignment` maps every key of ``range(n_keys)`` to a shard
deterministically from the spec — uniform draws keep the historical
crc32 rule (:func:`key_shard`), zipfian draws balance *expected load*
with a greedy LPT bin-pack over exact Fraction weights so hot keys
spread across shards — and both stream paths accept a ``shard=(index,
count)`` view that consumes the identical RNG stream while yielding
only in-shard ops — the union of shard schedules is a fixed partition
of the unsharded draw.
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from itertools import accumulate
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple, Union

from repro.errors import ScenarioError
from repro.storage.history import DEFAULT_KEY

#: Valid ``RandomMix.distribution`` names.
KEY_DISTRIBUTIONS = ("uniform", "zipfian")


def key_shard(key: Hashable, shards: int, seed: int = 0) -> int:
    """Deterministic key → shard assignment for sharded soaks.

    A pure crc32 function of the scenario seed and the key's ``repr``
    (stable across Python versions and processes, like
    :func:`client_seed`), so the union of per-shard schedules is a
    fixed partition of the unsharded draw: every client generator
    consumes the *full* RNG stream and yields exactly the ops whose key
    lands in its shard.
    """
    if shards < 1:
        raise ScenarioError(f"shards must be >= 1, got {shards}")
    return zlib.crc32(f"shard:{seed}:{key!r}".encode()) % shards


def shard_assignment(
    n_keys: int,
    shards: int,
    seed: int = 0,
    distribution: str = "uniform",
    skew: float = 1.0,
) -> Tuple[int, ...]:
    """The deterministic key → shard table for a sharded soak.

    A pure function of ``(seed, n_keys, distribution, skew, shards)``
    that balances **expected load**, not key counts:

    * ``uniform`` — every key is drawn equally often, so the historical
      crc32 rule (:func:`key_shard`) already splits load evenly; the
      table is exactly that rule, keeping all pre-weighted sharded
      executions bit-identical.
    * ``zipfian`` — key ``k`` is drawn with weight ``1/(k+1)**skew``
      (the same base weights :class:`_KeyDrawer` samples from), so the
      hot keys are spread by a greedy LPT bin-pack: keys in descending
      weight order (crc32 tie-break, then key index) each go to the
      least-loaded shard, with shard loads accumulated as exact
      ``Fraction``s so the comparison never depends on float summation
      order.

    Either way the table only decides which shard *yields* an op —
    generators still consume the full RNG stream, so the union of the
    shard schedules stays a fixed partition of the unsharded draw.
    """
    if shards < 1:
        raise ScenarioError(f"shards must be >= 1, got {shards}")
    if n_keys < 1:
        raise ScenarioError(f"n_keys must be >= 1, got {n_keys}")
    if distribution != "zipfian" or n_keys == 1 or shards == 1:
        return tuple(key_shard(key, shards, seed) for key in range(n_keys))
    weights = [
        Fraction(1.0 / (key + 1) ** skew) for key in range(n_keys)
    ]
    order = sorted(
        range(n_keys),
        key=lambda key: (
            -weights[key],
            zlib.crc32(f"shard:{seed}:{key!r}".encode()),
            key,
        ),
    )
    loads = [Fraction(0)] * shards
    table = [0] * n_keys
    for key in order:
        target = min(range(shards), key=lambda s: (loads[s], s))
        table[key] = target
        loads[target] += weights[key]
    return tuple(table)


@dataclass(frozen=True)
class Write:
    """Writer ``writer`` writes ``value`` to register ``key``, starting
    no earlier than ``at``."""

    at: float
    value: Any
    key: Hashable = DEFAULT_KEY
    writer: int = 0


@dataclass(frozen=True)
class Read:
    """Reader ``reader`` reads register ``key``, starting no earlier
    than ``at``."""

    at: float
    reader: int = 0
    key: Hashable = DEFAULT_KEY


@dataclass(frozen=True)
class Propose:
    """Proposer ``proposer`` proposes ``value`` at time ``at``."""

    at: float
    value: Any
    proposer: int = 0


@dataclass(frozen=True)
class Resync:
    """Proposer ``proposer`` re-sends Sync/DecisionPull at time ``at``."""

    at: float
    proposer: int = 0


@dataclass(frozen=True)
class RandomMix:
    """``writes`` writes and ``reads`` reads at seeded-random times in
    ``[start, start + horizon)``; write values are sequential integers,
    reads are spread round-robin over the readers and writes round-robin
    over the writers.

    ``distribution`` picks each operation's register over the spec's
    ``n_keys``: ``"uniform"`` draws every key equally, ``"zipfian"``
    draws key ``k`` with weight ``1 / (k + 1) ** skew`` (key 0 hottest —
    the standard contention skew).  Single-key expansions draw no keys
    at all, so historical seeds reproduce the exact same schedules.

    ``batch_size`` makes storage clients coalesce up to that many
    pending operations into one batched round-trip (stamps still issued
    per batch element in the historical draw order); the default of 1
    is today's one-op-per-round-trip behavior, bit-identical to every
    existing seed.  ``batch_size="auto"`` sizes each client's window
    adaptively from its observed pending-op queue between round-trips
    (see :func:`repro.sim.tasks.batched_ops`) — a deterministic rule
    over simulated state, so replays stay bit-identical.  Batching is a
    storage feature: consensus adapters reject mixes carrying it, as
    does the materializing mixed-literal expansion path.
    """

    writes: int
    reads: int
    horizon: float
    start: float = 0.0
    distribution: str = "uniform"
    skew: float = 1.0
    batch_size: Union[int, str] = 1

    def __post_init__(self):
        if self.distribution not in KEY_DISTRIBUTIONS:
            raise ScenarioError(
                f"unknown RandomMix distribution {self.distribution!r}; "
                f"valid: {', '.join(KEY_DISTRIBUTIONS)}"
            )
        if self.batch_size != "auto" and (
            not isinstance(self.batch_size, int) or self.batch_size < 1
        ):
            raise ScenarioError(
                f"RandomMix.batch_size must be an int >= 1 or 'auto', got "
                f"{self.batch_size!r} (1 = unbatched round-trips)"
            )
        if self.skew < 0:
            raise ScenarioError(
                f"RandomMix.skew must be >= 0, got {self.skew} "
                f"(zipfian weight is 1 / (k + 1) ** skew; a negative "
                f"skew would invert the contention profile)"
            )

    def stream(
        self,
        n_readers: int,
        seed: int,
        first_value: int = 1,
        n_keys: int = 1,
        n_writers: int = 1,
        shard: Optional[Tuple[int, int]] = None,
    ) -> "OpStream":
        """Lazy per-client schedules, bit-identical to
        :func:`expand_random_mix` for the same arguments (same RNG
        consumption order, same round-robin client assignment).

        ``shard=(index, count)`` filters the *same* draw down to the
        ops whose key lands in shard ``index`` under :func:`key_shard`
        — times, values and keys are untouched, so shard streams union
        back to the unsharded schedule exactly."""
        return OpStream(
            self, n_readers, seed,
            first_value=first_value, n_keys=n_keys, n_writers=n_writers,
            shard=shard,
        )


WorkloadOp = Union[Write, Read, Propose, Resync, RandomMix]
Workload = Tuple[WorkloadOp, ...]


def _draw_keys(
    rng: random.Random, mix: RandomMix, count: int, n_keys: int
) -> List[int]:
    """``count`` register keys from the mix's keyspace distribution.

    Delegates to :class:`_KeyDrawer` — the single home of the
    uniform/zipfian draw, shared with the open-loop streams so closed-
    and open-loop runs of the same mix sample identical distributions.
    """
    drawer = _KeyDrawer(mix, n_keys)
    return [drawer.draw(rng) for _ in range(count)]


def _draw_schedule(
    mix: RandomMix, n_readers: int, seed: int, n_keys: int
) -> Tuple[List[float], List[Tuple[int, float]], List[int], List[int]]:
    """The seeded draw shared by list expansion and streaming.

    Returns ``(write_times, read_slots, write_keys, read_keys)`` in the
    historical ``StorageSystem.random_workload`` consumption order
    (write times first, then read times, then — only for multi-key
    expansions — write keys and read keys), so both consumers produce
    bit-for-bit the same schedules for any seed.
    """
    if mix.reads > 0 and n_readers < 1:
        raise ScenarioError(
            f"RandomMix schedules {mix.reads} reads but the scenario has "
            f"no readers; set readers >= 1 (or reads=0)"
        )
    if n_keys < 1:
        raise ScenarioError(f"n_keys must be >= 1, got {n_keys}")
    rng = random.Random(seed)
    write_times = sorted(
        mix.start + rng.uniform(0.0, mix.horizon) for _ in range(mix.writes)
    )
    read_slots: List[Tuple[int, float]] = []
    for index in range(mix.reads):
        reader = index % n_readers
        read_slots.append(
            (reader, mix.start + rng.uniform(0.0, mix.horizon))
        )
    # Key draws happen after every time draw, so single-key expansions
    # (which skip them) consume the identical random stream as the
    # pre-keyed code.
    if n_keys > 1:
        write_keys = _draw_keys(rng, mix, mix.writes, n_keys)
        read_keys = _draw_keys(rng, mix, mix.reads, n_keys)
    else:
        write_keys = [DEFAULT_KEY] * mix.writes
        read_keys = [DEFAULT_KEY] * mix.reads
    return write_times, read_slots, write_keys, read_keys


def expand_random_mix(
    mix: RandomMix,
    n_readers: int,
    seed: int,
    first_value: int = 1,
    n_keys: int = 1,
    n_writers: int = 1,
) -> Tuple[List[Write], Dict[int, List[Read]]]:
    """Materialize a :class:`RandomMix` into concrete Write/Read ops.

    Writes carry their round-robin ``writer`` index; the returned reads
    are grouped per reader and sorted by start time.  The draw itself is
    :func:`_draw_schedule`, shared with :meth:`RandomMix.stream` so the
    two paths cannot diverge.
    """
    if n_writers < 1:
        raise ScenarioError(f"n_writers must be >= 1, got {n_writers}")
    write_times, read_slots, write_keys, read_keys = _draw_schedule(
        mix, n_readers, seed, n_keys
    )
    writes = [
        Write(at=time, value=value, key=write_keys[index],
              writer=index % n_writers)
        for index, (value, time) in enumerate(
            zip(range(first_value, first_value + mix.writes), write_times)
        )
    ]
    per_reader: Dict[int, List[Read]] = {}
    for index, (reader, time) in enumerate(read_slots):
        per_reader.setdefault(reader, []).append(
            Read(at=time, reader=reader, key=read_keys[index])
        )
    for reader, ops in per_reader.items():
        ops.sort(key=lambda op: op.at)
    return writes, per_reader


class OpStream:
    """Lazy per-client views of one closed-loop :class:`RandomMix` draw.

    Holds the compact draw arrays (times, key indices) once and hands
    out generators — clients never see materialized :class:`Write` /
    :class:`Read` objects or per-client op lists.  The draw is delayed
    until the first client pulls, and shared by all of them.

    ``writer_ops(w)`` yields writer ``w``'s ``(at, value, key)`` triples
    in start-time order (the round-robin subset of the globally
    time-sorted writes); ``reader_ops(r)`` yields reader ``r``'s
    ``(at, key)`` pairs sorted by start time — both exactly the
    schedules :func:`expand_random_mix` materializes.
    """

    def __init__(
        self,
        mix: RandomMix,
        n_readers: int,
        seed: int,
        first_value: int = 1,
        n_keys: int = 1,
        n_writers: int = 1,
        shard: Optional[Tuple[int, int]] = None,
    ):
        if n_writers < 1:
            raise ScenarioError(f"n_writers must be >= 1, got {n_writers}")
        self.mix = mix
        self.n_readers = n_readers
        self.seed = seed
        self.first_value = first_value
        self.n_keys = n_keys
        self.n_writers = n_writers
        self.shard = shard
        self._draw = None
        self._shard_table: Optional[Tuple[int, ...]] = None

    def _in_shard(self, key: Hashable) -> bool:
        if self.shard is None:
            return True
        index, count = self.shard
        table = self._shard_table
        if table is None:
            table = self._shard_table = shard_assignment(
                self.n_keys, count, self.seed,
                self.mix.distribution, self.mix.skew,
            )
        if isinstance(key, int) and 0 <= key < len(table):
            return table[key] == index
        return key_shard(key, count, self.seed) == index

    def _schedule(self):
        if self._draw is None:
            self._draw = _draw_schedule(
                self.mix, self.n_readers, self.seed, self.n_keys
            )
        return self._draw

    @property
    def writers_with_ops(self) -> range:
        """Writer indices that receive at least one op (round-robin)."""
        return range(min(self.n_writers, self.mix.writes))

    @property
    def readers_with_ops(self) -> range:
        return range(min(self.n_readers, self.mix.reads))

    def writer_ops(self, writer: int) -> Iterator[Tuple[float, Any, Hashable]]:
        write_times, _, write_keys, _ = self._schedule()
        for index in range(writer, self.mix.writes, self.n_writers):
            if not self._in_shard(write_keys[index]):
                continue
            yield (
                write_times[index],
                self.first_value + index,
                write_keys[index],
            )

    def reader_ops(self, reader: int) -> Iterator[Tuple[float, Hashable]]:
        _, read_slots, _, read_keys = self._schedule()
        ops = [
            (time, read_keys[index])
            for index, (slot_reader, time) in enumerate(read_slots)
            if slot_reader == reader and self._in_shard(read_keys[index])
        ]
        ops.sort(key=lambda item: item[0])
        return iter(ops)

    def ops(self) -> Iterator[Union[Write, Read]]:
        """Every op as a literal (writes in time order, then each
        reader's time-sorted reads) — the equivalence-test view."""
        for writer in self.writers_with_ops:
            for at, value, key in self.writer_ops(writer):
                yield Write(at=at, value=value, key=key, writer=writer)
        for reader in self.readers_with_ops:
            for at, key in self.reader_ops(reader):
                yield Read(at=at, reader=reader, key=key)


# -- horizon-free (open-loop) streams -----------------------------------------

class OpBudget:
    """A shared countdown of operations still allowed to start.

    ``None`` means unlimited (the run is bounded by ``duration``
    instead).  Clients draw from the budget *as they generate* their
    next op, in simulated-event order, so allocation is deterministic.
    """

    __slots__ = ("remaining",)

    def __init__(self, max_ops: Optional[int]):
        self.remaining = max_ops

    def take(self) -> bool:
        if self.remaining is None:
            return True
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def client_seed(seed: int, role: str, index: int) -> int:
    """A deterministic per-client RNG seed for open-loop streams —
    a pure crc32 function of the scenario seed and the client identity
    (stable across Python versions and processes, like
    :func:`repro.scenarios.sweeps.derive_seed`)."""
    return zlib.crc32(f"stream:{seed}:{role}:{index}".encode()) & 0x7FFFFFFF


class _KeyDrawer:
    """Per-client register draws from the mix's keyspace distribution."""

    def __init__(self, mix: RandomMix, n_keys: int):
        self.n_keys = n_keys
        self.cumulative: Optional[List[float]] = None
        if n_keys > 1 and mix.distribution == "zipfian":
            weights = [1.0 / (k + 1) ** mix.skew for k in range(n_keys)]
            self.cumulative = list(accumulate(weights))

    def draw(self, rng: random.Random) -> Hashable:
        if self.n_keys <= 1:
            return DEFAULT_KEY
        if self.cumulative is None:
            return rng.randrange(self.n_keys)
        return bisect_right(
            self.cumulative, rng.random() * self.cumulative[-1]
        )


def open_loop_stream(
    mix: RandomMix,
    role: str,
    index: int,
    count: int,
    seed: int,
    budget: OpBudget,
    duration: Optional[float],
    n_keys: int = 1,
    first_value: int = 1,
    shard: Optional[Tuple[int, int]] = None,
) -> Iterator[Tuple]:
    """One client's unbounded lazy op sequence for a horizon-free run.

    ``role`` is ``"writer"`` or ``"reader"``; ``count`` is how many
    clients share that role.  Each client draws independent uniform
    inter-arrival gaps whose mean matches the closed-loop density of the
    mix (``horizon / ops`` spread over the role's clients), plus one
    register per op from the mix's keyspace distribution — O(1) state,
    no materialized schedule.  Writer values use the closed-loop
    round-robin encoding (``first_value + index + i * count``), so
    per-key value sequences stay monotone for the online checker.

    Generation stops when the shared :class:`OpBudget` is exhausted or
    the next start time would fall at/after ``duration``.  Yields
    ``(at, value, key)`` triples for writers and ``(at, key)`` pairs
    for readers — the same per-client shapes :class:`OpStream` hands
    out, so the adapter consumes both modes identically.

    ``shard=(index, count)`` makes this client a shard-local view of
    the *same* generator: the full gap/key RNG stream is consumed in
    the identical order (times, values and keys match the unsharded
    stream op for op, including the round-robin value serials of
    filtered-out ops), but only ops whose key lands in the shard under
    :func:`shard_assignment` are yielded — and only those draw from
    the shard's op budget.
    """
    per_role_ops = mix.writes if role == "writer" else mix.reads
    if per_role_ops <= 0:
        return
    rng = random.Random(client_seed(seed, role, index))
    keys = _KeyDrawer(mix, n_keys)
    table: Tuple[int, ...] = ()
    if shard is not None:
        table = shard_assignment(
            n_keys, shard[1], seed, mix.distribution, mix.skew
        )
    # Mean gap that reproduces the closed-loop op density per client.
    period = mix.horizon * count / per_role_ops
    at = mix.start
    serial = 0
    while True:
        at += rng.uniform(0.0, 2.0 * period)
        if duration is not None and at >= duration:
            return
        if shard is None:
            if not budget.take():
                return
            key = keys.draw(rng)
        else:
            key = keys.draw(rng)
            owner = (
                table[key]
                if isinstance(key, int) and 0 <= key < len(table)
                else key_shard(key, shard[1], seed)
            )
            if owner != shard[0]:
                serial += 1
                continue
            if not budget.take():
                return
        if role == "writer":
            yield at, first_value + index + serial * count, key
        else:
            yield at, key
        serial += 1
