"""The protocol registry: one id per runnable protocol.

Protocol adapters register themselves with :func:`register_protocol`;
``run(spec)`` resolves ``spec.protocol`` here.  Registering is cheap and
open — downstream code can plug in new protocols without touching the
scenario layer, which is how future workloads are meant to arrive.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

from repro.errors import ScenarioError, UnknownProtocolError

_PROTOCOLS: Dict[str, type] = {}


def register_protocol(protocol_id: str) -> Callable[[type], type]:
    """Class decorator registering a protocol adapter under ``protocol_id``.

    The class must provide ``build(spec) -> adapter`` (classmethod) and a
    ``kind`` attribute (``"storage"`` or ``"consensus"``).
    """

    def decorate(adapter_cls: type) -> type:
        if protocol_id in _PROTOCOLS:
            raise ScenarioError(
                f"protocol id {protocol_id!r} already registered "
                f"(by {_PROTOCOLS[protocol_id].__name__})"
            )
        if not hasattr(adapter_cls, "build"):
            raise ScenarioError(
                f"adapter {adapter_cls.__name__} has no build() classmethod"
            )
        adapter_cls.protocol_id = protocol_id
        _PROTOCOLS[protocol_id] = adapter_cls
        return adapter_cls

    return decorate


def get_protocol(protocol_id: str) -> type:
    try:
        return _PROTOCOLS[protocol_id]
    except KeyError:
        known = ", ".join(sorted(_PROTOCOLS)) or "(none registered)"
        raise UnknownProtocolError(
            f"unknown protocol {protocol_id!r}; registered: {known}"
        )


def available_protocols() -> Tuple[str, ...]:
    return tuple(sorted(_PROTOCOLS))
