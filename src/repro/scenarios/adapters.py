"""Protocol adapters: the bridge from a declarative spec to a wired system.

Each registered adapter knows how to build one protocol's deployment
(reusing the thin system facades in :mod:`repro.storage` and
:mod:`repro.consensus`), apply a :class:`~repro.scenarios.faults.FaultPlan`
to it, and schedule a declarative workload on it.  The scenario runner
only ever talks to the uniform adapter surface:

* ``build(spec)`` — wire processes, network rules and Byzantine roles;
* ``apply_faults(spec)`` — schedule every crash (clients included);
* ``schedule(spec)`` — translate workload literals into client drivers;
* ``execute(spec)`` — run to the horizon or to completion.

Crashes are applied before workload operations are scheduled, so a crash
and an operation at the same simulated instant resolve crash-first —
matching the hand-driven schedules the experiment modules used to build.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.strategy import Strategy, optimal_strategy, uniform_strategy
from repro.errors import ScenarioError
from repro.scenarios.faults import ACCEPTOR, PROPOSER, SERVER, ByzantineRole
from repro.scenarios.registry import register_protocol
from repro.scenarios.workloads import (
    OpBudget,
    Propose,
    RandomMix,
    Read,
    Resync,
    Write,
    expand_random_mix,
    open_loop_stream,
)
from repro.sim.tasks import batched_ops, sequential_ops
from repro.consensus.proposer import EquivocatingProposer
from repro.consensus.system import ConsensusSystem
from repro.consensus.paxos import PaxosSystem
from repro.consensus.pbft import PbftSystem, Request
from repro.storage.abd import AbdSystem
from repro.storage.fastabd import FastAbdSystem
from repro.storage.naive import NaiveSystem
from repro.storage.server import (
    FabricatingServer,
    ForgetfulServer,
    QuorumForgettingServer,
    SilentServer,
)
from repro.storage.system import StorageSystem


class ProtocolAdapter:
    """Uniform surface over one wired protocol deployment."""

    kind: str = ""            # "storage" | "consensus"
    protocol_id: str = ""     # set by register_protocol

    def __init__(self, system: Any):
        self.system = system

    # -- uniform access -------------------------------------------------------

    @property
    def sim(self):
        return self.system.sim

    @property
    def network(self):
        return self.system.network

    @property
    def trace(self):
        return self.system.trace

    def learner_pids(self) -> Tuple[Hashable, ...]:
        return ()

    def correct_learner_pids(self) -> Tuple[Hashable, ...]:
        return self.learner_pids()

    # -- lifecycle hooks ------------------------------------------------------

    @classmethod
    def build(cls, spec) -> "ProtocolAdapter":
        raise NotImplementedError

    def apply_faults(self, spec) -> None:
        """Schedule every crash in the plan (servers and clients alike)
        and the healing of finitely-windowed partitions."""
        for crash in spec.faults.crashes:
            try:
                process = self.network.process(crash.process)
            except KeyError:
                raise ScenarioError(
                    f"crash target {crash.process!r} is not a process of "
                    f"protocol {self.protocol_id!r}"
                )
            process.schedule_crash(crash.at)
        for partition in spec.faults.partitions:
            if partition.until < float("inf"):
                self.sim.call_at(
                    partition.until,
                    lambda p=partition: self.network.release_held(
                        p.crossed_by
                    ),
                )

    def schedule(self, spec) -> None:
        raise NotImplementedError

    def execute(self, spec) -> None:
        max_events = self._event_budget(spec)
        if spec.horizon is None:
            self.sim.run_to_completion(
                strict=spec.strict, max_events=max_events
            )
        else:
            self.sim.run(until=spec.horizon, max_events=max_events)

    @staticmethod
    def _event_budget(spec) -> int:
        """The livelock guard, scaled for horizon-free soaks.

        The simulator's default 1M-event cap is a guard against genuine
        livelock, but a million-op open-loop run legitimately processes
        tens of millions of events; scale the cap with the op budget
        (``spec.params["max_events"]`` overrides it outright)."""
        override = spec.param("max_events")
        if override is not None:
            return int(override)
        budget = 1_000_000
        if spec.max_ops is not None:
            budget = max(budget, spec.max_ops * 100)
        if spec.duration is not None:
            for op in spec.workload:
                if isinstance(op, RandomMix) and op.horizon > 0:
                    rate = (op.writes + op.reads) / op.horizon
                    budget = max(
                        budget,
                        int(spec.duration * rate * 100) + 1_000_000,
                    )
        return budget

    # -- shared helpers -------------------------------------------------------

    def _sequential_ops(
        self,
        schedule: List[Tuple[float, Callable[..., Any], tuple]],
    ):
        """One client's operations back to back (shared driver; the
        paper's well-formedness rule)."""
        return sequential_ops(self.sim, schedule)


def _unsupported_roles(adapter: ProtocolAdapter, spec) -> None:
    if spec.faults.byzantine:
        raise ScenarioError(
            f"protocol {adapter.protocol_id!r} does not support "
            f"Byzantine role assignments"
        )


def _unsupported_strategy(adapter: ProtocolAdapter, spec) -> None:
    if spec.quorum_strategy is not None:
        raise ScenarioError(
            f"protocol {adapter.protocol_id!r} does not support the "
            f"quorum_strategy knob; only rqs-storage does"
        )


def _workload_read_fraction(spec) -> Fraction:
    """The spec's read mix as an exact fraction (for ``"optimal"``).

    Counts reads and writes across the workload literals; a workload
    with no countable operations defaults to a balanced 1/2.
    """
    reads = writes = 0
    for op in spec.workload:
        if isinstance(op, RandomMix):
            reads += op.reads
            writes += op.writes
        elif isinstance(op, Read):
            reads += 1
        elif isinstance(op, Write):
            writes += 1
    total = reads + writes
    return Fraction(reads, total) if total else Fraction(1, 2)


def _resolve_strategy(spec, rqs) -> Optional[Strategy]:
    """Resolve ``spec.quorum_strategy`` against the resolved RQS.

    The distributions range over the RQS's (single) quorum family —
    read operations draw from the strategy's read distribution, write
    operations from its write distribution.  Per-node capacities are
    taken from the RQS when it carries them (the expression lift's
    :class:`~repro.core.algebra.CapacitatedRqs`), else unit.
    """
    choice = spec.quorum_strategy
    if choice is None:
        return None
    family = rqs.quorums
    if isinstance(choice, Strategy):
        stray = [q for q in choice.quorums() if q not in family]
        if stray:
            raise ScenarioError(
                f"quorum_strategy puts weight on "
                f"{sorted(stray[0], key=repr)}, which is not a quorum of "
                f"the spec's RQS"
            )
        return choice
    read_caps = getattr(rqs, "read_capacity", None) or None
    write_caps = getattr(rqs, "write_capacity", None) or None
    fr = _workload_read_fraction(spec)
    build = uniform_strategy if choice == "uniform" else optimal_strategy
    return build(family, family, read_fraction=fr,
                 read_capacity=read_caps, write_capacity=write_caps)


# -- storage ------------------------------------------------------------------

_STORAGE_BEHAVIORS = ("silent", "fabricating", "forgetful", "forget-qc2-ids")


def _storage_server_factory(role: ByzantineRole) -> Callable[[Hashable], Any]:
    if role.factory is not None:
        return role.factory
    if role.behavior == "silent":
        return SilentServer
    if role.behavior == "fabricating":
        try:
            ts, value = role.params["ts"], role.params["value"]
        except KeyError as missing:
            raise ScenarioError(
                f"fabricating role for {role.process!r} needs "
                f"params={{'ts': ..., 'value': ...}}; missing {missing}"
            )
        return lambda pid: FabricatingServer(pid, ts, value)
    if role.behavior == "forgetful":
        state = role.params.get("state")
        return lambda pid, at=role.at: ForgetfulServer(pid, at, state)
    if role.behavior == "forget-qc2-ids":
        return lambda pid, at=role.at: QuorumForgettingServer(pid, at)
    raise ScenarioError(
        f"unknown storage Byzantine behavior {role.behavior!r}; "
        f"built-ins: {', '.join(_STORAGE_BEHAVIORS)} (or pass factory=...)"
    )


class StorageAdapter(ProtocolAdapter):
    """Shared scheduling for every read/write register protocol.

    Workload ops address a keyed register space: each op carries its
    ``key`` and (for writes) its ``writer`` index.  One sequential
    client task is spawned per addressed writer and per addressed
    reader (the paper's well-formedness rule, per client); all client
    tasks block on indexed Conditions inside the protocol coroutines,
    never on ad-hoc closures.

    Scheduling is **streaming-first**: a pure single-``RandomMix``
    workload hands each client a lazy iterator over the mix's draw
    (closed loop, bit-identical to list expansion), and a spec with an
    open-loop stopping rule (``duration``/``max_ops``) hands each
    client an unbounded per-client generator — no materialized op
    lists in either case.  Only workloads mixing explicit literals
    still expand eagerly.
    """

    kind = "storage"

    @staticmethod
    def _shard_of(spec) -> Optional[Tuple[int, int]]:
        """The ``(index, count)`` shard view a per-shard worker spec
        carries in its params (set by ``run_sharded``); None for
        ordinary unsharded runs."""
        count = spec.param("shard_count")
        if count is None:
            return None
        return (int(spec.param("shard_index", 0)), int(count))

    def schedule(self, spec) -> None:
        workload = spec.workload
        if spec.duration is not None or spec.max_ops is not None:
            if len(workload) != 1 or not isinstance(workload[0], RandomMix):
                raise ScenarioError(
                    "open-loop runs (duration/max_ops) take exactly one "
                    "RandomMix workload literal, whose counts set the "
                    f"write:read ratio; got {workload!r}"
                )
            self._schedule_open_loop(spec, workload[0])
            return
        if len(workload) == 1 and isinstance(workload[0], RandomMix):
            self._schedule_stream(spec, workload[0])
            return
        self._schedule_expanded(spec)

    @staticmethod
    def _write_schedule(ops, write):
        """``(at, value, key)`` triples -> sequential_ops schedule.

        A real generator function (not a genexp over a loop variable)
        so the bound client method stays fixed however late items are
        pulled."""
        for at, value, key in ops:
            yield (at, write, (value, key))

    @staticmethod
    def _read_schedule(ops, read):
        for at, key in ops:
            yield (at, read, (key,))

    @staticmethod
    def _write_batch_schedule(ops):
        """``(at, value, key)`` triples -> ``(at, (value, key))`` batch
        elements for :func:`batched_ops`."""
        for at, value, key in ops:
            yield (at, (value, key))

    @staticmethod
    def _read_batch_schedule(ops):
        for at, key in ops:
            yield (at, key)

    def _spawn_writer(self, index, writer, mix, ops) -> None:
        """One writer's driver task: unbatched sequential ops, or the
        batched coalescing driver when ``mix.batch_size != 1`` (a fixed
        window or the adaptive ``"auto"`` rule)."""
        name = (
            "writer-workload" if index == 0 else f"{writer.pid}-workload"
        )
        if mix.batch_size != 1:
            coro = batched_ops(
                self.sim, self._write_batch_schedule(ops),
                mix.batch_size, writer.write_batch,
            )
        else:
            coro = self._sequential_ops(
                self._write_schedule(ops, writer.write)
            )
        self.sim.spawn(coro, name)

    def _spawn_reader(self, reader, mix, ops) -> None:
        if mix.batch_size != 1:
            coro = batched_ops(
                self.sim, self._read_batch_schedule(ops),
                mix.batch_size, reader.read_batch,
            )
        else:
            coro = self._sequential_ops(self._read_schedule(ops, reader.read))
        self.sim.spawn(coro, f"{reader.pid}-workload")

    def _schedule_stream(self, spec, mix: RandomMix) -> None:
        """Closed-loop streaming: per-client lazy views of the seeded
        draw — the same schedules ``expand_random_mix`` materializes,
        without building per-client op lists."""
        if mix.reads > 0 and len(self.system.readers) < 1:
            raise ScenarioError(
                f"RandomMix schedules {mix.reads} reads but the scenario "
                f"has no readers; set readers >= 1 (or reads=0)"
            )
        stream = mix.stream(
            len(self.system.readers), spec.seed,
            n_keys=spec.n_keys, n_writers=len(self.system.writers),
            shard=self._shard_of(spec),
        )
        for index in stream.writers_with_ops:
            self._spawn_writer(
                index, self.system.writers[index], mix,
                stream.writer_ops(index),
            )
        for index in stream.readers_with_ops:
            self._spawn_reader(
                self.system.readers[index], mix, stream.reader_ops(index)
            )

    def _schedule_open_loop(self, spec, mix: RandomMix) -> None:
        """Horizon-free streaming: every client draws its next op
        lazily from an independent seeded generator, stopping on the
        shared op budget or the duration bound."""
        if mix.reads > 0 and len(self.system.readers) < 1:
            raise ScenarioError(
                f"RandomMix schedules reads (ratio {mix.writes}:"
                f"{mix.reads}) but the scenario has no readers; set "
                f"readers >= 1 (or reads=0)"
            )
        budget = OpBudget(spec.max_ops)
        shard = self._shard_of(spec)
        writers = self.system.writers if mix.writes > 0 else []
        readers = self.system.readers if mix.reads > 0 else []
        for index, writer in enumerate(writers):
            ops = open_loop_stream(
                mix, "writer", index, len(writers), spec.seed, budget,
                spec.duration, n_keys=spec.n_keys, shard=shard,
            )
            self._spawn_writer(index, writer, mix, ops)
        for index, reader in enumerate(readers):
            ops = open_loop_stream(
                mix, "reader", index, len(readers), spec.seed, budget,
                spec.duration, n_keys=spec.n_keys, shard=shard,
            )
            self._spawn_reader(reader, mix, ops)

    def _schedule_expanded(self, spec) -> None:
        """The materializing path for workloads mixing explicit
        literals with random mixes."""
        per_writer: Dict[int, List[Tuple[float, Any, Hashable]]] = {}
        per_reader: Dict[int, List[Tuple[float, Hashable]]] = {}
        next_value = 1
        for op in spec.workload:
            if isinstance(op, Write):
                if not 0 <= op.writer < len(self.system.writers):
                    raise ScenarioError(
                        f"workload writes via writer {op.writer} but the "
                        f"spec only has {len(self.system.writers)} writers "
                        f"(n_writers)"
                    )
                per_writer.setdefault(op.writer, []).append(
                    (op.at, op.value, op.key)
                )
                if isinstance(op.value, int):
                    next_value = max(next_value, op.value + 1)
            elif isinstance(op, Read):
                per_reader.setdefault(op.reader, []).append((op.at, op.key))
            elif isinstance(op, RandomMix):
                if op.batch_size != 1:
                    raise ScenarioError(
                        f"batch_size={op.batch_size!r} requires a pure "
                        "single-RandomMix workload (the streaming paths); "
                        "it cannot ride along in a mixed-literal expansion"
                    )
                writes, reads = expand_random_mix(
                    op, len(self.system.readers), spec.seed,
                    first_value=next_value,
                    n_keys=spec.n_keys,
                    n_writers=len(self.system.writers),
                )
                next_value += op.writes
                for w in writes:
                    per_writer.setdefault(w.writer, []).append(
                        (w.at, w.value, w.key)
                    )
                for reader, ops in reads.items():
                    per_reader.setdefault(reader, []).extend(
                        (r.at, r.key) for r in ops
                    )
            else:
                raise ScenarioError(
                    f"storage protocol {self.protocol_id!r} cannot run "
                    f"workload op {op!r}"
                )
        for index in sorted(per_writer):
            writer = self.system.writers[index]
            ops = sorted(per_writer[index], key=lambda item: item[0])
            self.sim.spawn(
                self._sequential_ops(
                    [(at, writer.write, (value, key))
                     for at, value, key in ops]
                ),
                "writer-workload" if index == 0
                else f"{writer.pid}-workload",
            )
        for index in sorted(per_reader):
            try:
                reader = self.system.readers[index]
            except IndexError:
                raise ScenarioError(
                    f"workload reads from reader {index} but the spec "
                    f"only has {len(self.system.readers)} readers"
                )
            ops = sorted(per_reader[index], key=lambda item: item[0])
            self.sim.spawn(
                self._sequential_ops(
                    [(at, reader.read, (key,)) for at, key in ops]
                ),
                f"{reader.pid}-workload",
            )


@register_protocol("rqs-storage")
class RqsStorageAdapter(StorageAdapter):
    """The paper's Byzantine atomic storage (Figures 5-7) over any RQS."""

    @classmethod
    def build(cls, spec) -> "RqsStorageAdapter":
        rqs = spec.resolved_rqs()
        if rqs is None:
            raise ScenarioError("rqs-storage requires a quorum system")
        capacity_model = bool(spec.param("capacity_model", False))
        if capacity_model and not getattr(rqs, "read_capacity", None):
            raise ScenarioError(
                "capacity_model requires an RQS with per-node capacities "
                "(lift one from a quorum expression, e.g. rqs='grid-hetero')"
            )
        factories = {
            role.process: _storage_server_factory(role)
            for role in spec.faults.byzantine_for(SERVER)
        }
        system = StorageSystem(
            rqs,
            n_readers=spec.readers,
            delta=spec.delta,
            server_factories=factories,
            rules=spec.faults.rules(),
            trace_level=spec.trace_level,
            n_writers=spec.n_writers,
            n_keys=spec.n_keys,
            strategy=_resolve_strategy(spec, rqs),
            strategy_seed=spec.seed,
            capacity_model=capacity_model,
            bounded_history=bool(spec.param("bounded_history", False)),
        )
        return cls(system)


@register_protocol("abd")
class AbdAdapter(StorageAdapter):
    """Classic ABD baseline (crash model, 2-round reads)."""

    @classmethod
    def build(cls, spec) -> "AbdAdapter":
        system = AbdSystem(
            n=spec.param("n", 5),
            n_readers=spec.readers,
            delta=spec.delta,
            rules=spec.faults.rules(),
            trace_level=spec.trace_level,
            n_writers=spec.n_writers,
        )
        adapter = cls(system)
        _unsupported_roles(adapter, spec)
        _unsupported_strategy(adapter, spec)
        return adapter


@register_protocol("fastabd")
class FastAbdAdapter(StorageAdapter):
    """The Section 1.2 fast-ABD variant (4-of-5 fast quorums)."""

    @classmethod
    def build(cls, spec) -> "FastAbdAdapter":
        system = FastAbdSystem(
            n=spec.param("n", 5),
            t=spec.param("t", 2),
            fast=spec.param("fast", 4),
            n_readers=spec.readers,
            delta=spec.delta,
            rules=spec.faults.rules(),
            trace_level=spec.trace_level,
            n_writers=spec.n_writers,
        )
        adapter = cls(system)
        _unsupported_roles(adapter, spec)
        _unsupported_strategy(adapter, spec)
        return adapter


@register_protocol("naive")
class NaiveAdapter(StorageAdapter):
    """The broken greedy 3-of-5 algorithm of Figure 1 (counterexamples)."""

    @classmethod
    def build(cls, spec) -> "NaiveAdapter":
        system = NaiveSystem(
            n=spec.param("n", 5),
            t=spec.param("t", 2),
            n_readers=spec.readers,
            delta=spec.delta,
            rules=spec.faults.rules(),
            trace_level=spec.trace_level,
            n_writers=spec.n_writers,
        )
        adapter = cls(system)
        _unsupported_roles(adapter, spec)
        _unsupported_strategy(adapter, spec)
        return adapter


# -- consensus ----------------------------------------------------------------

class ConsensusAdapter(ProtocolAdapter):
    """Shared scheduling for proposer/acceptor/learner protocols."""

    kind = "consensus"

    def learner_pids(self) -> Tuple[Hashable, ...]:
        return tuple(learner.pid for learner in self.system.learners)

    def correct_learner_pids(self) -> Tuple[Hashable, ...]:
        crashed = {c.process for c in getattr(self, "_spec_crashes", ())}
        return tuple(
            pid for pid in self.learner_pids() if pid not in crashed
        )

    def apply_faults(self, spec) -> None:
        self._spec_crashes = spec.faults.crashes
        super().apply_faults(spec)

    def schedule(self, spec) -> None:
        if spec.duration is not None or spec.max_ops is not None:
            raise ScenarioError(
                f"protocol {self.protocol_id!r} does not support the "
                f"open-loop stopping rule (duration/max_ops); streaming "
                f"workloads are a storage feature"
            )
        for op in spec.workload:
            if isinstance(op, Propose):
                self._schedule_propose(op)
            elif isinstance(op, Resync):
                self._schedule_resync(op)
            elif isinstance(op, RandomMix) and op.batch_size != 1:
                raise ScenarioError(
                    f"consensus protocol {self.protocol_id!r} does not "
                    f"support the batch_size knob (got "
                    f"batch_size={op.batch_size!r}); operation batching "
                    f"is a storage feature"
                )
            else:
                raise ScenarioError(
                    f"consensus protocol {self.protocol_id!r} cannot run "
                    f"workload op {op!r}"
                )

    def _proposer(self, index: int):
        try:
            return self.system.proposers[index]
        except IndexError:
            raise ScenarioError(
                f"workload addresses proposer {index} but the spec only "
                f"has {len(self.system.proposers)} proposers"
            )

    def _schedule_propose(self, op: Propose) -> None:
        proposer = self._proposer(op.proposer)

        def start() -> None:
            self.sim.spawn(
                proposer.propose(op.value),
                f"{proposer.pid}.propose({op.value!r})",
            )

        self.sim.call_at(op.at, start)

    def _schedule_resync(self, op: Resync) -> None:
        proposer = self._proposer(op.proposer)
        self.sim.call_at(op.at, proposer.resync)


@register_protocol("rqs-consensus")
class RqsConsensusAdapter(ConsensusAdapter):
    """The paper's RQS-based Byzantine consensus (Figures 9-15)."""

    @classmethod
    def build(cls, spec) -> "RqsConsensusAdapter":
        _unsupported_strategy(cls, spec)
        rqs = spec.resolved_rqs()
        if rqs is None:
            raise ScenarioError("rqs-consensus requires a quorum system")
        acceptor_factories: Dict[Hashable, Any] = {}
        for role in spec.faults.byzantine_for(ACCEPTOR):
            if role.factory is None:
                raise ScenarioError(
                    f"acceptor Byzantine role {role.behavior!r} has no "
                    f"built-in; pass factory=... (an Acceptor subclass)"
                )
            acceptor_factories[role.process] = role.factory
        proposer_factories: Dict[int, Any] = {}
        for role in spec.faults.byzantine_for(PROPOSER):
            if role.factory is not None:
                proposer_factories[role.process] = role.factory
            elif role.behavior == "equivocating":
                proposer_factories[role.process] = EquivocatingProposer
            else:
                raise ScenarioError(
                    f"unknown proposer Byzantine behavior "
                    f"{role.behavior!r}; built-ins: equivocating"
                )
        system = ConsensusSystem(
            rqs,
            n_proposers=spec.proposers,
            n_learners=spec.learners,
            delta=spec.delta,
            acceptor_factories=acceptor_factories,
            proposer_factories=proposer_factories,
            rules=spec.faults.rules(),
            sync_delay=spec.param("sync_delay", 10.0),
            trace_level=spec.trace_level,
        )
        for index, value in dict(
            spec.param("proposer_values", {})
        ).items():
            system.proposers[index].value = value
        return cls(system)


@register_protocol("paxos")
class PaxosAdapter(ConsensusAdapter):
    """Single-decree crash Paxos baseline."""

    @classmethod
    def build(cls, spec) -> "PaxosAdapter":
        system = PaxosSystem(
            n_acceptors=spec.param("n_acceptors", 5),
            n_proposers=spec.proposers,
            n_learners=spec.learners,
            delta=spec.delta,
            rules=spec.faults.rules(),
            trace_level=spec.trace_level,
        )
        adapter = cls(system)
        _unsupported_roles(adapter, spec)
        _unsupported_strategy(adapter, spec)
        return adapter


@register_protocol("pbft")
class PbftAdapter(ConsensusAdapter):
    """PBFT-lite baseline (fault-free normal case, fixed primary)."""

    @classmethod
    def build(cls, spec) -> "PbftAdapter":
        system = PbftSystem(
            f=spec.param("f", 1),
            n_learners=spec.learners,
            delta=spec.delta,
            rules=spec.faults.rules(),
            trace_level=spec.trace_level,
        )
        adapter = cls(system)
        _unsupported_roles(adapter, spec)
        _unsupported_strategy(adapter, spec)
        return adapter

    def _schedule_propose(self, op: Propose) -> None:
        # PBFT has no proposer processes: the client's request to the
        # primary plays the propose role; record it for latency origin.
        system = self.system
        primary = min(system.replicas)

        def start() -> None:
            record = self.trace.begin(
                "propose", system.client.pid, self.sim.now, op.value
            )
            system.client.send(primary, Request(op.value))
            self.trace.complete(record, self.sim.now, "requested")

        self.sim.call_at(op.at, start)

    def _schedule_resync(self, op: Resync) -> None:
        raise ScenarioError("pbft has no resync operation")
