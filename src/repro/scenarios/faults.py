"""Composable fault schedules for scenario specifications.

A :class:`FaultPlan` declares *everything the adversary does* in one
execution: crash times, Byzantine role assignments, network partitions
and asynchrony rules (message holds / drops / extra delays, including
the pre-GST lossy-channel regime of the consensus model).  Each
ingredient is a small frozen dataclass, so plans compose by tuple
concatenation and print as readable literals.

The plan is purely declarative: adapters in
:mod:`repro.scenarios.adapters` translate it into network
:class:`~repro.sim.network.Rule` objects, ``schedule_crash`` calls and
Byzantine process factories when the system is wired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.sim.network import Rule, delay_rule, drop_rule, hold_rule

ProcessId = Hashable


@dataclass(frozen=True)
class Crash:
    """Process ``process`` crashes at absolute simulated time ``at``.

    The target may be a server/acceptor id or a client id such as
    ``"writer"``, ``"reader1"`` or ``"p2"`` — anything registered on the
    network.
    """

    process: ProcessId
    at: float = 0.0


#: Role selectors for :class:`ByzantineRole`.
SERVER = "server"
ACCEPTOR = "acceptor"
PROPOSER = "proposer"


@dataclass(frozen=True)
class ByzantineRole:
    """Assign a Byzantine behaviour to one process.

    ``behavior`` names a built-in strategy (resolved by the protocol
    adapter; storage servers support ``"silent"``, ``"fabricating"``,
    ``"forgetful"`` and ``"forget-qc2-ids"``, consensus proposers support
    ``"equivocating"``) or a custom ``factory`` may be given — a callable
    with the same signature as the protocol's benign process factory.
    ``at`` is the trigger time for time-activated behaviours; ``params``
    carries behaviour-specific arguments (e.g. the fabricated timestamp).
    ``role`` disambiguates targets whose id spaces overlap: storage
    servers (default), consensus acceptors, or consensus proposers
    (addressed by index).
    """

    process: ProcessId
    behavior: str = ""
    role: str = SERVER
    at: float = 0.0
    factory: Optional[Callable[..., Any]] = None
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Partition:
    """Hold every message crossing between two process groups.

    Messages inside a group are unaffected.  Active for send times in
    ``[after, until)``; the default window is forever.
    """

    left: FrozenSet[ProcessId]
    right: FrozenSet[ProcessId]
    after: float = float("-inf")
    until: float = float("inf")
    label: str = "partition"

    def to_rules(self) -> List[Rule]:
        left, right = frozenset(self.left), frozenset(self.right)
        return [
            hold_rule(src=left, dst=right, after=self.after,
                      until=self.until, label=self.label),
            hold_rule(src=right, dst=left, after=self.after,
                      until=self.until, label=self.label),
        ]

    def crossed_by(self, message: Any) -> bool:
        """Whether ``message`` was held by this partition (for healing:
        messages sent during the window are delivered when it ends,
        realizing the "received by GST" half of the paper's model)."""
        crosses = (
            (message.src in self.left and message.dst in self.right)
            or (message.src in self.right and message.dst in self.left)
        )
        return crosses and self.after <= message.send_time < self.until


@dataclass(frozen=True)
class Hold:
    """Keep matching messages in transit forever (asynchrony device)."""

    src: Optional[Tuple[ProcessId, ...]] = None
    dst: Optional[Tuple[ProcessId, ...]] = None
    after: float = float("-inf")
    until: float = float("inf")
    payload: Optional[Callable[[Any], bool]] = None
    label: str = ""

    def to_rule(self) -> Rule:
        return hold_rule(
            src=self.src, dst=self.dst, after=self.after, until=self.until,
            payload_predicate=self.payload, label=self.label,
        )


@dataclass(frozen=True)
class Drop:
    """Lose matching messages (the consensus model's lossy channels)."""

    src: Optional[Tuple[ProcessId, ...]] = None
    dst: Optional[Tuple[ProcessId, ...]] = None
    after: float = float("-inf")
    until: float = float("inf")
    payload: Optional[Callable[[Any], bool]] = None
    label: str = ""

    def to_rule(self) -> Rule:
        return drop_rule(
            src=self.src, dst=self.dst, after=self.after, until=self.until,
            payload_predicate=self.payload, label=self.label,
        )


@dataclass(frozen=True)
class Delay:
    """Deliver matching messages after a fixed ``delay`` instead of Δ."""

    delay: float
    src: Optional[Tuple[ProcessId, ...]] = None
    dst: Optional[Tuple[ProcessId, ...]] = None
    after: float = float("-inf")
    until: float = float("inf")
    payload: Optional[Callable[[Any], bool]] = None
    label: str = ""

    def to_rule(self) -> Rule:
        return delay_rule(
            self.delay,
            src=self.src, dst=self.dst, after=self.after, until=self.until,
            payload_predicate=self.payload, label=self.label,
        )


AsynchronyRule = Union[Hold, Drop, Delay]


@dataclass(frozen=True)
class PayloadIs:
    """A picklable payload predicate matching one message type.

    Equivalent to ``lambda p: isinstance(p, message_type)`` but, being a
    frozen dataclass over an importable class, survives pickling — use
    it in fault plans that must cross to multiprocessing sweep workers.
    """

    message_type: type

    def __call__(self, payload: Any) -> bool:
        return isinstance(payload, self.message_type)


def payload_is(message_type: type) -> PayloadIs:
    """A picklable ``isinstance`` payload predicate for Hold/Drop/Delay."""
    return PayloadIs(message_type)


def lossy_until_gst(gst: float, label: str = "lossy until GST") -> Drop:
    """The eventual-synchrony regime: every message sent before ``gst``
    is lost; after GST the network is synchronous (default Δ)."""
    return Drop(until=gst, label=label)


def crashes(schedule: Mapping[ProcessId, float]) -> Tuple[Crash, ...]:
    """Crash objects from a ``{process: time}`` mapping (sorted by id)."""
    return tuple(
        Crash(pid, at)
        for pid, at in sorted(schedule.items(), key=lambda kv: repr(kv[0]))
    )


@dataclass(frozen=True)
class FaultPlan:
    """Everything the adversary does in one execution."""

    crashes: Tuple[Crash, ...] = ()
    byzantine: Tuple[ByzantineRole, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    asynchrony: Tuple[AsynchronyRule, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "byzantine", tuple(self.byzantine))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "asynchrony", tuple(self.asynchrony))

    def rules(self) -> List[Rule]:
        """The network rules realizing partitions and asynchrony."""
        rules: List[Rule] = []
        for partition in self.partitions:
            rules.extend(partition.to_rules())
        for schedule in self.asynchrony:
            rules.append(schedule.to_rule())
        return rules

    def byzantine_for(self, role: str) -> Tuple[ByzantineRole, ...]:
        return tuple(b for b in self.byzantine if b.role == role)

    @property
    def byzantine_ids(self) -> FrozenSet[ProcessId]:
        return frozenset(b.process for b in self.byzantine)

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """A plan combining this plan's faults with ``other``'s."""
        return FaultPlan(
            crashes=self.crashes + other.crashes,
            byzantine=self.byzantine + other.byzantine,
            partitions=self.partitions + other.partitions,
            asynchrony=self.asynchrony + other.asynchrony,
        )
