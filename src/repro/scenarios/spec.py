"""The declarative scenario specification.

A :class:`ScenarioSpec` is a frozen literal describing one complete
execution: which protocol runs, over which refined quorum system (an
:class:`~repro.core.rqs.RefinedQuorumSystem` instance or a registered
name), how many clients participate, the synchrony bound Δ, the fault
plan, the workload, the seed, and how long to run.  ``run(spec)`` in
:mod:`repro.scenarios.runner` is the only step between a spec and a
checked :class:`~repro.scenarios.result.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core.algebra import QuorumSystem, demo_grid_rqs
from repro.core.constructions import (
    byzantine_quorum_system,
    example7_rqs,
    figure3_rqs,
    majority_quorum_system,
    pbft_style_rqs,
    section12_rqs,
    threshold_rqs,
)
from repro.core.rqs import RefinedQuorumSystem
from repro.core.strategy import Strategy
from repro.errors import ScenarioError, SimulationError
from repro.scenarios.faults import FaultPlan
from repro.scenarios.workloads import RandomMix, Workload, WorkloadOp
from repro.sim.network import TraceLevel

RqsSpec = Union[RefinedQuorumSystem, QuorumSystem, str, None]

#: Legal string values of ``ScenarioSpec.quorum_strategy``.
STRATEGY_NAMES = ("uniform", "optimal")

# -- named quorum-system constructions ----------------------------------------

_NAMED_RQS: Dict[str, Callable[[], RefinedQuorumSystem]] = {}


def register_rqs(name: str, factory: Callable[[], RefinedQuorumSystem]) -> None:
    """Register a named RQS construction usable as ``ScenarioSpec.rqs``."""
    if name in _NAMED_RQS:
        raise ScenarioError(f"RQS name {name!r} already registered")
    _NAMED_RQS[name] = factory


def named_rqs() -> Tuple[str, ...]:
    return tuple(sorted(_NAMED_RQS))


register_rqs("example6", lambda: threshold_rqs(8, 3, 1, 1, 2))
register_rqs("example6-broken-p3",
             lambda: threshold_rqs(8, 3, 1, 1, 3, validate=False))
register_rqs("example7", example7_rqs)
register_rqs("figure3", figure3_rqs)
register_rqs("section12", section12_rqs)
# Expression-defined systems (the quorum algebra lift): the 2×3 grid
# ``a*b*c + d*e*f`` with heterogeneous / homogeneous node capacities.
register_rqs("grid-hetero", lambda: demo_grid_rqs(heterogeneous=True))
register_rqs("grid-homog", lambda: demo_grid_rqs(heterogeneous=False))


def resolve_rqs(spec: RqsSpec) -> Optional[RefinedQuorumSystem]:
    """Resolve a spec's ``rqs`` field to a concrete system.

    Accepts an instance, a planning-level
    :class:`~repro.core.algebra.QuorumSystem` (lifted via its
    :meth:`~repro.core.algebra.QuorumSystem.to_rqs`), ``None`` (for
    protocols that do not take an RQS), a registered name, or a
    parameterized construction string:

    * ``"threshold:n,t,k,q,r"`` — Example 6 (append ``,novalidate`` to
      skip the property check, for lower-bound scenarios),
    * ``"majority:n"`` — Example 2,
    * ``"byzantine:n"`` — Example 3,
    * ``"pbft:t"`` — the ``n = 3t + 1`` instantiation.
    """
    if spec is None or isinstance(spec, RefinedQuorumSystem):
        return spec
    if isinstance(spec, QuorumSystem):
        return spec.to_rqs()
    if not isinstance(spec, str):
        raise ScenarioError(
            f"rqs must be a RefinedQuorumSystem, a name, or None; "
            f"got {spec!r}"
        )
    if spec in _NAMED_RQS:
        return _NAMED_RQS[spec]()
    if ":" in spec:
        kind, _, arg_text = spec.partition(":")
        args = [a.strip() for a in arg_text.split(",") if a.strip()]
        try:
            if kind == "threshold":
                validate = True
                if args and args[-1] == "novalidate":
                    validate = False
                    args = args[:-1]
                n, t, k, q, r = (int(a) for a in args)
                return threshold_rqs(n, t, k, q, r, validate=validate)
            if kind == "majority":
                (n,) = (int(a) for a in args)
                return majority_quorum_system(n)
            if kind == "byzantine":
                (n,) = (int(a) for a in args)
                return byzantine_quorum_system(n)
            if kind == "pbft":
                (t,) = (int(a) for a in args)
                return pbft_style_rqs(t)
        except ValueError as exc:
            raise ScenarioError(f"bad RQS construction {spec!r}: {exc}")
    raise ScenarioError(
        f"unknown RQS name {spec!r}; known names: {', '.join(named_rqs())} "
        f"or threshold:n,t,k,q,r / majority:n / byzantine:n / pbft:t"
    )


# -- the spec itself -----------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative description of one execution.

    Parameters
    ----------
    protocol:
        A registered protocol id (see
        :func:`repro.scenarios.registry.available_protocols`).
    rqs:
        The refined quorum system (instance or name); ``None`` for
        baselines parameterized by counts instead (ABD, Paxos, PBFT).
    readers / proposers / learners:
        Client counts; each adapter uses the ones its protocol has.
    n_writers:
        Writer-client count for storage protocols.  ``1`` (default) is
        the paper's SWMR model with the historical bare timestamps;
        more writers deploy indexed clients whose stamped timestamps
        are totally ordered across writers (each preceded by a
        timestamp-discovery round — see :mod:`repro.storage.writer`).
    n_keys:
        Width of the keyed register space used by
        :class:`~repro.scenarios.workloads.RandomMix` keyspace draws
        (keys ``0 .. n_keys-1``; explicit ``Write``/``Read`` literals
        may address any hashable key regardless).  ``1`` (default)
        keeps every operation on the default register.
    delta:
        The synchrony bound Δ (default network latency).
    faults:
        The adversary's :class:`~repro.scenarios.faults.FaultPlan`.
    workload:
        A tuple of workload operation literals.
    seed:
        Seed for randomized workload expansion (deterministic per seed).
    horizon:
        Run until this simulated time; ``None`` runs to completion.
    duration / max_ops:
        The **open-loop stopping rule** — an alternative to fixed
        workload counts for horizon-free streaming runs.  Setting either
        switches a single-``RandomMix`` storage workload to open-loop
        generation: clients draw their next operation lazily (O(1)
        state per client; the mix's counts become rate/ratio
        parameters) and stop issuing once ``max_ops`` operations have
        started globally, or once a client's next start time reaches
        ``duration`` simulated time units — whichever comes first.
        In-flight operations still run to completion.  Consensus
        protocols reject both fields.
    strict:
        With ``horizon=None``, raise if tasks are still blocked when the
        event queue drains.
    trace_level:
        How much message history the execution retains — a
        :class:`~repro.sim.network.TraceLevel` or its name
        (``"full"``/``"metrics"``).  ``FULL`` (default) keeps the
        complete message log for verdicts and proof replays;
        ``METRICS`` keeps counters only, bounding memory on big
        sweeps/benchmarks (``messages_between`` then raises).
    quorum_strategy:
        How storage clients pick the quorum each operation contacts.
        ``None`` (default) is the paper's model — broadcast to the
        ground set and return on the first responding quorum; it is
        bit-identical to all pre-strategy executions.  ``"uniform"``
        draws uniformly over the RQS's quorums; ``"optimal"`` draws
        from the load-optimal LP distribution of
        :func:`repro.core.strategy.optimal_strategy` (the read fraction
        is taken from the workload's mix, and per-node capacities from
        the RQS when it carries them); a
        :class:`~repro.core.strategy.Strategy` instance is used as
        given.  Strategy draws consume a dedicated per-client RNG
        stream, never the workload RNGs.  Only the ``rqs-storage``
        protocol supports the knob.
    params:
        Protocol-specific extras (e.g. ``n``/``t`` for ABD-family
        baselines, ``f`` for PBFT, ``sync_delay`` or ``proposer_values``
        for the RQS consensus).
    shards:
        Split the run over this many **key shards**, each simulated in
        its own worker process (``1``, the default, is the historical
        single-process execution).  Single-writer keys are independent
        by construction, so a keyed streaming soak partitions cleanly:
        every key of ``range(n_keys)`` is deterministically assigned to
        one shard by a pure function of the spec — the historical crc32
        rule for uniform mixes, a load-weighted LPT bin-pack for
        zipfian ones (see
        :func:`repro.scenarios.workloads.shard_assignment`) — each
        shard runs the *same* workload draw filtered to its own keys,
        and
        ``run(spec)`` dispatches to
        :func:`repro.scenarios.sharding.run_sharded`, which merges the
        per-shard streams into one aggregate
        :class:`~repro.scenarios.sharding.ShardedRunResult`.  Requires
        a storage protocol, a single-``RandomMix`` workload at
        ``TraceLevel.METRICS``, and ``n_keys >= shards``.
    """

    protocol: str
    rqs: RqsSpec = None
    readers: int = 2
    proposers: int = 2
    learners: int = 3
    n_writers: int = 1
    n_keys: int = 1
    delta: float = 1.0
    faults: FaultPlan = field(default_factory=FaultPlan)
    workload: Workload = ()
    seed: int = 0
    horizon: Optional[float] = None
    duration: Optional[float] = None
    max_ops: Optional[int] = None
    strict: bool = False
    trace_level: Union[TraceLevel, str] = TraceLevel.FULL
    quorum_strategy: Union[None, str, Strategy] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    shards: int = 1

    def __post_init__(self):
        object.__setattr__(self, "workload", tuple(self.workload))
        if self.quorum_strategy is not None and not (
            isinstance(self.quorum_strategy, Strategy)
            or self.quorum_strategy in STRATEGY_NAMES
        ):
            raise ScenarioError(
                f"quorum_strategy must be None, one of "
                f"{'/'.join(STRATEGY_NAMES)}, or a Strategy instance; "
                f"got {self.quorum_strategy!r}"
            )
        if self.n_writers < 1:
            raise ScenarioError(
                f"n_writers must be >= 1, got {self.n_writers}"
            )
        if self.n_keys < 1:
            raise ScenarioError(f"n_keys must be >= 1, got {self.n_keys}")
        if self.duration is not None and self.duration <= 0:
            raise ScenarioError(
                f"duration must be positive, got {self.duration}"
            )
        if self.max_ops is not None and self.max_ops < 1:
            raise ScenarioError(
                f"max_ops must be >= 1, got {self.max_ops}"
            )
        for op in self.workload:
            batch = getattr(op, "batch_size", 1)
            if batch != "auto" and (
                not isinstance(batch, int) or batch < 1
            ):
                raise ScenarioError(
                    f"batch_size must be an int >= 1 or 'auto', got "
                    f"{batch!r}"
                )
        try:
            object.__setattr__(
                self, "trace_level", TraceLevel.of(self.trace_level)
            )
        except SimulationError as exc:
            raise ScenarioError(str(exc)) from exc
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ScenarioError(
                f"shards must be an int >= 1, got {self.shards!r}"
            )
        if self.shards > 1:
            if len(self.workload) != 1 or not isinstance(
                self.workload[0], RandomMix
            ):
                raise ScenarioError(
                    "sharded runs (shards > 1) take exactly one RandomMix "
                    "workload literal — the keyed stream is what "
                    f"partitions across shards; got {self.workload!r}"
                )
            if self.n_keys < self.shards:
                raise ScenarioError(
                    f"shards={self.shards} needs n_keys >= shards so every "
                    f"shard owns at least one register; got "
                    f"n_keys={self.n_keys}"
                )
            if self.trace_level is not TraceLevel.METRICS:
                raise ScenarioError(
                    "sharded runs stream: only counters, accumulators and "
                    "online verdicts cross the process boundary, so "
                    "shards > 1 requires trace_level='metrics'"
                )
            if self.max_ops is not None and self.max_ops < self.shards:
                raise ScenarioError(
                    f"max_ops={self.max_ops} cannot be split over "
                    f"{self.shards} shards (each shard needs an op budget "
                    f">= 1)"
                )
        object.__setattr__(
            self, "params", MappingProxyType(dict(self.params))
        )

    # ``params`` is a mappingproxy (immutable view), which pickle cannot
    # serialize; swap it for a plain dict in transit so specs can cross
    # process boundaries (the sweeps multiprocessing backend).
    def __getstate__(self):
        state = dict(self.__dict__)
        state["params"] = dict(state["params"])
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(
            self, "params", MappingProxyType(dict(state["params"]))
        )

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def resolved_rqs(self) -> Optional[RefinedQuorumSystem]:
        return resolve_rqs(self.rqs)

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced."""
        from dataclasses import replace

        if "params" in changes:
            changes["params"] = dict(changes["params"])
        return replace(self, **changes)
