"""Declarative spec-grid sweeps: expand, execute, aggregate.

A :class:`SweepSpec` is the repository's second invariant in code form:
**new figure = new grid literal**.  It names a grid of axes (protocol
ids × RQS constructions × fault plans × seeds × anything else), expands
the cross product into frozen :class:`~repro.scenarios.spec.ScenarioSpec`
cells in a deterministic row-major order, runs every cell through
:func:`repro.scenarios.runner.run` on a pluggable executor (serial or
``multiprocessing``), and aggregates the per-cell measurements into a
portable :class:`~repro.scenarios.aggregate.SweepResult` table.

Guarantees:

* **Deterministic expansion** — cell order and cell seeds are a pure
  function of the grid literal, never of execution order, so any two
  backends produce byte-identical aggregated JSON.
* **Failure isolation** — a cell that raises is recorded as a failed
  :class:`~repro.scenarios.aggregate.CellResult` (``ok=False`` with the
  exception summarized) and every other cell still runs.
* **Portability** — cell metrics are canonicalized to JSON-safe values
  at measurement time, so results survive process boundaries and
  JSON/CSV round-trips losslessly.

Three hooks cover every experiment shape: ``build`` (grid point →
``ScenarioSpec``; defaults to applying spec-field axes onto ``base``),
``measure`` (point + :class:`~repro.scenarios.result.RunResult` →
metrics mapping; defaults to :func:`default_measure`), and ``evaluate``
(point → metrics, for analytic sweeps that never run a scenario).  Use
module-level functions for hooks you want to run on the multiprocessing
backend — lambdas and closures do not pickle.

Doctest — a 2-protocol × 2-seed grid in four lines::

    >>> from repro.scenarios import ScenarioSpec, Write, Read
    >>> from repro.scenarios.sweeps import SweepSpec, run_grid
    >>> grid = SweepSpec(
    ...     name="doctest",
    ...     axes={"protocol": ("abd", "fastabd"), "seed": (0, 1)},
    ...     base=ScenarioSpec(protocol="abd", readers=1,
    ...                       workload=(Write(0.0, "v"), Read(5.0))),
    ... )
    >>> grid.size
    4
    >>> [cell.labels["protocol"] for cell in grid.cells()]
    ['abd', 'abd', 'fastabd', 'fastabd']
    >>> result = run_grid(grid)
    >>> result.verdict_counts()
    {'atomic': 4}
    >>> result.cell(protocol="abd", seed=0).metrics["operations"]
    2
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import zlib
from dataclasses import dataclass, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ScenarioError
from repro.scenarios.aggregate import (
    RESERVED_COLUMNS,
    CellResult,
    SweepResult,
    jsonable,
    plain_label,
    summary_stats,
)
from repro.scenarios.registry import get_protocol
from repro.scenarios.result import RunResult
from repro.scenarios.runner import run
from repro.scenarios.shm import SlotBlock
from repro.scenarios.spec import ScenarioSpec

#: ScenarioSpec field names the default builder applies from grid points.
SPEC_FIELDS = frozenset(f.name for f in fields(ScenarioSpec))

Point = Mapping[str, Any]
BuildHook = Callable[[Point], ScenarioSpec]
MeasureHook = Callable[[Point, RunResult], Mapping[str, Any]]
EvaluateHook = Callable[[Point], Mapping[str, Any]]
ProgressHook = Callable[[int, int, CellResult], None]


# -- axis values ---------------------------------------------------------------

@dataclass(frozen=True)
class AxisValue:
    """An axis value with an explicit human-readable label.

    Use :func:`labeled` for axis entries whose ``repr`` would be noisy
    as a table coordinate (fault plans, whole spec literals, tuples).
    """

    label: str
    value: Any


def labeled(label: str, value: Any) -> AxisValue:
    """``AxisValue(label, value)`` — the readable-coordinates helper."""
    return AxisValue(label, value)


def axis_label(value: Any) -> str:
    """The portable string coordinate of one axis value."""
    if isinstance(value, AxisValue):
        return value.label
    return plain_label(value)


def axis_value(value: Any) -> Any:
    return value.value if isinstance(value, AxisValue) else value


def derive_seed(name: str, index: int, base: int = 0) -> int:
    """A deterministic per-cell seed: a pure function of the sweep name,
    the cell index and an optional base — stable across processes,
    Python versions and executor backends (crc32, not ``hash``)."""
    text = f"{name}:{index}:{base}".encode()
    return zlib.crc32(text) & 0x7FFFFFFF


# -- the grid ------------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One expanded grid point: raw values plus portable labels."""

    index: int
    point: Mapping[str, Any]
    labels: Mapping[str, str]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of scenarios (or analytic evaluations).

    Parameters
    ----------
    name:
        The sweep's identity — names exported artifacts
        (``BENCH_<name>.json``) and salts :func:`derive_seed`.
    axes:
        Ordered mapping (or sequence of pairs) ``axis name -> values``.
        Values may be plain objects or :func:`labeled` pairs; the cross
        product expands in row-major order (last axis fastest).
    base:
        Template spec for the default builder; axes named after
        ``ScenarioSpec`` fields (``protocol``, ``rqs``, ``seed``,
        ``faults``, ``workload``, …) are applied onto it per cell.
    build:
        Custom point → ``ScenarioSpec`` hook (overrides ``base``).
    measure:
        Custom (point, RunResult) → metrics hook; defaults to
        :func:`default_measure`.  A ``"verdict"`` key is lifted onto the
        cell result.
    evaluate:
        Analytic hook (point → metrics) for sweeps with no scenario to
        execute (closed-form/metric sweeps); mutually exclusive with
        ``base``/``build``/``measure``.
    chunk_size:
        Cells per multiprocessing dispatch chunk.  ``None`` (default)
        keeps the historical ``max(1, total // (4 * workers))`` rule;
        set it explicitly for grids whose cell costs are wildly uneven
        (smaller chunks → better balance, more IPC round-trips).  Chunk
        size never affects results — cells flatten back into grid
        order on every setting.
    """

    name: str
    axes: Any
    base: Optional[ScenarioSpec] = None
    build: Optional[BuildHook] = None
    measure: Optional[MeasureHook] = None
    evaluate: Optional[EvaluateHook] = None
    chunk_size: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ScenarioError("a sweep needs a name")
        pairs = (
            tuple(self.axes.items())
            if isinstance(self.axes, Mapping)
            else tuple((name, values) for name, values in self.axes)
        )
        normalized = []
        for name, values in pairs:
            if name in RESERVED_COLUMNS:
                raise ScenarioError(
                    f"axis name {name!r} is reserved "
                    f"(reserved: {', '.join(RESERVED_COLUMNS)})"
                )
            values = tuple(values)
            if not values:
                raise ScenarioError(f"axis {name!r} has no values")
            normalized.append((str(name), values))
        if not normalized:
            raise ScenarioError(f"sweep {self.name!r} has no axes")
        object.__setattr__(self, "axes", tuple(normalized))
        if self.evaluate is not None and (
            self.base is not None
            or self.build is not None
            or self.measure is not None
        ):
            raise ScenarioError(
                "evaluate sweeps are analytic: they take no "
                "base/build/measure hooks"
            )
        if self.chunk_size is not None and (
            not isinstance(self.chunk_size, int) or self.chunk_size < 1
        ):
            raise ScenarioError(
                f"chunk_size must be an int >= 1 (or None for the "
                f"workers-derived default), got {self.chunk_size!r}"
            )

    # -- expansion ------------------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    @property
    def size(self) -> int:
        product = 1
        for _, values in self.axes:
            product *= len(values)
        return product

    def cells(self) -> Tuple[Cell, ...]:
        """Every grid point, in deterministic row-major order."""
        names = self.axis_names
        out = []
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.axes))
        ):
            out.append(
                Cell(
                    index=index,
                    point={n: axis_value(v) for n, v in zip(names, combo)},
                    labels={n: axis_label(v) for n, v in zip(names, combo)},
                )
            )
        return tuple(out)

    def spec_for(self, cell: Cell) -> Optional[ScenarioSpec]:
        """The frozen scenario for one cell (None for analytic sweeps)."""
        if self.evaluate is not None:
            return None
        if self.build is not None:
            return self.build(cell.point)
        return default_build(self.base, cell.point)

    def specs(self) -> Tuple[Optional[ScenarioSpec], ...]:
        return tuple(self.spec_for(cell) for cell in self.cells())

    # -- slicing --------------------------------------------------------------

    def where(self, **filters: Any) -> "SweepSpec":
        """A sub-grid keeping only matching axis values.

        Filters compare by label (``seed=3`` keeps the value labelled
        ``"3"``); a value, or a list/tuple/set of values, is accepted.
        """
        remaining = dict(filters)
        new_axes = []
        for name, values in self.axes:
            if name not in remaining:
                new_axes.append((name, values))
                continue
            wanted = remaining.pop(name)
            if isinstance(wanted, (list, tuple, set, frozenset)):
                labels = {axis_label(w) for w in wanted}
            else:
                labels = {axis_label(wanted)}
            keep = tuple(v for v in values if axis_label(v) in labels)
            if not keep:
                known = ", ".join(axis_label(v) for v in values)
                raise ScenarioError(
                    f"axis {name!r} has no value matching {sorted(labels)}; "
                    f"values: {known}"
                )
            new_axes.append((name, keep))
        if remaining:
            raise ScenarioError(
                f"unknown axes {sorted(remaining)}; "
                f"sweep {self.name!r} has {list(self.axis_names)}"
            )
        return replace(self, axes=tuple(new_axes))


def default_build(base: Optional[ScenarioSpec], point: Point) -> ScenarioSpec:
    """Apply the point's spec-field axes onto ``base`` (or build fresh
    from a ``protocol`` axis).  Non-field axes are metadata: they label
    the cell and reach the measure hook, but do not touch the spec."""
    changes = {k: v for k, v in point.items() if k in SPEC_FIELDS}
    if base is None:
        if "protocol" not in changes:
            raise ScenarioError(
                "a sweep without base/build needs a 'protocol' axis"
            )
        return ScenarioSpec(**changes)
    return base.with_(**changes) if changes else base


# -- measurement ---------------------------------------------------------------

def default_measure(point: Point, result: RunResult) -> Dict[str, Any]:
    """Protocol-aware default metrics for one executed cell.

    Storage cells verdict on atomicity; consensus cells verdict on the
    consensus checker and record the worst learner delay.  Both record
    operation counts and mean/p50/p99 completion-latency summaries.

    Streamed cells (``TraceLevel.METRICS``) have no retained records:
    counts come from the trace counters, latency from the streaming
    accumulators, and the verdict from the windowed online checker
    (``"unchecked"`` when no checker applied — e.g. multi-writer
    streams).
    """
    if result.streamed:
        return _streamed_measure(result)
    completed = result.completed
    metrics: Dict[str, Any] = {
        "operations": len(result.records),
        "completed": len(completed),
        "blocked": len(result.blocked),
    }
    kind = getattr(get_protocol(result.spec.protocol), "kind", "storage")
    if kind == "consensus":
        report = result.consensus
        metrics["verdict"] = "ok" if report.ok else "violation"
        metrics["worst_learner_delay"] = result.worst_learner_delay
    else:
        metrics["verdict"] = (
            "atomic" if result.atomicity.atomic else "violation"
        )
    durations = [r.completed_at - r.invoked_at for r in completed]
    metrics["latency"] = summary_stats(durations)
    rounds = [r.rounds for r in completed if r.rounds]
    if rounds:
        metrics["rounds"] = summary_stats(rounds)
    return metrics


def _streamed_measure(result: RunResult) -> Dict[str, Any]:
    """Counter/accumulator/online-checker metrics for streamed cells."""
    metrics: Dict[str, Any] = {
        "operations": result.ops_begun(),
        "completed": result.ops_completed(),
        "blocked": len(result.blocked),
    }
    online = result.online
    if online is not None:
        online_metrics = online.as_metrics()
        online_metrics.pop("atomic")
        metrics["verdict"] = online.verdict
        metrics.update(online_metrics)
    else:
        metrics["verdict"] = "unchecked"
    if getattr(result, "n_shards", 0) > 1:
        metrics["shards"] = result.n_shards
        metrics["capacity_ops_per_sec"] = round(
            result.capacity_ops_per_sec, 2
        )
        metrics["max_shard_rss_kb"] = result.max_shard_rss_kb
    latency: Dict[str, Any] = {}
    # op_kinds() is the shape-independent enumeration: plain RunResults
    # and merged ShardedRunResults both provide it.
    for kind in result.op_kinds():
        summary = result.latency_streaming(kind)
        if summary.count:
            latency[kind] = {
                "mean": summary.mean_time,
                "p50": summary.p50_time,
                "p99": summary.p99_time,
                "max": summary.max_time,
            }
    metrics["latency"] = latency
    return metrics


def run_cell(
    sweep: SweepSpec, cell: Cell, keep_result: bool = False
) -> CellResult:
    """Execute one cell with failure isolation.

    Any exception — in the build hook, the run, or the measure hook —
    is captured on the cell result instead of propagating, so one bad
    cell never takes down a sweep.
    """
    result: Optional[RunResult] = None
    try:
        if sweep.evaluate is not None:
            metrics = dict(sweep.evaluate(cell.point) or {})
        else:
            spec = sweep.spec_for(cell)
            result = run(spec)
            measure = sweep.measure or default_measure
            metrics = dict(measure(cell.point, result) or {})
        verdict = metrics.pop("verdict", None)
        return CellResult(
            index=cell.index,
            point=dict(cell.labels),
            ok=True,
            verdict=None if verdict is None else str(verdict),
            metrics=jsonable(metrics),
            result=result if keep_result else None,
        )
    except Exception as exc:  # noqa: BLE001 — per-cell isolation
        return CellResult(
            index=cell.index,
            point=dict(cell.labels),
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
        )


# -- executors -----------------------------------------------------------------

def run_serial(
    sweep: SweepSpec,
    progress: Optional[ProgressHook] = None,
    keep_results: bool = True,
) -> Tuple[CellResult, ...]:
    """Run every cell in-process, in grid order.

    With ``keep_results`` each cell result retains its live
    :class:`RunResult` handle (``cell.result``) for rich post-hoc
    inspection — reports, traces, custom checkers.
    """
    cells = sweep.cells()
    out = []
    for cell in cells:
        outcome = run_cell(sweep, cell, keep_result=keep_results)
        out.append(outcome)
        if progress is not None:
            progress(len(out), len(cells), outcome)
    return tuple(out)


_WORKER_SWEEP: Optional[SweepSpec] = None
_WORKER_CELLS: Tuple[Cell, ...] = ()
_WORKER_SLOTS: Optional[SlotBlock] = None

#: Per-chunk result slot on the shared-memory collection path: 256 KiB
#: comfortably holds a pickled chunk of portable CellResults.
GRID_SLOT_BYTES = 256 * 1024


def _mp_initialize(payload: bytes, shm_name: Optional[str] = None,
                   slots: int = 0, slot_size: int = 0) -> None:
    global _WORKER_SWEEP, _WORKER_CELLS, _WORKER_SLOTS
    _WORKER_SWEEP = pickle.loads(payload)
    _WORKER_CELLS = _WORKER_SWEEP.cells()
    # Fork-started workers inherit the parent's mapped SlotBlock via
    # this module global; only spawn-started workers attach by name.
    if _WORKER_SLOTS is None and shm_name is not None:
        _WORKER_SLOTS = SlotBlock.attach(shm_name, slots, slot_size)


def _mp_run_chunk(
    job: Tuple[int, Tuple[int, ...]],
) -> Tuple[int, Optional[Tuple[CellResult, ...]]]:
    """Run one chunk of cells; on the shared-memory path the pickled
    results land in the chunk's slot and only ``(chunk, None)`` rides
    the pipe.  Oversized chunks fall back to the pipe untruncated."""
    chunk, indices = job
    results = tuple(
        run_cell(_WORKER_SWEEP, _WORKER_CELLS[index]) for index in indices
    )
    if _WORKER_SLOTS is not None:
        data = pickle.dumps(results, pickle.HIGHEST_PROTOCOL)
        if _WORKER_SLOTS.write(chunk, data):
            return (chunk, None)
    return (chunk, results)


def dispatch_chunks(
    total: int, workers: int, chunk_size: Optional[int] = None
) -> Tuple[Tuple[int, ...], ...]:
    """Contiguous cell-index chunks for the multiprocessing backend.

    One IPC round-trip per *chunk* instead of per cell — the default
    chunk size ``max(1, total // (4 * workers))`` keeps ~4 chunks per
    worker in flight, enough slack for uneven cell costs while killing
    the per-cell dispatch overhead that dominated thousand-cell sweeps;
    ``chunk_size`` (the ``SweepSpec.chunk_size`` knob) overrides it.
    Chunks partition ``range(total)`` in grid order, so flattening the
    chunk results reproduces exact cell order at any chunk size.
    """
    size = chunk_size or max(1, total // (4 * max(1, workers)))
    return tuple(
        tuple(range(start, min(start + size, total)))
        for start in range(0, total, size)
    )


def run_multiprocessing(
    sweep: SweepSpec,
    processes: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    collect: str = "pipe",
) -> Tuple[CellResult, ...]:
    """Run the grid on a ``multiprocessing`` pool.

    The sweep is pickled once into each worker and cells are dispatched
    as contiguous index *chunks* (see :func:`dispatch_chunks`); chunk
    results are collected in submission order and flattened, so the
    aggregated output stays byte-identical to the serial backend.  Live
    ``RunResult`` handles cannot cross process boundaries, so cells
    carry portable metrics only.

    ``collect="sharedmem"`` moves result payloads off the result pipe
    into per-chunk shared-memory slots (:class:`SlotBlock`) — on
    thousand-cell grids the pipe serializes every byte through one
    reader thread, while slots are written concurrently; only a
    ``(chunk, None)`` token rides the pipe.  Results are byte-identical
    either way.
    """
    if collect not in ("pipe", "sharedmem"):
        raise ScenarioError(
            f"unknown collect mode {collect!r}; use 'pipe' or 'sharedmem'"
        )
    try:
        payload = pickle.dumps(sweep)
    except Exception as exc:
        raise ScenarioError(
            f"sweep {sweep.name!r} is not picklable for the "
            f"multiprocessing backend ({exc}); move build/measure hooks "
            f"and fault-plan payload predicates to module level, or use "
            f"the serial executor"
        )
    total = sweep.size
    workers = processes or min(multiprocessing.cpu_count(), total) or 1
    chunks = dispatch_chunks(total, workers, sweep.chunk_size)
    # fork (where available) skips re-importing __main__ — spawn breaks
    # under stdin/-c parents and pays a full interpreter start per worker.
    method = (
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    context = multiprocessing.get_context(method)
    global _WORKER_SLOTS
    block: Optional[SlotBlock] = None
    initargs: Tuple[Any, ...] = (payload,)
    if collect == "sharedmem":
        block = SlotBlock.create(len(chunks), GRID_SLOT_BYTES)
        # Set before the pool forks so children inherit the mapping.
        _WORKER_SLOTS = block
        initargs = (payload, block.shm.name, len(chunks), GRID_SLOT_BYTES)
    out = []
    try:
        with context.Pool(
            workers, initializer=_mp_initialize, initargs=initargs
        ) as pool:
            for chunk, inline in pool.imap(
                _mp_run_chunk, enumerate(chunks)
            ):
                results = inline
                if results is None:
                    data = block.read(chunk)
                    if data is None:  # pragma: no cover - worker died
                        raise ScenarioError(
                            f"chunk {chunk} reported success but its "
                            f"result slot is empty"
                        )
                    results = pickle.loads(data)
                for outcome in results:
                    out.append(outcome)
                    if progress is not None:
                        progress(len(out), total, outcome)
    finally:
        if block is not None:
            _WORKER_SLOTS = None
            block.destroy()
    return tuple(out)


Executor = Union[
    str, Callable[..., Iterable[CellResult]], None
]


def run_grid(
    sweep: SweepSpec,
    executor: Executor = "serial",
    processes: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    keep_results: bool = True,
    metadata: Optional[Mapping[str, Any]] = None,
    collect: str = "pipe",
) -> SweepResult:
    """Expand, execute and aggregate one sweep — the grid entry point.

    ``executor`` is ``"serial"`` (default), ``"multiprocessing"`` (alias
    ``"mp"``), or any callable ``(sweep, progress) -> iterable of
    CellResult``.  ``metadata`` is attached verbatim to the result table
    (keep it backend-independent if you diff exported JSON).  ``collect``
    picks the multiprocessing result transport (``"pipe"`` or
    ``"sharedmem"``; see :func:`run_multiprocessing`).
    """
    if executor in (None, "serial"):
        cells = run_serial(sweep, progress=progress,
                           keep_results=keep_results)
    elif executor in ("multiprocessing", "mp"):
        cells = run_multiprocessing(sweep, processes=processes,
                                    progress=progress, collect=collect)
    elif callable(executor):
        cells = tuple(executor(sweep, progress))
    else:
        raise ScenarioError(
            f"unknown executor {executor!r}; use 'serial', "
            f"'multiprocessing', or a callable"
        )
    return SweepResult(
        name=sweep.name,
        axes=tuple(
            (name, tuple(axis_label(v) for v in values))
            for name, values in sweep.axes
        ),
        cells=cells,
        metadata=dict(metadata or {}),
    )
