"""A composable quorum expression algebra with per-node capacities.

The constructions in :mod:`repro.core.constructions` are fixed recipes;
this module lets a quorum system be *written down* as an expression over
named nodes and then lifted into the paper's
:class:`~repro.core.rqs.RefinedQuorumSystem` machinery:

    >>> a, b, c, d = [Node(x) for x in "abcd"]
    >>> qs = QuorumSystem(reads=a * b + c * d)
    >>> sorted(sorted(q) for q in qs.read_quorums())
    [['a', 'b'], ['c', 'd']]

Grammar (each connective is also available as operator sugar):

* ``Node(name, read_capacity=1, write_capacity=1)`` — a leaf; the
  capacities are operations per time unit and feed the strategy engine.
* ``And(e1, e2, ...)`` / ``e1 * e2`` — every operand must be covered.
* ``Or(e1, e2, ...)`` / ``e1 + e2`` — any one operand suffices.
* ``Choose(k, e1, ..., en)`` — any ``k`` of the ``n`` operands
  (``And = Choose(n)``, ``Or = Choose(1)``; ``majority(...)`` picks
  ``⌊n/2⌋ + 1``).

``expr.quorums()`` materializes the *minimal* sets satisfying the
expression (an antichain — supersets are dropped), and ``expr.dual()``
gives the transversal-closed dual (``dual(And) = Or`` of duals,
``dual(Choose(k of n)) = Choose(n − k + 1 of n)``), so
``QuorumSystem(reads=e)`` uses ``e.dual()`` for writes and every read
quorum intersects every write quorum by construction.

The lift (:meth:`QuorumSystem.to_rqs`) produces a
:class:`CapacitatedRqs` — a :class:`RefinedQuorumSystem` whose quorum
family is the minimal antichain of read∪write unions, carrying the
expression's capacity maps and the read/write split alongside.  Under
the crash-only adversary ``B = {∅}`` (the default), Property P1 is
exactly pairwise intersection, which holds by transversality; richer
adversaries and expression-defined ``qc1``/``qc2`` classes are
validated by the ordinary RQS property checks on construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.adversary import Adversary, ExplicitAdversary
from repro.core.properties import normalize_family
from repro.core.rqs import RefinedQuorumSystem
from repro.core.strategy import (
    Strategy,
    optimal_strategy,
    uniform_strategy,
)
from repro.errors import PropertyViolation, QuorumSystemError

Subset = FrozenSet[Hashable]
Family = Tuple[Subset, ...]


def _minimal_antichain(sets: Iterable[frozenset]) -> Family:
    """The inclusion-minimal members, deduped and normalized."""
    unique = set(sets)
    minimal = [
        s for s in unique
        if not any(other < s for other in unique)
    ]
    return normalize_family(minimal)


def _cross_union(families: Sequence[Family]) -> Family:
    """Minimal antichain of one-pick-per-family unions."""
    acc: Iterable[frozenset] = (frozenset(),)
    for family in families:
        acc = [s | q for s in acc for q in family]
    return _minimal_antichain(acc)


class Expr:
    """Base class for quorum expressions.

    Subclasses implement :meth:`quorums` (minimal satisfying sets),
    :meth:`dual` and :meth:`nodes`.  ``*`` composes conjunctively,
    ``+`` disjunctively.
    """

    def __mul__(self, other: "Expr") -> "Expr":
        if not isinstance(other, Expr):
            return NotImplemented
        return And(operands=_flatten(And, (self, other)))

    def __add__(self, other: "Expr") -> "Expr":
        if not isinstance(other, Expr):
            return NotImplemented
        return Or(operands=_flatten(Or, (self, other)))

    def quorums(self) -> Family:
        raise NotImplementedError

    def dual(self) -> "Expr":
        raise NotImplementedError

    def nodes(self) -> Tuple["Node", ...]:
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError


def _flatten(kind, operands: Iterable[Expr]) -> Tuple[Expr, ...]:
    """Merge nested same-kind operands so ``a*b*c`` is one ``And``."""
    flat = []
    for op in operands:
        if type(op) is kind:
            flat.extend(op.operands)
        else:
            flat.append(op)
    return tuple(flat)


def _check_operands(operands: Sequence[Expr], kind: str) -> None:
    if not operands:
        raise QuorumSystemError(f"{kind} needs at least one operand")
    for op in operands:
        if not isinstance(op, Expr):
            raise QuorumSystemError(
                f"{kind} operand {op!r} is not a quorum expression"
            )


@dataclass(frozen=True)
class Node(Expr):
    """A named server with read/write capacities (ops per time unit)."""

    name: Hashable
    read_capacity: Union[int, Fraction] = 1
    write_capacity: Union[int, Fraction] = 1

    def __post_init__(self):
        if Fraction(self.read_capacity) <= 0 or (
            Fraction(self.write_capacity) <= 0
        ):
            raise QuorumSystemError(
                f"node {self.name!r} needs positive capacities"
            )

    def quorums(self) -> Family:
        return (frozenset([self.name]),)

    def dual(self) -> "Node":
        return self

    def nodes(self) -> Tuple["Node", ...]:
        return (self,)

    def __str__(self) -> str:
        return str(self.name)

    # Inherit Expr's operator sugar, not dataclass-generated comparisons.
    __mul__ = Expr.__mul__
    __add__ = Expr.__add__


@dataclass(frozen=True)
class Choose(Expr):
    """Any ``k`` of the operands (``1 ≤ k ≤ n``)."""

    k: int
    operands: Tuple[Expr, ...]

    def __init__(self, k: int, *operands: Expr):
        # Accept both Choose(2, a, b, c) and Choose(k=2, operands=(...)).
        if len(operands) == 1 and isinstance(operands[0], tuple):
            operands = operands[0]
        _check_operands(operands, "Choose")
        if not 1 <= k <= len(operands):
            raise QuorumSystemError(
                f"Choose k={k} out of range for {len(operands)} operands"
            )
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "operands", tuple(operands))

    def quorums(self) -> Family:
        picks = itertools.combinations(self.operands, self.k)
        return _minimal_antichain(
            q
            for subset in picks
            for q in _cross_union([op.quorums() for op in subset])
        )

    def dual(self) -> "Choose":
        n = len(self.operands)
        return Choose(
            n - self.k + 1, *(op.dual() for op in self.operands)
        )

    def nodes(self) -> Tuple[Node, ...]:
        return _merge_nodes(self.operands)

    def __str__(self) -> str:
        inner = ", ".join(str(op) for op in self.operands)
        return f"choose({self.k}, [{inner}])"


@dataclass(frozen=True)
class And(Expr):
    """Every operand must be covered (``a * b``)."""

    operands: Tuple[Expr, ...]

    def __init__(self, *operands: Expr, **kwargs):
        operands = kwargs.get("operands", operands)
        operands = _flatten(And, operands)
        _check_operands(operands, "And")
        object.__setattr__(self, "operands", tuple(operands))

    def quorums(self) -> Family:
        return _cross_union([op.quorums() for op in self.operands])

    def dual(self) -> "Or":
        return Or(*(op.dual() for op in self.operands))

    def nodes(self) -> Tuple[Node, ...]:
        return _merge_nodes(self.operands)

    def __str__(self) -> str:
        # Parenthesize Or children: ``*`` binds tighter than ``+``.
        return "*".join(
            f"({op})" if isinstance(op, Or) else str(op)
            for op in self.operands
        )


@dataclass(frozen=True)
class Or(Expr):
    """Any one operand suffices (``a + b``)."""

    operands: Tuple[Expr, ...]

    def __init__(self, *operands: Expr, **kwargs):
        operands = kwargs.get("operands", operands)
        operands = _flatten(Or, operands)
        _check_operands(operands, "Or")
        object.__setattr__(self, "operands", tuple(operands))

    def quorums(self) -> Family:
        return _minimal_antichain(
            q for op in self.operands for q in op.quorums()
        )

    def dual(self) -> "And":
        return And(*(op.dual() for op in self.operands))

    def nodes(self) -> Tuple[Node, ...]:
        return _merge_nodes(self.operands)

    def __str__(self) -> str:
        return " + ".join(str(op) for op in self.operands)


def choose(k: int, exprs: Iterable[Expr]) -> Choose:
    """``Choose(k, ...)`` over an iterable of expressions."""
    return Choose(k, *tuple(exprs))


def majority(exprs: Iterable[Expr]) -> Choose:
    """Any strict majority (``⌊n/2⌋ + 1``) of the expressions."""
    exprs = tuple(exprs)
    return Choose(len(exprs) // 2 + 1, *exprs)


def _merge_nodes(operands: Iterable[Expr]) -> Tuple[Node, ...]:
    """All leaves, deduped by name; conflicting duplicates are an error."""
    by_name: Dict[Hashable, Node] = {}
    for op in operands:
        for node in op.nodes():
            seen = by_name.get(node.name)
            if seen is None:
                by_name[node.name] = node
            elif seen != node:
                raise QuorumSystemError(
                    f"node {node.name!r} appears with conflicting "
                    f"capacities: {seen} vs {node}"
                )
    return tuple(sorted(by_name.values(), key=lambda n: repr(n.name)))


# -- the planning object -------------------------------------------------------


class CapacitatedRqs(RefinedQuorumSystem):
    """A :class:`RefinedQuorumSystem` lifted from a quorum expression.

    Behaves exactly like its base class (same properties, same
    validation) and additionally remembers the expression's read/write
    quorum split and per-node capacity maps, which the strategy engine
    and the rate-limited capacity model consume.
    """

    def __init__(
        self,
        adversary: Adversary,
        quorums: Iterable[Iterable[Hashable]],
        qc1: Iterable[Iterable[Hashable]] = (),
        qc2: Optional[Iterable[Iterable[Hashable]]] = None,
        validate: bool = True,
        read_quorums: Iterable[Iterable[Hashable]] = (),
        write_quorums: Iterable[Iterable[Hashable]] = (),
        read_capacity: Optional[Mapping[Hashable, Fraction]] = None,
        write_capacity: Optional[Mapping[Hashable, Fraction]] = None,
    ):
        super().__init__(adversary, quorums, qc1, qc2, validate)
        self.read_quorums = normalize_family(read_quorums)
        self.write_quorums = normalize_family(write_quorums)
        self.read_capacity = dict(read_capacity or {})
        self.write_capacity = dict(write_capacity or {})


@dataclass(frozen=True)
class QuorumSystem:
    """A planning-level quorum system defined by expressions.

    ``reads`` and ``writes`` may each be given; a missing one defaults
    to the other's :meth:`~Expr.dual`, which guarantees the
    transversality invariant (every read quorum intersects every write
    quorum) by construction.  Providing both is allowed as long as the
    invariant holds — it is checked eagerly.
    """

    reads: Optional[Expr] = None
    writes: Optional[Expr] = None

    def __post_init__(self):
        if self.reads is None and self.writes is None:
            raise QuorumSystemError(
                "QuorumSystem needs a reads or writes expression"
            )
        if self.reads is None:
            object.__setattr__(self, "reads", self.writes.dual())
        if self.writes is None:
            object.__setattr__(self, "writes", self.reads.dual())
        # Merging also rejects same-name nodes with conflicting capacities.
        _merge_nodes((self.reads, self.writes))
        for r in self.read_quorums():
            for w in self.write_quorums():
                if not r & w:
                    raise QuorumSystemError(
                        f"read quorum {sorted(r, key=repr)} misses write "
                        f"quorum {sorted(w, key=repr)}: expressions are "
                        f"not transversal"
                    )

    # -- materialized views --------------------------------------------------

    def nodes(self) -> Tuple[Node, ...]:
        return _merge_nodes((self.reads, self.writes))

    def ground_set(self) -> Subset:
        return frozenset(n.name for n in self.nodes())

    def read_quorums(self) -> Family:
        return self.reads.quorums()

    def write_quorums(self) -> Family:
        return self.writes.quorums()

    def read_capacities(self) -> Dict[Hashable, Fraction]:
        return {n.name: Fraction(n.read_capacity) for n in self.nodes()}

    def write_capacities(self) -> Dict[Hashable, Fraction]:
        return {n.name: Fraction(n.write_capacity) for n in self.nodes()}

    # -- planning ------------------------------------------------------------

    def strategy(
        self, read_fraction: Union[Fraction, float, str] = Fraction(1, 2)
    ) -> Strategy:
        """The load-optimal strategy for this system at ``read_fraction``."""
        return optimal_strategy(
            self.read_quorums(),
            self.write_quorums(),
            read_fraction=read_fraction,
            read_capacity=self.read_capacities(),
            write_capacity=self.write_capacities(),
        )

    def uniform(
        self, read_fraction: Union[Fraction, float, str] = Fraction(1, 2)
    ) -> Strategy:
        """The uniform strategy (the baseline the optimizer must beat)."""
        return uniform_strategy(
            self.read_quorums(),
            self.write_quorums(),
            read_fraction=read_fraction,
            read_capacity=self.read_capacities(),
            write_capacity=self.write_capacities(),
        )

    def load(
        self, read_fraction: Union[Fraction, float, str] = Fraction(1, 2)
    ) -> Fraction:
        return self.strategy(read_fraction).load

    def capacity(
        self, read_fraction: Union[Fraction, float, str] = Fraction(1, 2)
    ) -> Fraction:
        return self.strategy(read_fraction).capacity

    def read_resilience(self) -> int:
        """Max ``f`` such that every ``f``-subset leaves a read quorum."""
        return _resilience(self.ground_set(), self.read_quorums())

    def write_resilience(self) -> int:
        return _resilience(self.ground_set(), self.write_quorums())

    def resilience(self) -> int:
        return min(self.read_resilience(), self.write_resilience())

    # -- the lift ------------------------------------------------------------

    def lifted_quorums(self) -> Family:
        """The single family the storage protocol runs on: the minimal
        antichain of ``read ∪ write`` unions.  Every member contains a
        full read quorum *and* a full write quorum, so any two members
        intersect (transversality) — Property P1 under ``B = {∅}``."""
        return _minimal_antichain(
            r | w
            for r in self.read_quorums()
            for w in self.write_quorums()
        )

    def to_rqs(
        self,
        adversary: Optional[Adversary] = None,
        qc1: Union[None, Expr, Iterable[Iterable[Hashable]]] = None,
        qc2: Union[None, Expr, Iterable[Iterable[Hashable]]] = None,
        validate: bool = True,
    ) -> CapacitatedRqs:
        """Lift into a :class:`CapacitatedRqs`.

        ``adversary`` defaults to the crash-only ``B = {∅}`` over the
        expression's ground set.  ``qc1``/``qc2`` may be expressions or
        explicit families and must be sub-families of the lifted
        family; when omitted, the richest classes that validate are
        chosen (all quorums class-1 if P2 holds, else all class-2 if
        P3 holds, else all class-3).
        """
        if adversary is None:
            adversary = ExplicitAdversary(self.ground_set())
        family = self.lifted_quorums()

        def as_family(spec) -> Family:
            resolved = (
                spec.quorums() if isinstance(spec, Expr)
                else normalize_family(spec)
            )
            stray = [q for q in resolved if q not in family]
            if stray:
                raise QuorumSystemError(
                    f"class family member {sorted(stray[0], key=repr)} "
                    f"is not a lifted quorum"
                )
            return resolved

        kwargs = dict(
            read_quorums=self.read_quorums(),
            write_quorums=self.write_quorums(),
            read_capacity=self.read_capacities(),
            write_capacity=self.write_capacities(),
        )
        if qc1 is not None or qc2 is not None:
            return CapacitatedRqs(
                adversary, family,
                qc1=as_family(qc1) if qc1 is not None else (),
                qc2=as_family(qc2) if qc2 is not None else None,
                validate=validate, **kwargs,
            )
        if not validate:
            return CapacitatedRqs(
                adversary, family, validate=False, **kwargs
            )
        # Richest classes that validate: try QC1 = QC2 = RQS, then
        # QC2 = RQS, then plain class-3.
        for classes in (
            dict(qc1=family, qc2=family),
            dict(qc1=(), qc2=family),
            dict(qc1=(), qc2=None),
        ):
            try:
                return CapacitatedRqs(adversary, family, **classes, **kwargs)
            except PropertyViolation:
                continue
        raise QuorumSystemError(
            "lifted family fails Property P1 under the given adversary"
        )


def _resilience(ground: Subset, family: Family) -> int:
    """Largest ``f`` with a surviving quorum for every ``f``-crash set."""
    ground = sorted(ground, key=repr)
    for f in range(len(ground) + 1):
        for dead in itertools.combinations(ground, f):
            dead_set = frozenset(dead)
            if not any(not (q & dead_set) for q in family):
                return f - 1
    return len(ground)


# -- the demo systems used by E16, the example and the registry ---------------


def demo_grid_system(heterogeneous: bool = True) -> QuorumSystem:
    """The 2×3 grid ``a*b*c + d*e*f`` used across docs, E16 and tests.

    Reads take a full row; writes (the dual) take one node per row.
    With ``heterogeneous=True`` the first row is fast (capacity 10) and
    the second slow (read 2, write 1) — the setting where the optimal
    strategy visibly beats uniform.  With ``heterogeneous=False`` all
    six nodes have capacity 4 (a control where uniform is near-optimal).
    """
    if heterogeneous:
        fast = dict(read_capacity=10, write_capacity=10)
        slow = dict(read_capacity=2, write_capacity=1)
    else:
        fast = slow = dict(read_capacity=4, write_capacity=4)
    a, b, c = (Node(x, **fast) for x in "abc")
    d, e, f = (Node(x, **slow) for x in "def")
    return QuorumSystem(reads=a * b * c + d * e * f)


def demo_grid_rqs(heterogeneous: bool = True) -> CapacitatedRqs:
    """The lifted :class:`CapacitatedRqs` of :func:`demo_grid_system`."""
    return demo_grid_system(heterogeneous).to_rqs()
