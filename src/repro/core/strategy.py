"""Load-optimal access strategies over quorum families (exact LP).

The paper's concluding section names "the load and availability of RQS"
as an open direction; this module makes the *load* half computable.  An
access strategy is a probability distribution over quorums; its load is
the maximum, over nodes, of the expected per-operation work landing on
that node (Naor–Wool).  The optimal strategy minimizes that peak, and
``capacity = 1 / load`` predicts the sustainable system throughput in
operations per unit of the slowest node's work.

Everything here is **exact**: weights are :class:`fractions.Fraction`
values, distributions sum to 1 with no float error, and the optimum is
found by a small built-in two-phase simplex (Bland's rule, hence
terminating and deterministic) — no external solver, which matters both
for the no-new-dependency constraint and for byte-identical sweeps
across executor backends.

The capacity model: node ``x`` has a read capacity ``rc(x)`` and a write
capacity ``wc(x)`` (operations per time unit).  Under read fraction
``fr`` and distributions ``p_r`` over read quorums and ``p_w`` over
write quorums, the load of ``x`` is

    ``fr · Σ_{r ∋ x} p_r(r) / rc(x)  +  (1 − fr) · Σ_{w ∋ x} p_w(w) / wc(x)``

— the expected time ``x`` spends serving one system-wide operation.
:func:`optimal_strategy` solves the LP ``minimize L`` subject to every
node's load ≤ ``L`` and both distributions summing to 1.

The paper's storage protocol uses a *single* quorum family; pass the
same family as both ``read_quorums`` and ``write_quorums`` (the helper
:func:`optimal_single_load` does exactly that for unit capacities, and
is what makes :func:`repro.core.metrics.system_load` exact).
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.properties import normalize_family
from repro.errors import QuorumSystemError

Subset = FrozenSet[Hashable]
Weights = Tuple[Tuple[Subset, Fraction], ...]
CapacityMap = Optional[Mapping[Hashable, Union[int, Fraction]]]

ZERO = Fraction(0)
ONE = Fraction(1)


# -- exact two-phase simplex ---------------------------------------------------

def _pivot(rows, obj, basis, pr, pc) -> None:
    """Pivot the tableau on row ``pr``, column ``pc`` (all Fractions)."""
    pivot = rows[pr][pc]
    rows[pr] = [v / pivot for v in rows[pr]]
    for i, row in enumerate(rows):
        if i != pr and row[pc]:
            factor = row[pc]
            rows[i] = [a - factor * b for a, b in zip(row, rows[pr])]
    if obj[pc]:
        factor = obj[pc]
        obj[:] = [a - factor * b for a, b in zip(obj, rows[pr])]
    basis[pr] = pc


def _optimize(rows, obj, basis, n_cols) -> None:
    """Run simplex iterations under Bland's rule until optimal.

    Entering variable: the lowest-index column with a negative reduced
    cost; leaving variable: the minimum-ratio row, ties broken by the
    lowest basic-variable index.  Bland's rule never cycles, so this
    terminates on every input.
    """
    while True:
        pc = next((j for j in range(n_cols) if obj[j] < 0), None)
        if pc is None:
            return
        candidates = [
            (rows[i][-1] / rows[i][pc], basis[i], i)
            for i in range(len(rows))
            if rows[i][pc] > 0
        ]
        if not candidates:
            raise QuorumSystemError("strategy LP is unbounded")
        _, _, pr = min(candidates)
        _pivot(rows, obj, basis, pr, pc)


def _reduced_costs(costs, rows, basis, n_cols) -> List[Fraction]:
    """The objective row ``c_j − c_B·A_j`` (rhs slot holds −objective)."""
    obj = [
        costs[j] - sum(
            (costs[basis[i]] * rows[i][j] for i in range(len(rows))), ZERO
        )
        for j in range(n_cols)
    ]
    obj.append(-sum(
        (costs[basis[i]] * rows[i][-1] for i in range(len(rows))), ZERO
    ))
    return obj


def simplex_minimize(
    costs: Sequence[Fraction],
    a_ub: Sequence[Sequence[Fraction]],
    b_ub: Sequence[Fraction],
    a_eq: Sequence[Sequence[Fraction]],
    b_eq: Sequence[Fraction],
) -> Tuple[Fraction, List[Fraction]]:
    """Minimize ``costs · x`` s.t. ``a_ub x ≤ b_ub``, ``a_eq x = b_eq``,
    ``x ≥ 0`` — exact over Fractions, deterministic (Bland's rule).

    Returns ``(optimal value, x)``.  Raises
    :class:`~repro.errors.QuorumSystemError` on infeasible/unbounded
    programs (which the strategy LPs never are, but the solver is
    honest about its domain).
    """
    n = len(costs)
    rows: List[List[Fraction]] = []
    artificials: List[int] = []
    structural = n
    # Count slack columns first so indices are stable.
    n_slack = len(a_ub)
    total = structural + n_slack  # artificials appended after
    basis: List[int] = []
    pending: List[Tuple[List[Fraction], bool]] = []
    for i, (coeffs, rhs) in enumerate(zip(a_ub, b_ub)):
        row = list(coeffs) + [ZERO] * n_slack
        row[structural + i] = ONE
        if rhs < 0:
            row = [-v for v in row]
            rhs = -rhs
            pending.append((row + [rhs], True))   # needs artificial
        else:
            pending.append((row + [rhs], False))  # slack is basic
        # mark slack index for the non-artificial case
    for coeffs, rhs in zip(a_eq, b_eq):
        row = list(coeffs) + [ZERO] * n_slack
        if rhs < 0:
            row = [-v for v in row]
            rhs = -rhs
        pending.append((row + [rhs], True))
    for row, needs_artificial in pending:
        if needs_artificial:
            index = total + len(artificials)
            artificials.append(index)
            basis.append(index)
        else:
            # the slack column that is +1 in this row
            basis.append(next(
                j for j in range(structural, total) if row[j] == ONE
            ))
        rows.append(row)
    n_cols = total + len(artificials)
    # Widen rows with artificial columns.
    for i, row in enumerate(rows):
        extra = [ZERO] * len(artificials)
        rows[i] = row[:-1] + extra + [row[-1]]
        if basis[i] >= total:
            rows[i][basis[i]] = ONE

    if artificials:
        phase1 = [ZERO] * n_cols
        for j in artificials:
            phase1[j] = ONE
        obj = _reduced_costs(phase1, rows, basis, n_cols)
        _optimize(rows, obj, basis, n_cols)
        if -obj[-1] != 0:
            raise QuorumSystemError("strategy LP is infeasible")
        # Pivot any lingering artificial out of the basis (degenerate
        # rows) or drop the row entirely if it has no structural pivot.
        for i in range(len(rows) - 1, -1, -1):
            if basis[i] in artificials:
                pc = next(
                    (j for j in range(total) if rows[i][j] != 0), None
                )
                if pc is None:
                    del rows[i]
                    del basis[i]
                else:
                    _pivot(rows, obj, basis, i, pc)
        # Freeze artificial columns at zero.
        for i, row in enumerate(rows):
            rows[i] = row[:total] + [row[-1]]
        n_cols = total

    full_costs = list(costs) + [ZERO] * (n_cols - n)
    obj = _reduced_costs(full_costs, rows, basis, n_cols)
    _optimize(rows, obj, basis, n_cols)
    solution = [ZERO] * n
    for i, b in enumerate(basis):
        if b < n:
            solution[b] = rows[i][-1]
    value = sum(
        (c * x for c, x in zip(costs, solution)), ZERO
    )
    return value, solution


# -- distributions and the Strategy object ------------------------------------

def _as_fraction(value: Union[int, float, str, Fraction]) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value)


def _capacity(caps: CapacityMap, node: Hashable) -> Fraction:
    if caps is None:
        return ONE
    value = _as_fraction(caps.get(node, 1))
    if value <= 0:
        raise QuorumSystemError(
            f"node {node!r} has non-positive capacity {value}"
        )
    return value


def uniform_distribution(quorums: Sequence) -> Weights:
    """The exact uniform distribution over a (normalized) family."""
    family = normalize_family(quorums)
    if not family:
        raise QuorumSystemError("need at least one quorum")
    weight = Fraction(1, len(family))
    return tuple((q, weight) for q in family)


def peak_load(
    read_weights: Weights,
    write_weights: Weights,
    read_fraction: Fraction,
    read_capacity: CapacityMap = None,
    write_capacity: CapacityMap = None,
) -> Fraction:
    """The exact peak per-node load induced by a pair of distributions."""
    fr = _as_fraction(read_fraction)
    per_node: Dict[Hashable, Fraction] = {}
    for quorum, weight in read_weights:
        for node in quorum:
            per_node[node] = per_node.get(node, ZERO) + (
                fr * weight / _capacity(read_capacity, node)
            )
    for quorum, weight in write_weights:
        for node in quorum:
            per_node[node] = per_node.get(node, ZERO) + (
                (ONE - fr) * weight / _capacity(write_capacity, node)
            )
    if not per_node:
        raise QuorumSystemError("strategy has no quorums")
    return max(per_node.values())


def _check_distribution(weights: Weights, label: str) -> None:
    if not weights:
        raise QuorumSystemError(f"{label} distribution is empty")
    total = ZERO
    for quorum, weight in weights:
        if not isinstance(weight, Fraction):
            raise QuorumSystemError(
                f"{label} weight for {sorted(map(repr, quorum))} is "
                f"{type(weight).__name__}, not an exact Fraction"
            )
        if weight < 0:
            raise QuorumSystemError(f"{label} weight {weight} is negative")
        total += weight
    if total != 1:
        raise QuorumSystemError(
            f"{label} distribution sums to {total}, not exactly 1"
        )


@dataclass(frozen=True)
class Strategy:
    """A validated access strategy: exact quorum distributions.

    ``read_weights`` / ``write_weights`` map quorums to
    :class:`~fractions.Fraction` probabilities that sum to exactly 1
    (validated on construction — no float drift, ever).  ``load`` is
    the peak per-node load the strategy induces under ``read_fraction``
    and the capacities it was computed for; ``capacity = 1 / load`` is
    the predicted sustainable throughput.  The object is frozen and
    picklable, so it can ride inside a :class:`ScenarioSpec` across
    the multiprocessing sweep backend.
    """

    read_weights: Weights
    write_weights: Weights
    read_fraction: Fraction = field(default_factory=lambda: Fraction(1, 2))
    load: Optional[Fraction] = None

    def __post_init__(self):
        object.__setattr__(
            self, "read_weights", tuple(
                (frozenset(q), w) for q, w in self.read_weights
            )
        )
        object.__setattr__(
            self, "write_weights", tuple(
                (frozenset(q), w) for q, w in self.write_weights
            )
        )
        _check_distribution(self.read_weights, "read")
        _check_distribution(self.write_weights, "write")
        object.__setattr__(
            self, "read_fraction", _as_fraction(self.read_fraction)
        )
        if not ZERO <= self.read_fraction <= ONE:
            raise QuorumSystemError(
                f"read fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.load is not None:
            object.__setattr__(self, "load", _as_fraction(self.load))

    # -- predicted performance ----------------------------------------------

    @property
    def capacity(self) -> Optional[Fraction]:
        """Predicted throughput ``1 / load`` (None when load unknown/0)."""
        if self.load is None or self.load == 0:
            return None
        return ONE / self.load

    def quorums(self) -> Tuple[Subset, ...]:
        """Every quorum carrying positive weight (either direction)."""
        positive = {q for q, w in self.read_weights if w > 0}
        positive |= {q for q, w in self.write_weights if w > 0}
        return normalize_family(positive)

    # -- seeded draws --------------------------------------------------------

    def _cumulative(self, weights: Weights):
        quorums = [q for q, _ in weights]
        edges: List[float] = []
        acc = ZERO
        for _, weight in weights:
            acc += weight
            edges.append(float(acc))
        return quorums, edges

    def draw_read(self, rng: random.Random) -> Subset:
        """One read quorum drawn from the read distribution."""
        quorums, edges = self._cumulative(self.read_weights)
        return quorums[min(bisect_right(edges, rng.random()),
                           len(quorums) - 1)]

    def draw_write(self, rng: random.Random) -> Subset:
        """One write quorum drawn from the write distribution."""
        quorums, edges = self._cumulative(self.write_weights)
        return quorums[min(bisect_right(edges, rng.random()),
                           len(quorums) - 1)]

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-safe dict that :meth:`from_json` restores exactly."""
        def dump(weights: Weights):
            return [
                {"quorum": sorted(q, key=repr), "weight": str(w)}
                for q, w in weights
            ]

        return {
            "read_weights": dump(self.read_weights),
            "write_weights": dump(self.write_weights),
            "read_fraction": str(self.read_fraction),
            "load": None if self.load is None else str(self.load),
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "Strategy":
        def load_weights(rows):
            return tuple(
                (frozenset(row["quorum"]), Fraction(row["weight"]))
                for row in rows
            )

        raw_load = payload.get("load")
        return cls(
            read_weights=load_weights(payload["read_weights"]),
            write_weights=load_weights(payload["write_weights"]),
            read_fraction=Fraction(payload["read_fraction"]),
            load=None if raw_load is None else Fraction(raw_load),
        )


# -- strategy construction -----------------------------------------------------

def uniform_strategy(
    read_quorums: Sequence,
    write_quorums: Optional[Sequence] = None,
    read_fraction: Union[Fraction, float, str] = Fraction(1, 2),
    read_capacity: CapacityMap = None,
    write_capacity: CapacityMap = None,
) -> Strategy:
    """The uniform strategy over the given families, with its exact load."""
    reads = uniform_distribution(read_quorums)
    writes = (
        reads if write_quorums is None
        else uniform_distribution(write_quorums)
    )
    fr = _as_fraction(read_fraction)
    return Strategy(
        read_weights=reads,
        write_weights=writes,
        read_fraction=fr,
        load=peak_load(reads, writes, fr, read_capacity, write_capacity),
    )


def optimal_strategy(
    read_quorums: Sequence,
    write_quorums: Optional[Sequence] = None,
    read_fraction: Union[Fraction, float, str] = Fraction(1, 2),
    read_capacity: CapacityMap = None,
    write_capacity: CapacityMap = None,
) -> Strategy:
    """The load-optimal strategy (exact LP over Fractions).

    Variables: one probability per read quorum, one per write quorum,
    plus the peak load ``L``; minimize ``L`` subject to every node's
    load ≤ ``L`` and both distributions summing to 1.  Deterministic:
    families and nodes are sorted before the LP is built, and the
    simplex pivots by Bland's rule.
    """
    reads = normalize_family(read_quorums)
    writes = (
        reads if write_quorums is None else normalize_family(write_quorums)
    )
    if not reads or not writes:
        raise QuorumSystemError("need at least one quorum per direction")
    fr = _as_fraction(read_fraction)
    if not ZERO <= fr <= ONE:
        raise QuorumSystemError(
            f"read fraction must be in [0, 1], got {fr}"
        )
    nodes = sorted(set().union(*reads, *writes), key=repr)
    n_r, n_w = len(reads), len(writes)
    n_vars = n_r + n_w + 1  # [p_r..., p_w..., L]
    load_col = n_r + n_w

    a_ub: List[List[Fraction]] = []
    b_ub: List[Fraction] = []
    for node in nodes:
        row = [ZERO] * n_vars
        rc = _capacity(read_capacity, node)
        wc = _capacity(write_capacity, node)
        for j, quorum in enumerate(reads):
            if node in quorum:
                row[j] = fr / rc
        for j, quorum in enumerate(writes):
            if node in quorum:
                row[n_r + j] += (ONE - fr) / wc
        row[load_col] = -ONE
        a_ub.append(row)
        b_ub.append(ZERO)
    a_eq = [
        [ONE] * n_r + [ZERO] * n_w + [ZERO],
        [ZERO] * n_r + [ONE] * n_w + [ZERO],
    ]
    b_eq = [ONE, ONE]
    costs = [ZERO] * (n_r + n_w) + [ONE]
    value, solution = simplex_minimize(costs, a_ub, b_ub, a_eq, b_eq)
    return Strategy(
        read_weights=tuple(
            (q, solution[j]) for j, q in enumerate(reads)
        ),
        write_weights=tuple(
            (q, solution[n_r + j]) for j, q in enumerate(writes)
        ),
        read_fraction=fr,
        load=value,
    )


def optimal_single_load(
    quorums: Sequence, capacity: CapacityMap = None
) -> Fraction:
    """The exact Naor–Wool load of a single quorum family.

    One distribution over one family (the paper's storage protocol has
    no read/write split); with unit capacities this is the classical
    load, and :func:`repro.core.metrics.system_load` delegates here.
    """
    strategy = optimal_strategy(
        quorums, quorums, read_fraction=ONE,
        read_capacity=capacity, write_capacity=capacity,
    )
    return strategy.load


# -- per-client seeded selection ----------------------------------------------

def selector_seed(seed: int, pid: Hashable) -> int:
    """The dedicated strategy-RNG seed for one client.

    Strategy draws live on their own crc32-derived stream (mirroring
    :func:`repro.scenarios.workloads.client_seed`), so they consume
    **zero** draws from the workload RNGs — every pre-strategy spec
    keeps its byte-identical schedule and golden fingerprint.
    """
    return zlib.crc32(f"strategy:{seed}:{pid}".encode()) & 0x7FFFFFFF


class QuorumSelector:
    """Per-client quorum picker: seeded draws from a :class:`Strategy`.

    Each client owns one selector (and hence one RNG stream); a draw is
    made once per operation and reused for every round of that
    operation, so an operation's rounds and write-backs all target the
    same quorum.
    """

    def __init__(self, strategy: Strategy, seed: int, pid: Hashable):
        self.strategy = strategy
        self._rng = random.Random(selector_seed(seed, pid))

    def next_read(self) -> Subset:
        return self.strategy.draw_read(self._rng)

    def next_write(self) -> Subset:
        return self.strategy.draw_write(self._rng)
