"""Load and availability of quorum systems (Naor–Wool style).

The paper's concluding section lists "the load and availability of RQS"
as an open research direction; these metrics power the ablation bench
(experiment E13 in the README index).

* **Load** (:func:`system_load`): the minimum over access strategies of
  the maximum access probability of any element — computed *exactly* by
  the LP in :mod:`repro.core.strategy` (a :class:`~fractions.Fraction`
  is returned).  For the symmetric threshold systems the optimum equals
  ``(n − i)/n`` for ``Q_i`` families; for irregular explicit families it
  can undercut the old candidate-strategy heuristic, which is kept as
  :func:`heuristic_system_load` for the ablation comparison.
* **Availability** (:func:`failure_probability`): the probability that no
  quorum is fully alive when each element fails independently with
  probability ``p`` — computed exactly by inclusion–exclusion for small
  families, or by enumeration over the ``2^n`` failure patterns when the
  family is large but the universe is small.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Sequence, Tuple

from repro.core.adversary import as_subset
from repro.core.rqs import RefinedQuorumSystem
from repro.core.strategy import optimal_single_load

Subset = FrozenSet[Hashable]


def uniform_strategy(quorums: Sequence[Subset]) -> Dict[Subset, Fraction]:
    """The uniform access strategy over a quorum family — exact
    :class:`~fractions.Fraction` weights that sum to exactly 1."""
    if not quorums:
        raise ValueError("need at least one quorum")
    weight = Fraction(1, len(quorums))
    return {q: weight for q in quorums}


def strategy_load(quorums: Sequence[Subset], strategy: Dict[Subset, Fraction]):
    """The load induced by ``strategy``: max over elements of the summed
    probability of quorums containing that element.  Exact when the
    weights are Fractions (sums stay in ℚ); floats pass through."""
    ground = set()
    for quorum in quorums:
        ground |= quorum
    per_element = {e: 0 for e in ground}
    for quorum, weight in strategy.items():
        for element in quorum:
            per_element[element] += weight
    return max(per_element.values())


def heuristic_system_load(rqs: RefinedQuorumSystem, cls: int = 3):
    """The pre-LP candidate-strategy bound (kept for regression cover).

    The best of two candidate strategies — uniform over the
    minimum-cardinality quorums, uniform over the whole family.  For
    symmetric (threshold) families this is optimal; for irregular
    explicit families it is only an upper bound on the LP optimum, which
    is why :func:`system_load` now delegates to the exact solver.
    """
    family = rqs.class_quorums(cls)
    if not family:
        raise ValueError(f"class {cls} has no quorums")
    minimal_size = min(len(q) for q in family)
    minimal = [q for q in family if len(q) == minimal_size]
    candidates = [uniform_strategy(minimal), uniform_strategy(list(family))]
    return min(strategy_load(family, s) for s in candidates)


def system_load(rqs: RefinedQuorumSystem, cls: int = 3) -> Fraction:
    """The exact load of the class-``cls`` quorum family.

    Solved as a linear program over exact rationals by
    :func:`repro.core.strategy.optimal_single_load` — never higher than
    :func:`heuristic_system_load`, and equal to ``(n − i)/n`` for the
    threshold constructions.
    """
    family = rqs.class_quorums(cls)
    if not family:
        raise ValueError(f"class {cls} has no quorums")
    return optimal_single_load(family)


def failure_probability(
    rqs: RefinedQuorumSystem, p: float, cls: int = 3
) -> float:
    """Probability that *no* class-``cls`` quorum is fully alive when each
    server fails independently with probability ``p``.

    Exact, via enumeration of failure patterns restricted to the union of
    the family (elements outside every quorum are irrelevant).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"failure probability must be in [0,1], got {p}")
    family = rqs.class_quorums(cls)
    if not family:
        raise ValueError(f"class {cls} has no quorums")
    relevant = sorted(set().union(*family), key=repr)
    n = len(relevant)
    dead_probability = 0.0
    # Enumerate alive-subsets of the relevant universe.
    for alive_size in range(n + 1):
        for alive in combinations(relevant, alive_size):
            alive_set = frozenset(alive)
            if any(q <= alive_set for q in family):
                continue
            weight = (1 - p) ** alive_size * p ** (n - alive_size)
            dead_probability += weight
    return dead_probability


def availability(rqs: RefinedQuorumSystem, p: float, cls: int = 3) -> float:
    """``1 − failure_probability`` — chance some class-``cls`` quorum is
    fully alive under i.i.d. element failure probability ``p``."""
    return 1.0 - failure_probability(rqs, p, cls)


def best_case_latency_profile(
    rqs: RefinedQuorumSystem, p: float, latencies: Tuple[int, int, int]
) -> float:
    """Expected best-case latency when each server is up with prob. 1−p.

    ``latencies = (l1, l2, l3)`` are the class-1/2/3 best-case latencies
    (e.g. rounds ``(1, 2, 3)`` for storage, message delays ``(2, 3, 4)``
    for consensus).  The expectation conditions on *some* quorum being
    alive; returns ``float('inf')`` when even class 3 is never available.
    """
    l1, l2, l3 = latencies
    a1 = availability(rqs, p, cls=1) if rqs.qc1 else 0.0
    a2 = availability(rqs, p, cls=2) if rqs.qc2 else 0.0
    a3 = availability(rqs, p, cls=3)
    if a3 == 0.0:
        return float("inf")
    # P(best available class is 1/2/3):
    p1 = a1
    p2 = max(a2 - a1, 0.0)
    p3 = max(a3 - a2, 0.0)
    return (p1 * l1 + p2 * l2 + p3 * l3) / a3


def as_quorum_family(quorums: Sequence) -> Tuple[Subset, ...]:
    """Convenience normalizer used by benches."""
    return tuple(as_subset(q) for q in quorums)
