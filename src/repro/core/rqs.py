"""The refined quorum system abstraction (Definition 2 of the paper).

A :class:`RefinedQuorumSystem` bundles

* a ground set ``S`` of servers,
* an adversary structure ``B`` over ``S``,
* a family ``RQS`` of quorums (subsets of ``S``), and
* two nested quorum classes ``QC1 ⊆ QC2 ⊆ RQS``

and validates Properties 1–3 on construction (unless deferred).  Quorums
that are in ``QC1`` are *class-1*, those in ``QC2 \\ QC1`` are *class-2*
and the rest are *class-3*; per the paper, class-1 quorums are also
class-2 quorums which are also class-3 quorums, so :meth:`quorum_class`
returns the *best* (smallest-numbered) class of a quorum.
"""

from __future__ import annotations

from typing import (
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.adversary import Adversary, as_subset
from repro.core import properties as props
from repro.errors import PropertyViolation, QuorumSystemError

Subset = FrozenSet[Hashable]


class RefinedQuorumSystem:
    """A validated refined quorum system.

    Parameters
    ----------
    adversary:
        The adversary structure ``B`` (its ground set is taken as ``S``).
    quorums:
        The family ``RQS`` of all quorums (class-3 view of the system).
    qc1, qc2:
        The class-1 and class-2 quorum families.  Membership is by set
        equality; each must be a sub-family of ``quorums`` and
        ``qc1 ⊆ qc2`` must hold.
    validate:
        When ``True`` (default) Properties 1–3 are checked eagerly and a
        :class:`~repro.errors.PropertyViolation` is raised on failure.
        Pass ``False`` to build deliberately-broken systems for the
        lower-bound experiments, then call :meth:`violations` yourself.
    """

    def __init__(
        self,
        adversary: Adversary,
        quorums: Iterable[Iterable[Hashable]],
        qc1: Iterable[Iterable[Hashable]] = (),
        qc2: Optional[Iterable[Iterable[Hashable]]] = None,
        validate: bool = True,
    ):
        self._adversary = adversary
        self._quorums = props.normalize_family(quorums)
        self._qc1 = props.normalize_family(qc1)
        if qc2 is None:
            # Per the paper QC1 ⊆ QC2; with no explicit QC2 the smallest
            # legal choice is QC2 = QC1.
            self._qc2 = self._qc1
        else:
            self._qc2 = props.normalize_family(qc2)
        self._check_shape()
        if validate:
            violation = self.first_violation()
            if violation is not None:
                name, witness = violation
                raise PropertyViolation(name, (witness,), witness.describe())

    # -- construction invariants --------------------------------------------

    def _check_shape(self) -> None:
        ground = self._adversary.ground_set
        if not self._quorums:
            raise QuorumSystemError("RQS must contain at least one quorum")
        for quorum in self._quorums:
            if not quorum <= ground:
                raise QuorumSystemError(
                    f"quorum {set(quorum)} is not a subset of S"
                )
            if not quorum:
                raise QuorumSystemError("quorums must be non-empty")
        quorum_set = set(self._quorums)
        if not set(self._qc2) <= quorum_set:
            raise QuorumSystemError("QC2 must be a sub-family of RQS")
        if not set(self._qc1) <= set(self._qc2):
            raise QuorumSystemError("QC1 must be a sub-family of QC2")

    # -- basic accessors -----------------------------------------------------

    @property
    def adversary(self) -> Adversary:
        return self._adversary

    @property
    def ground_set(self) -> Subset:
        return self._adversary.ground_set

    @property
    def quorums(self) -> Tuple[Subset, ...]:
        """All quorums (the class-3 view, ``QC3 = RQS``)."""
        return self._quorums

    @property
    def qc1(self) -> Tuple[Subset, ...]:
        return self._qc1

    @property
    def qc2(self) -> Tuple[Subset, ...]:
        return self._qc2

    def class_quorums(self, cls: int) -> Tuple[Subset, ...]:
        """The family ``QC_cls`` for ``cls ∈ {1, 2, 3}`` (``QC3 = RQS``)."""
        if cls == 1:
            return self._qc1
        if cls == 2:
            return self._qc2
        if cls == 3:
            return self._quorums
        raise ValueError(f"quorum class must be 1, 2 or 3, got {cls}")

    def is_quorum(self, candidate: Iterable[Hashable]) -> bool:
        return as_subset(candidate) in set(self._quorums)

    def quorum_class(self, quorum: Iterable[Hashable]) -> int:
        """Best (lowest) class of ``quorum``; raises if it is not a quorum."""
        target = as_subset(quorum)
        if target in set(self._qc1):
            return 1
        if target in set(self._qc2):
            return 2
        if target in set(self._quorums):
            return 3
        raise QuorumSystemError(f"{set(target)} is not a quorum of this RQS")

    def quorums_of_exact_class(self, cls: int) -> Tuple[Subset, ...]:
        """Quorums whose *best* class is exactly ``cls``."""
        return tuple(
            q for q in self._quorums if self.quorum_class(q) == cls
        )

    # -- predicates re-exported for algorithm code ---------------------------

    def is_basic(self, subset: Iterable[Hashable]) -> bool:
        """Definition 5: ``subset ∉ B``."""
        return self._adversary.is_basic(subset)

    def is_large(self, subset: Iterable[Hashable]) -> bool:
        """Definition 5: ``subset`` not covered by a union of two B-sets."""
        return self._adversary.is_large(subset)

    def p3a(self, q2: Subset, q: Subset, b: Subset) -> bool:
        return props.p3a(self._adversary, q2, q, b)

    def p3b(self, q2: Subset, q: Subset, b: Subset) -> bool:
        return props.p3b(self._qc1, q2, q, b)

    # -- validation ----------------------------------------------------------

    def first_violation(self):
        """Return ``(name, witness)`` for the first violated property.

        Checks Properties 1, 2, 3 in order; returns ``None`` when all hold.
        """
        w1 = props.check_property1(self._adversary, self._quorums)
        if w1 is not None:
            return ("P1", w1)
        w2 = props.check_property2(self._adversary, self._qc1, self._quorums)
        if w2 is not None:
            return ("P2", w2)
        w3 = props.check_property3(
            self._adversary, self._qc1, self._qc2, self._quorums
        )
        if w3 is not None:
            return ("P3", w3)
        return None

    def violations(self) -> Tuple[Tuple[str, object], ...]:
        """All violated properties with witnesses (possibly empty)."""
        found = []
        w1 = props.check_property1(self._adversary, self._quorums)
        if w1 is not None:
            found.append(("P1", w1))
        w2 = props.check_property2(self._adversary, self._qc1, self._quorums)
        if w2 is not None:
            found.append(("P2", w2))
        w3 = props.check_property3(
            self._adversary, self._qc1, self._qc2, self._quorums
        )
        if w3 is not None:
            found.append(("P3", w3))
        return tuple(found)

    def is_valid(self) -> bool:
        return self.first_violation() is None

    # -- quorum selection helpers (used by protocol clients) -----------------

    def responding_quorums(
        self, responders: Iterable[Hashable], cls: int = 3
    ) -> Tuple[Subset, ...]:
        """All class-``cls`` quorums fully contained in ``responders``.

        This is the "did some quorum of class *cls* respond?" test used
        throughout the storage and consensus algorithms.
        """
        got = as_subset(responders)
        return tuple(
            q for q in self.class_quorums(cls) if q <= got
        )

    def some_responding_quorum(
        self, responders: Iterable[Hashable], cls: int = 3
    ) -> Optional[Subset]:
        """An arbitrary (deterministic) responding class-``cls`` quorum."""
        candidates = self.responding_quorums(responders, cls)
        return candidates[0] if candidates else None

    def correct_quorum(
        self, faulty: Iterable[Hashable], cls: int = 3
    ) -> Optional[Subset]:
        """A class-``cls`` quorum avoiding every process in ``faulty``."""
        bad = as_subset(faulty)
        for quorum in self.class_quorums(cls):
            if not (quorum & bad):
                return quorum
        return None

    def __iter__(self) -> Iterator[Subset]:
        return iter(self._quorums)

    def __len__(self) -> int:
        return len(self._quorums)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RefinedQuorumSystem(|S|={len(self.ground_set)}, "
            f"|RQS|={len(self._quorums)}, |QC2|={len(self._qc2)}, "
            f"|QC1|={len(self._qc1)})"
        )


def describe(rqs: RefinedQuorumSystem) -> str:
    """A human-readable multi-line description of an RQS (for examples)."""
    lines = [
        f"Ground set S ({len(rqs.ground_set)}): {sorted(map(repr, rqs.ground_set))}",
        f"Quorums ({len(rqs.quorums)}):",
    ]
    for quorum in rqs.quorums:
        cls = rqs.quorum_class(quorum)
        lines.append(f"  class {cls}: {sorted(map(repr, quorum))}")
    status = "valid" if rqs.is_valid() else "INVALID"
    lines.append(f"Properties 1-3: {status}")
    return "\n".join(lines)
