"""Adversary structures (Definition 1 of the paper).

An *adversary structure* ``B`` for a ground set ``S`` is a family of subsets
of ``S`` that is closed under taking subsets: if ``B`` can be corrupted, so
can every subset of ``B``.  The elements of ``B`` are the sets of processes
that may simultaneously be Byzantine in a single execution.

Two concrete representations are provided:

* :class:`ThresholdAdversary` — the classical ``B_k`` structure containing
  every subset of cardinality at most ``k``.  Membership is O(1).
* :class:`ExplicitAdversary` — an arbitrary structure represented by its
  *maximal* elements; membership reduces to a subset check against the
  maximal sets.

Both expose the same small interface (:class:`Adversary`), which is all the
rest of the library relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import AbstractSet, FrozenSet, Hashable, Iterable, Iterator, Tuple

from repro.errors import AdversaryError

Element = Hashable
Subset = FrozenSet[Element]


def as_subset(elements: Iterable[Element]) -> Subset:
    """Normalize any iterable of elements into a ``frozenset``."""
    return frozenset(elements)


class Adversary(ABC):
    """Abstract adversary structure over a ground set ``S``.

    Subclasses must implement :meth:`contains` (membership of a subset in
    ``B``) and :meth:`maximal_sets` (the antichain of maximal elements).
    Everything else is derived.
    """

    def __init__(self, ground_set: Iterable[Element]):
        self._ground = as_subset(ground_set)
        if not self._ground:
            raise AdversaryError("ground set must be non-empty")

    @property
    def ground_set(self) -> Subset:
        """The set ``S`` the structure is defined over."""
        return self._ground

    @abstractmethod
    def contains(self, subset: Iterable[Element]) -> bool:
        """Return ``True`` iff ``subset`` is an element of ``B``."""

    @abstractmethod
    def maximal_sets(self) -> Tuple[Subset, ...]:
        """Return the maximal elements of ``B`` (an antichain).

        The empty structure ``B = {∅}`` is represented by ``(frozenset(),)``.
        """

    # -- derived operations -------------------------------------------------

    def __contains__(self, subset: AbstractSet[Element]) -> bool:
        return self.contains(subset)

    def is_basic(self, subset: Iterable[Element]) -> bool:
        """Definition 5: ``subset`` is *basic* iff it is **not** in ``B``.

        A basic subset contains at least one benign process in every
        execution (Lemma 1 / Lemma 17 of the paper).
        """
        return not self.contains(subset)

    def is_large(self, subset: Iterable[Element]) -> bool:
        """Definition 5: ``subset`` is *large* iff it is not covered by the
        union of any two elements of ``B``.

        A large subset always contains a basic subset of benign processes
        (Lemma 2 / Lemma 18 of the paper).
        """
        target = as_subset(subset)
        maxima = self.maximal_sets()
        for b1 in maxima:
            remainder = target - b1
            # target ⊆ b1 ∪ b2  ⇔  (target \ b1) ⊆ b2 for some b2 ∈ B.
            if self.contains(remainder):
                return False
        return True

    def enumerate(self) -> Iterator[Subset]:
        """Yield every element of ``B`` (exponential; small sets only)."""
        seen = set()
        for maximal in self.maximal_sets():
            for size in range(len(maximal) + 1):
                for combo in combinations(sorted(maximal, key=repr), size):
                    candidate = frozenset(combo)
                    if candidate not in seen:
                        seen.add(candidate)
                        yield candidate

    def restricted_to(self, subset: Iterable[Element]) -> "ExplicitAdversary":
        """The induced structure on a sub-universe ``subset`` of ``S``."""
        universe = as_subset(subset)
        if not universe <= self._ground:
            raise AdversaryError("restriction target is not a subset of S")
        maxima = tuple(
            frozenset(m & universe) for m in self.maximal_sets()
        )
        return ExplicitAdversary(universe, maxima)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        maxima = sorted(tuple(sorted(map(repr, m))) for m in self.maximal_sets())
        return f"{type(self).__name__}(|S|={len(self._ground)}, maxima={maxima})"


class ThresholdAdversary(Adversary):
    """The ``k``-bounded threshold adversary ``B_k``.

    Contains every subset of ``S`` of cardinality at most ``k``.  ``k = 0``
    yields the crash-only structure ``B = {∅}``.
    """

    def __init__(self, ground_set: Iterable[Element], k: int):
        super().__init__(ground_set)
        if k < 0:
            raise AdversaryError(f"threshold k must be >= 0, got {k}")
        if k > len(self._ground):
            raise AdversaryError(
                f"threshold k={k} exceeds |S|={len(self._ground)}"
            )
        self._k = k

    @property
    def k(self) -> int:
        """The corruption threshold."""
        return self._k

    def contains(self, subset: Iterable[Element]) -> bool:
        target = as_subset(subset)
        if not target <= self._ground:
            return False
        return len(target) <= self._k

    def maximal_sets(self) -> Tuple[Subset, ...]:
        if self._k == 0:
            return (frozenset(),)
        ordered = sorted(self._ground, key=repr)
        return tuple(
            frozenset(combo) for combo in combinations(ordered, self._k)
        )

    def is_large(self, subset: Iterable[Element]) -> bool:
        # For B_k, "not covered by a union of two elements" is simply a
        # cardinality check: |subset| > 2k.
        target = as_subset(subset)
        return len(target) > 2 * self._k

    def is_basic(self, subset: Iterable[Element]) -> bool:
        target = as_subset(subset)
        if not target <= self._ground:
            return True
        return len(target) > self._k


class ExplicitAdversary(Adversary):
    """An adversary structure given by an explicit collection of sets.

    The constructor accepts *any* family of subsets; it keeps only the
    maximal ones (the structure is the downward closure of those).  Passing
    an empty family yields ``B = {∅}`` — the crash-only adversary, which the
    paper writes as ``B = {∅}`` in Example 2.
    """

    def __init__(
        self,
        ground_set: Iterable[Element],
        corruptible: Iterable[Iterable[Element]] = (),
    ):
        super().__init__(ground_set)
        sets = [as_subset(c) for c in corruptible]
        for candidate in sets:
            if not candidate <= self._ground:
                raise AdversaryError(
                    f"corruptible set {set(candidate)!r} not within S"
                )
        self._maxima = _maximal_antichain(sets)

    def contains(self, subset: Iterable[Element]) -> bool:
        target = as_subset(subset)
        if not target <= self._ground:
            return False
        return any(target <= maximal for maximal in self._maxima)

    def maximal_sets(self) -> Tuple[Subset, ...]:
        return self._maxima

    @classmethod
    def from_threshold(
        cls, ground_set: Iterable[Element], k: int
    ) -> "ExplicitAdversary":
        """Materialize ``B_k`` explicitly (useful for cross-checking)."""
        threshold = ThresholdAdversary(ground_set, k)
        return cls(threshold.ground_set, threshold.maximal_sets())


def _maximal_antichain(sets: Iterable[Subset]) -> Tuple[Subset, ...]:
    """Reduce a family of sets to its maximal antichain.

    The empty family reduces to ``(frozenset(),)`` so the downward closure
    is ``{∅}`` rather than the (illegal) empty structure.
    """
    unique = sorted(set(sets), key=len, reverse=True)
    maxima: list[Subset] = []
    for candidate in unique:
        if not any(candidate < kept or candidate == kept for kept in maxima):
            maxima.append(candidate)
    if not maxima:
        maxima = [frozenset()]
    return tuple(maxima)
