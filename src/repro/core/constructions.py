"""Canonical refined-quorum-system constructions from the paper.

This module materializes every example of Section 2.2:

* :func:`majority_quorum_system` — Example 2 (crash-tolerant majorities).
* :func:`byzantine_quorum_system` — Example 3 (two-thirds quorums).
* :func:`dissemination_quorum_system` / :func:`masking_quorum_system` —
  Example 4 (Malkhi–Reiter systems as degenerate RQSs).
* :func:`fast_consensus_quorum_system` — Example 5 (``QC1 = QC2``).
* :func:`threshold_rqs` — Example 6: the general threshold family where
  quorums miss at most ``t`` servers, class-2 quorums miss at most ``r``
  and class-1 quorums miss at most ``q`` (``0 ≤ q ≤ r ≤ t``), under the
  ``B_k`` adversary.  :func:`threshold_rqs_predicted_valid` gives the
  paper's closed-form validity condition
  ``|S| > t + k + max(t, k + 2q, r + min(k, q))``.
* :func:`figure3_rqs` — Example 1 / Figure 3 (eight elements, ``k = 1``).
* :func:`example7_rqs` — Example 7 / Figure 4 (six servers, general
  non-threshold adversary).
* :func:`section12_rqs` — the 5-server system of the introductory
  Section 1.2 example (4-server fast quorums over crash failures).
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Hashable, Iterable, List, Sequence, Tuple

from repro.core.adversary import (
    Adversary,
    ExplicitAdversary,
    ThresholdAdversary,
    as_subset,
)
from repro.core.rqs import RefinedQuorumSystem
from repro.errors import QuorumSystemError

Subset = FrozenSet[Hashable]


def subsets_missing_at_most(
    ground: Iterable[Hashable], i: int
) -> Tuple[Subset, ...]:
    """The family ``Q_i`` = all subsets of ``S`` with ``≥ |S| − i`` elements.

    This is the paper's ``Q_i`` notation (Section 2.2).  For determinism
    the result is sorted by (size, sorted members).
    """
    members = sorted(as_subset(ground), key=repr)
    n = len(members)
    if i < 0 or i >= n:
        raise QuorumSystemError(
            f"missing-count i={i} must satisfy 0 <= i < |S|={n}"
        )
    family: List[Subset] = []
    for size in range(n - i, n + 1):
        family.extend(frozenset(c) for c in combinations(members, size))
    return tuple(sorted(family, key=lambda s: (len(s), sorted(map(repr, s)))))


def default_servers(n: int) -> Tuple[int, ...]:
    """Server ids ``1..n`` used by all canonical constructions."""
    if n <= 0:
        raise QuorumSystemError(f"need a positive server count, got {n}")
    return tuple(range(1, n + 1))


# ---------------------------------------------------------------------------
# Examples 2-5: degenerate / classical systems expressed as RQSs
# ---------------------------------------------------------------------------

def majority_quorum_system(n: int) -> RefinedQuorumSystem:
    """Example 2: every majority is a quorum, ``B = {∅}``, ``QC1=QC2=∅``.

    The quorum system behind classical crash-tolerant algorithms (ABD,
    Paxos, ...): ``RQS = Q_⌊(n−1)/2⌋``.
    """
    servers = default_servers(n)
    adversary = ExplicitAdversary(servers)  # B = {∅}
    quorums = subsets_missing_at_most(servers, (n - 1) // 2)
    return RefinedQuorumSystem(adversary, quorums)


def byzantine_quorum_system(n: int) -> RefinedQuorumSystem:
    """Example 3: two-thirds quorums under ``B_⌊(n−1)/3⌋``, ``QC1=QC2=∅``."""
    servers = default_servers(n)
    k = (n - 1) // 3
    adversary = ThresholdAdversary(servers, k)
    quorums = subsets_missing_at_most(servers, k)
    return RefinedQuorumSystem(adversary, quorums)


def dissemination_quorum_system(
    adversary: Adversary, quorums: Iterable[Iterable[Hashable]]
) -> RefinedQuorumSystem:
    """Example 4 (first half): a dissemination quorum system in the sense of
    Malkhi–Reiter is exactly an RQS with ``QC1 = QC2 = ∅``."""
    return RefinedQuorumSystem(adversary, quorums, qc1=(), qc2=())


def masking_quorum_system(
    adversary: Adversary, quorums: Iterable[Iterable[Hashable]]
) -> RefinedQuorumSystem:
    """Example 4 (second half): a masking quorum system is an RQS with
    ``QC1 = ∅`` and ``QC2 = RQS``.

    With ``QC1 = ∅``, P3b can never hold, so Property 3 degenerates to
    P3a for every quorum pair — the Malkhi–Reiter masking condition.
    """
    quorums = tuple(as_subset(q) for q in quorums)
    return RefinedQuorumSystem(adversary, quorums, qc1=(), qc2=quorums)


def fast_consensus_quorum_system(
    n: int, t: int, q: int, k: int = 0
) -> RefinedQuorumSystem:
    """Example 5: ``∅ ≠ QC1 = QC2 = Q_q`` over ``RQS = Q_t`` under ``B_k``.

    The quorum system behind Fast Paxos-style algorithms.  Valid iff
    ``n > 2t + k`` (Property 1) and ``n > 2q + t + 2k`` (Property 2) —
    Lamport's lower bounds for asynchronous consensus.
    """
    if not 0 <= q <= t:
        raise QuorumSystemError(f"need 0 <= q <= t, got q={q}, t={t}")
    servers = default_servers(n)
    adversary = ThresholdAdversary(servers, k)
    quorums = subsets_missing_at_most(servers, t)
    fast = subsets_missing_at_most(servers, q)
    return RefinedQuorumSystem(adversary, quorums, qc1=fast, qc2=fast)


# ---------------------------------------------------------------------------
# Example 6: the full threshold family
# ---------------------------------------------------------------------------

def threshold_rqs(
    n: int, t: int, k: int, q: int, r: int, validate: bool = True
) -> RefinedQuorumSystem:
    """Example 6: ``RQS = Q_t``, ``QC2 = Q_r``, ``QC1 = Q_q`` under ``B_k``.

    ``0 ≤ q ≤ r ≤ t < n`` is required.  With ``validate=True`` the result
    is checked against Properties 1–3 (exponential in ``n``; keep
    ``n ≤ ~10``).  Use :func:`threshold_rqs_predicted_valid` for the
    closed-form condition when sweeping larger parameters.
    """
    if not 0 <= q <= r <= t < n:
        raise QuorumSystemError(
            f"need 0 <= q <= r <= t < n, got q={q}, r={r}, t={t}, n={n}"
        )
    servers = default_servers(n)
    adversary = ThresholdAdversary(servers, k)
    quorums = subsets_missing_at_most(servers, t)
    qc2 = subsets_missing_at_most(servers, r)
    qc1 = subsets_missing_at_most(servers, q)
    return RefinedQuorumSystem(
        adversary, quorums, qc1=qc1, qc2=qc2, validate=validate
    )


def threshold_rqs_predicted_valid(
    n: int, t: int, k: int, q: int, r: int
) -> bool:
    """The paper's closed-form validity condition for Example 6.

    The RQS of :func:`threshold_rqs` satisfies

    * Property 1 iff ``n > 2t + k``,
    * Property 2 iff ``n > t + 2k + 2q``,
    * Property 3 iff ``n > t + r + k + min(k, q)``,

    i.e. overall iff ``n > t + k + max(t, k + 2q, r + min(k, q))``.
    """
    return n > t + k + max(t, k + 2 * q, r + min(k, q))


def threshold_rqs_predicted_properties(
    n: int, t: int, k: int, q: int, r: int
) -> Tuple[bool, bool, bool]:
    """Per-property closed-form predictions ``(P1, P2, P3)`` for Example 6."""
    p1 = n > 2 * t + k
    p2 = n > t + 2 * k + 2 * q
    p3 = n > t + r + k + min(k, q)
    return (p1, p2, p3)


def pbft_style_rqs(t: int) -> RefinedQuorumSystem:
    """The "important instantiation" of Example 6: ``n = 3t + 1`` servers,
    ``k = t`` Byzantine, all quorums class-2 (``r = t``) and the full
    server set the only class-1 quorum (``q = 0``)."""
    return threshold_rqs(3 * t + 1, t, t, 0, t)


# ---------------------------------------------------------------------------
# Example 1 / Figure 3
# ---------------------------------------------------------------------------

def figure3_rqs() -> RefinedQuorumSystem:
    """The Figure 3 example: eight elements, adversary ``B_1``, 4 quorums.

    ``Q = {3,4,5,6,7}`` and ``Q' = {1,2,3,4,7,8}`` are class-3 quorums,
    ``Q2 = {1,2,3,5,6}`` is class 2 and ``Q1`` is class 1.  The printed
    figure does not unambiguously list ``Q1``'s members; we use
    ``Q1 = {2,5,6,7,8}``, which reproduces every intersection cardinality
    the caption states: ``|Q2 ∩ Q'| = |Q2 ∩ Q1| = 2k+1 = 3`` and
    ``|Q2 ∩ Q ∩ Q1| = k+1 = 2``, with ``Q1`` meeting every quorum in at
    least ``2k+1`` elements.
    """
    servers = default_servers(8)
    adversary = ThresholdAdversary(servers, 1)
    q = frozenset({3, 4, 5, 6, 7})
    q_prime = frozenset({1, 2, 3, 4, 7, 8})
    q2 = frozenset({1, 2, 3, 5, 6})
    q1 = frozenset({2, 5, 6, 7, 8})
    return RefinedQuorumSystem(
        adversary,
        quorums=(q, q_prime, q2, q1),
        qc1=(q1,),
        qc2=(q1, q2),
    )


def figure3_named_quorums() -> dict:
    """The Figure 3 quorums by the paper's names (for tests/benches)."""
    return {
        "Q": frozenset({3, 4, 5, 6, 7}),
        "Q'": frozenset({1, 2, 3, 4, 7, 8}),
        "Q2": frozenset({1, 2, 3, 5, 6}),
        "Q1": frozenset({2, 5, 6, 7, 8}),
    }


# ---------------------------------------------------------------------------
# Example 7 / Figure 4
# ---------------------------------------------------------------------------

def example7_servers() -> Tuple[str, ...]:
    return ("s1", "s2", "s3", "s4", "s5", "s6")


def example7_adversary() -> ExplicitAdversary:
    """The general (non-threshold) adversary of Example 7:
    ``B = closure({ {s1,s2}, {s3,s4}, {s2,s4} })``."""
    servers = example7_servers()
    return ExplicitAdversary(
        servers, ({"s1", "s2"}, {"s3", "s4"}, {"s2", "s4"})
    )


def example7_rqs() -> RefinedQuorumSystem:
    """Example 7: six servers, three quorums, general adversary.

    ``Q1 = {s2,s4,s5,s6}`` is class 1; ``Q2 = {s1,s2,s3,s4,s5}`` and
    ``Q'2 = {s1,s2,s3,s4,s6}`` are class 2.  This is the system whose
    Property 3 subtlety Figure 4's executions illustrate.
    """
    adversary = example7_adversary()
    q1 = frozenset({"s2", "s4", "s5", "s6"})
    q2 = frozenset({"s1", "s2", "s3", "s4", "s5"})
    q2_prime = frozenset({"s1", "s2", "s3", "s4", "s6"})
    return RefinedQuorumSystem(
        adversary,
        quorums=(q1, q2, q2_prime),
        qc1=(q1,),
        qc2=(q1, q2, q2_prime),
    )


def example7_named_quorums() -> dict:
    return {
        "Q1": frozenset({"s2", "s4", "s5", "s6"}),
        "Q2": frozenset({"s1", "s2", "s3", "s4", "s5"}),
        "Q'2": frozenset({"s1", "s2", "s3", "s4", "s6"}),
    }


# ---------------------------------------------------------------------------
# Section 1.2: the introductory five-server crash example
# ---------------------------------------------------------------------------

def section12_rqs() -> RefinedQuorumSystem:
    """The Section 1.2 system: 5 servers, ``t = 2`` crash failures.

    Quorums are all subsets of ≥ 3 servers; class-1 quorums (enabling
    single-round operations) are subsets of ≥ 4 servers; the paper's
    Section 5 remarks that 3-server subsets act as class-2 quorums in the
    two-round variant.  ``k = 0`` (crash-only).
    """
    return threshold_rqs(n=5, t=2, k=0, q=1, r=2)


def naive_section12_quorums() -> Tuple[Subset, ...]:
    """The *broken* fast-quorum choice of Figure 1: fast = any 3 servers.

    Used by the Figure 1 counterexample; note ``threshold_rqs(5,2,0,2,2)``
    would reject this via Property 2 (``n = 5 ≤ t + 2k + 2q = 6``), which
    is exactly the paper's point.
    """
    return subsets_missing_at_most(default_servers(5), 2)
