"""Core refined-quorum-system abstractions (the paper's contribution).

Public surface:

* :class:`~repro.core.adversary.Adversary` and its two implementations,
  :class:`~repro.core.adversary.ThresholdAdversary` (``B_k``) and
  :class:`~repro.core.adversary.ExplicitAdversary`.
* :class:`~repro.core.rqs.RefinedQuorumSystem` — Definition 2 with full
  validation and witness extraction.
* :mod:`~repro.core.constructions` — every example of Section 2.2.
* :mod:`~repro.core.search` — RQS discovery for a given adversary.
* :mod:`~repro.core.metrics` — load/availability (Section 6 directions).
"""

from repro.core.adversary import (
    Adversary,
    ExplicitAdversary,
    ThresholdAdversary,
    as_subset,
)
from repro.core.asymmetric import AsymmetricRQS, threshold_asymmetric
from repro.core.rqs import RefinedQuorumSystem, describe
from repro.core.properties import (
    P1Witness,
    P2Witness,
    P3Witness,
    check_property1,
    check_property2,
    check_property3,
    negate_property3,
    p3a,
    p3b,
)

__all__ = [
    "Adversary",
    "ExplicitAdversary",
    "ThresholdAdversary",
    "AsymmetricRQS",
    "threshold_asymmetric",
    "RefinedQuorumSystem",
    "describe",
    "as_subset",
    "P1Witness",
    "P2Witness",
    "P3Witness",
    "check_property1",
    "check_property2",
    "check_property3",
    "negate_property3",
    "p3a",
    "p3b",
]
