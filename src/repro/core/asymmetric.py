"""Asymmetric read/write refined quorum systems — a Section 6 extension.

The paper's concluding section lists "the extension of RQS with respect
to asymmetric read and write quorums" as an open direction.  This module
provides a first-class construction for it: distinct *write* and *read*
quorum families, with the refined classes living on the read side (reads
are what the best-case machinery accelerates), and the intersection
properties re-stated across the two families:

* **AP1** — every read quorum intersects every write quorum in a basic
  subset (the cross-family analogue of Property 1; within-family
  intersection is *not* required, which is exactly the saving
  asymmetric systems offer).
* **AP2** — the intersection of any two class-1 read quorums with any
  write quorum is large (analogue of Property 2).
* **AP3** — for every class-2 read quorum ``R2``, write quorum ``W``
  and ``B ∈ B``: ``P3a(R2, W, B)`` or ``P3b(R2, W, B)`` with P3b
  quantified over class-1 *read* quorums (analogue of Property 3).

Smaller write quorums lower write latency/load at the price of read
availability — quantified by :func:`write_read_tradeoff`.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.core.adversary import Adversary, ThresholdAdversary
from repro.core import properties as props
from repro.core.rqs import RefinedQuorumSystem
from repro.errors import QuorumSystemError

Subset = FrozenSet[Hashable]


class AsymmetricRQS:
    """A refined quorum system with separate write and read families."""

    def __init__(
        self,
        adversary: Adversary,
        write_quorums: Iterable[Iterable[Hashable]],
        read_quorums: Iterable[Iterable[Hashable]],
        read_qc1: Iterable[Iterable[Hashable]] = (),
        read_qc2: Optional[Iterable[Iterable[Hashable]]] = None,
        validate: bool = True,
    ):
        self._adversary = adversary
        self._writes = props.normalize_family(write_quorums)
        self._reads = props.normalize_family(read_quorums)
        self._qc1 = props.normalize_family(read_qc1)
        self._qc2 = (
            self._qc1
            if read_qc2 is None
            else props.normalize_family(read_qc2)
        )
        self._check_shape()
        if validate:
            problem = self.first_violation()
            if problem is not None:
                raise QuorumSystemError(problem)

    def _check_shape(self) -> None:
        ground = self._adversary.ground_set
        if not self._writes or not self._reads:
            raise QuorumSystemError(
                "both write and read families must be non-empty"
            )
        for family in (self._writes, self._reads):
            for quorum in family:
                if not quorum or not quorum <= ground:
                    raise QuorumSystemError(
                        f"quorum {set(quorum)} is invalid for S"
                    )
        if not set(self._qc1) <= set(self._qc2) <= set(self._reads):
            raise QuorumSystemError(
                "need read_qc1 ⊆ read_qc2 ⊆ read_quorums"
            )

    # -- accessors -------------------------------------------------------------

    @property
    def adversary(self) -> Adversary:
        return self._adversary

    @property
    def write_quorums(self) -> Tuple[Subset, ...]:
        return self._writes

    @property
    def read_quorums(self) -> Tuple[Subset, ...]:
        return self._reads

    @property
    def read_qc1(self) -> Tuple[Subset, ...]:
        return self._qc1

    @property
    def read_qc2(self) -> Tuple[Subset, ...]:
        return self._qc2

    # -- validation ---------------------------------------------------------------

    def first_violation(self) -> Optional[str]:
        """The first violated asymmetric property, as a message."""
        for read in self._reads:
            for write in self._writes:
                if self._adversary.contains(read & write):
                    return (
                        f"AP1 violated: R={set(read)} ∩ W={set(write)} "
                        "is corruptible"
                    )
        for i, r1 in enumerate(self._qc1):
            for r1p in self._qc1[i:]:
                for write in self._writes:
                    if not self._adversary.is_large(r1 & r1p & write):
                        return (
                            f"AP2 violated: R1={set(r1)} ∩ R1'={set(r1p)} "
                            f"∩ W={set(write)} is not large"
                        )
        for r2 in self._qc2:
            for write in self._writes:
                base = r2 & write
                restricted = self._adversary.restricted_to(base) if base else None
                candidates = (
                    restricted.enumerate() if restricted else [frozenset()]
                )
                for b in candidates:
                    if props.p3a(self._adversary, r2, write, b):
                        continue
                    if props.p3b(self._qc1, r2, write, b):
                        continue
                    return (
                        f"AP3 violated: R2={set(r2)}, W={set(write)}, "
                        f"B={set(b)}"
                    )
        return None

    def is_valid(self) -> bool:
        return self.first_violation() is None

    def as_symmetric(self) -> RefinedQuorumSystem:
        """Collapse to a classical RQS (union family) — the degenerate
        case where read and write quorums coincide."""
        union = tuple(set(self._writes) | set(self._reads))
        return RefinedQuorumSystem(
            self._adversary,
            union,
            qc1=self._qc1,
            qc2=self._qc2,
            validate=False,
        )


def threshold_asymmetric(
    n: int,
    k: int,
    write_size: int,
    read_size: int,
    fast_read_size: Optional[int] = None,
) -> AsymmetricRQS:
    """A threshold asymmetric system: all ``write_size``-subsets write,
    all ``read_size``-subsets read; subsets of ``fast_read_size`` (when
    given) are class-1 read quorums.

    AP1 requires ``write_size + read_size > n + k``.
    """
    if not (0 < write_size <= n and 0 < read_size <= n):
        raise QuorumSystemError("quorum sizes must be within 1..n")
    servers = tuple(range(1, n + 1))
    adversary = ThresholdAdversary(servers, k)
    writes = [
        frozenset(c) for c in combinations(servers, write_size)
    ]
    reads = [frozenset(c) for c in combinations(servers, read_size)]
    qc1: Tuple[Subset, ...] = ()
    if fast_read_size is not None:
        if fast_read_size < read_size:
            raise QuorumSystemError(
                "class-1 read quorums cannot be smaller than read quorums"
            )
        qc1 = tuple(
            frozenset(c) for c in combinations(servers, fast_read_size)
        )
        reads = sorted(set(reads) | set(qc1))
    return AsymmetricRQS(
        adversary, writes, reads, read_qc1=qc1, read_qc2=qc1 or None
    )


def write_read_tradeoff(
    n: int, k: int, probabilities: Iterable[float]
) -> Tuple[Tuple[int, int, float, float], ...]:
    """For each feasible (write_size, read_size) pair on the AP1
    boundary, the write-quorum load and read availability at ``p``.

    Returns rows ``(write_size, read_size, write_load, read_avail)``
    for the first probability given (kept simple for the ablation).
    """
    import math

    probabilities = list(probabilities)
    p = probabilities[0]
    rows = []
    for write_size in range(1, n + 1):
        read_size = n + k - write_size + 1
        if not 1 <= read_size <= n:
            continue
        write_load = write_size / n
        read_avail = sum(
            math.comb(n, alive) * (1 - p) ** alive * p ** (n - alive)
            for alive in range(read_size, n + 1)
        )
        rows.append((write_size, read_size, write_load, read_avail))
    return tuple(rows)
