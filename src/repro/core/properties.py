"""The three intersection properties of refined quorum systems.

These are free functions over explicit quorum families so they can be used
both by :class:`repro.core.rqs.RefinedQuorumSystem` (validation) and by the
lower-bound experiments (which need *negation witnesses*: concrete sets
``Q1, Q2, Q, B'1, B2`` demonstrating that a property fails, exactly as in
the proofs of Theorems 3 and 6).

Notation follows Definition 2 of the paper:

* Property 1: ``∀ Q, Q' ∈ RQS: Q ∩ Q' ∉ B``.
* Property 2: ``∀ Q1, Q'1 ∈ QC1, ∀ Q ∈ RQS, ∀ B1, B2 ∈ B:
  Q1 ∩ Q'1 ∩ Q ⊄ B1 ∪ B2`` — i.e. the triple intersection is *large*.
* Property 3: ``∀ Q2 ∈ QC2, ∀ Q ∈ RQS, ∀ B ∈ B:
  P3a(Q2, Q, B) ∨ P3b(Q2, Q, B)`` where

  - ``P3a(Q2, Q, B)``: ``Q2 ∩ Q \\ B ∉ B`` (the difference is basic), and
  - ``P3b(Q2, Q, B)``: ``QC1 ≠ ∅`` and
    ``∀ Q1 ∈ QC1: Q1 ∩ Q2 ∩ Q \\ B ≠ ∅``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.adversary import Adversary, as_subset

Subset = FrozenSet[Hashable]


@dataclass(frozen=True)
class P1Witness:
    """Two quorums whose intersection lies in the adversary structure."""

    q: Subset
    q_prime: Subset

    def describe(self) -> str:
        return (
            f"P1 violated: Q={set(self.q)} and Q'={set(self.q_prime)} "
            f"intersect in a corruptible set {set(self.q & self.q_prime)}"
        )


@dataclass(frozen=True)
class P2Witness:
    """Class-1 quorums and a quorum whose triple intersection is not large."""

    q1: Subset
    q1_prime: Subset
    q: Subset
    b1: Subset
    b2: Subset

    def describe(self) -> str:
        triple = self.q1 & self.q1_prime & self.q
        return (
            f"P2 violated: Q1∩Q'1∩Q = {set(triple)} is covered by "
            f"B1={set(self.b1)} ∪ B2={set(self.b2)}"
        )


@dataclass(frozen=True)
class P3Witness:
    """The negation witness used in the Theorem 3/6 proofs.

    ``q2 ∩ q \\ b1_prime = b2 ∈ B`` (P3a fails) and
    ``q1 ∩ q2 ∩ q \\ b1_prime = ∅`` (P3b fails for ``q1``).

    The derived sets ``b0 = Q1∩Q2∩Q`` and ``b1 = Q2∩Q∩B'1`` are exposed
    because the proof constructions manipulate them directly.
    """

    q1: Optional[Subset]
    q2: Subset
    q: Subset
    b1_prime: Subset
    b2: Subset

    @property
    def b0(self) -> Subset:
        if self.q1 is None:
            return frozenset()
        return self.q1 & self.q2 & self.q

    @property
    def b1(self) -> Subset:
        return self.q2 & self.q & self.b1_prime

    def describe(self) -> str:
        return (
            f"P3 violated: Q2∩Q\\B'1 = {set(self.b2)} ∈ B and "
            f"Q1∩Q2∩Q\\B'1 = ∅ for Q1={set(self.q1) if self.q1 else None}, "
            f"Q2={set(self.q2)}, Q={set(self.q)}, B'1={set(self.b1_prime)}"
        )


def p3a(adversary: Adversary, q2: Subset, q: Subset, b: Subset) -> bool:
    """``P3a(Q2, Q, B)``: the set difference ``Q2 ∩ Q \\ B`` is basic."""
    return adversary.is_basic((q2 & q) - b)


def p3b(
    qc1: Sequence[Subset], q2: Subset, q: Subset, b: Subset
) -> bool:
    """``P3b(Q2, Q, B)``: every class-1 quorum meets ``Q2 ∩ Q \\ B``.

    Requires ``QC1`` to be non-empty (footnote 1 of Definition 2).
    """
    if not qc1:
        return False
    difference = (q2 & q) - b
    return all(q1 & difference for q1 in qc1)


def check_property1(
    adversary: Adversary, quorums: Sequence[Subset]
) -> Optional[P1Witness]:
    """Check Property 1; return a witness of violation or ``None``."""
    quorums = list(quorums)
    for i, q in enumerate(quorums):
        for q_prime in quorums[i:]:
            if adversary.contains(q & q_prime):
                return P1Witness(q, q_prime)
    return None


def check_property2(
    adversary: Adversary,
    qc1: Sequence[Subset],
    quorums: Sequence[Subset],
) -> Optional[P2Witness]:
    """Check Property 2; return a witness of violation or ``None``.

    "Not a subset of the union of any two elements of B" is exactly
    ``Adversary.is_large``; a witness needs the explicit covering pair,
    which we recover from the maximal sets.
    """
    qc1 = list(qc1)
    for i, q1 in enumerate(qc1):
        for q1_prime in qc1[i:]:
            pair = q1 & q1_prime
            for q in quorums:
                triple = pair & q
                if adversary.is_large(triple):
                    continue
                b1, b2 = _covering_pair(adversary, triple)
                return P2Witness(q1, q1_prime, q, b1, b2)
    return None


def check_property3(
    adversary: Adversary,
    qc1: Sequence[Subset],
    qc2: Sequence[Subset],
    quorums: Sequence[Subset],
) -> Optional[P3Witness]:
    """Check Property 3; return a witness of violation or ``None``.

    The quantification over ``B ∈ B`` only needs to range over maximal
    sets *unioned with nothing*: if P3a and P3b both fail for some ``B``,
    they also fail for any superset of ``B`` in ``B`` — P3a's difference
    only shrinks and P3b's intersection only shrinks.  But the converse is
    not true, so for soundness we must check *all* elements, not just
    maximal ones.  We enumerate ``B`` lazily, largest-first, because
    larger ``B`` fail faster in practice.
    """
    qc1 = list(qc1)
    for q2 in qc2:
        for q in quorums:
            base = q2 & q
            if not base:
                # An empty intersection fails P3a (∅ ∈ B by closure) and
                # P3b (it meets no class-1 quorum) for B = ∅.
                return P3Witness(
                    _failing_q1(qc1, q2, q, frozenset()),
                    q2, q, frozenset(), frozenset(),
                )
            # Only elements B that actually intersect Q2∩Q matter: P3a and
            # P3b depend on B only through B ∩ (Q2∩Q).  Enumerate subsets
            # of Q2∩Q that lie in B (via restriction) instead of all of B.
            restricted = adversary.restricted_to(base)
            for b in restricted.enumerate():
                if p3a(adversary, q2, q, b):
                    continue
                if p3b(qc1, q2, q, b):
                    continue
                q1_witness = _failing_q1(qc1, q2, q, b)
                return P3Witness(q1_witness, q2, q, b, base - b)
    return None


def _failing_q1(
    qc1: Sequence[Subset], q2: Subset, q: Subset, b: Subset
) -> Optional[Subset]:
    """The class-1 quorum for which P3b fails (``None`` if QC1 is empty)."""
    difference = (q2 & q) - b
    for q1 in qc1:
        if not (q1 & difference):
            return q1
    return None


def _covering_pair(
    adversary: Adversary, target: Subset
) -> Tuple[Subset, Subset]:
    """Find ``B1, B2 ∈ B`` with ``target ⊆ B1 ∪ B2`` (caller guarantees
    existence, i.e. ``target`` is not large)."""
    for b1 in adversary.maximal_sets():
        remainder = target - b1
        if adversary.contains(remainder):
            return frozenset(b1 & target), frozenset(remainder)
    raise AssertionError("caller promised target is not large")


def negate_property3(
    adversary: Adversary,
    qc1: Sequence[Subset],
    qc2: Sequence[Subset],
    quorums: Sequence[Subset],
) -> Optional[P3Witness]:
    """Public alias used by the Theorem 3/6 experiment drivers.

    Returns the first P3 negation witness (with its ``b0``/``b1`` derived
    sets) or ``None`` when Property 3 holds.
    """
    return check_property3(adversary, qc1, qc2, quorums)


def normalize_family(family: Iterable[Iterable[Hashable]]) -> Tuple[Subset, ...]:
    """Normalize a family of iterables to a deduplicated tuple of frozensets.

    Order is made deterministic (sorted by size then repr) so that property
    checking and witness extraction are reproducible.
    """
    unique = {as_subset(member) for member in family}
    return tuple(sorted(unique, key=lambda s: (len(s), sorted(map(repr, s)))))
