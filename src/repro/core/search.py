"""Searching for refined quorum systems given an adversary structure.

The paper lists "how many RQS can be found given some adversary structure"
as an open direction (Section 6).  This module provides practical tooling
for small universes:

* :func:`minimal_quorums` — the minimal transversal-style quorums: minimal
  subsets whose complement cannot contain a quorum-blocking coalition.
* :func:`classify_quorums` — given an adversary and a quorum family that
  satisfies Property 1, compute the *largest* legal ``QC1`` and ``QC2``
  (greedy maximal classification), which yields the most latency-favorable
  RQS over that family.
* :func:`search_rqs` — end-to-end: enumerate candidate quorums (all basic
  "live" subsets or a provided family), keep a Property-1-satisfying
  family, classify, and return a validated RQS.

Everything here is exponential in ``|S|`` and intended for ``|S| ≤ ~10``.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.adversary import Adversary, as_subset
from repro.core import properties as props
from repro.core.rqs import RefinedQuorumSystem
from repro.errors import QuorumSystemError

Subset = FrozenSet[Hashable]


def all_subsets(ground: Iterable[Hashable], min_size: int = 1) -> Tuple[Subset, ...]:
    """Every subset of ``ground`` of size at least ``min_size``."""
    members = sorted(as_subset(ground), key=repr)
    out: List[Subset] = []
    for size in range(min_size, len(members) + 1):
        out.extend(frozenset(c) for c in combinations(members, size))
    return tuple(out)


def property1_family(
    adversary: Adversary, candidates: Sequence[Subset]
) -> Tuple[Subset, ...]:
    """Greedy maximal sub-family of ``candidates`` satisfying Property 1.

    Candidates are considered largest-first (larger quorums intersect more
    easily), and a candidate is kept iff its intersection with every kept
    quorum (and itself) is basic.
    """
    kept: List[Subset] = []
    ordered = sorted(
        set(candidates), key=lambda s: (-len(s), sorted(map(repr, s)))
    )
    for candidate in ordered:
        if adversary.contains(candidate):
            continue
        if adversary.contains(candidate & candidate):
            continue
        if all(
            adversary.is_basic(candidate & other) for other in kept
        ):
            kept.append(candidate)
    return tuple(kept)


def classify_quorums(
    adversary: Adversary, quorums: Sequence[Subset]
) -> Tuple[Tuple[Subset, ...], Tuple[Subset, ...]]:
    """Compute maximal legal ``(QC1, QC2)`` for a Property-1 family.

    Strategy: first take the largest ``QC1`` such that Property 2 holds
    (greedy, largest quorums first — a quorum joins QC1 iff its pairwise
    triple-intersections with the current QC1 and all quorums stay large).
    Then grow ``QC2 ⊇ QC1`` maximally under Property 3.

    The greedy order makes the result deterministic but not necessarily
    globally optimal (maximizing |QC1| is NP-hard in general); for the
    paper's examples it recovers the published classes.
    """
    ordered = sorted(
        quorums, key=lambda s: (-len(s), sorted(map(repr, s)))
    )
    qc1: List[Subset] = []
    for candidate in ordered:
        trial = qc1 + [candidate]
        if props.check_property2(adversary, trial, quorums) is None:
            qc1.append(candidate)

    qc2: List[Subset] = list(qc1)
    for candidate in ordered:
        if candidate in qc2:
            continue
        trial = qc2 + [candidate]
        if props.check_property3(adversary, qc1, trial, quorums) is None:
            qc2.append(candidate)
    return tuple(qc1), tuple(qc2)


def search_rqs(
    adversary: Adversary,
    candidates: Optional[Iterable[Iterable[Hashable]]] = None,
    min_quorum_size: int = 1,
) -> RefinedQuorumSystem:
    """Build a validated RQS for ``adversary``.

    When ``candidates`` is ``None`` every subset of ``S`` (of size at least
    ``min_quorum_size``) is considered.  Raises
    :class:`~repro.errors.QuorumSystemError` when no non-trivial quorum
    family exists (e.g. the adversary can corrupt majorities everywhere).
    """
    if candidates is None:
        pool = all_subsets(adversary.ground_set, min_quorum_size)
    else:
        pool = props.normalize_family(candidates)
    family = property1_family(adversary, pool)
    if not family:
        raise QuorumSystemError(
            "no Property-1 quorum family exists for this adversary"
        )
    qc1, qc2 = classify_quorums(adversary, family)
    return RefinedQuorumSystem(adversary, family, qc1=qc1, qc2=qc2)


def count_valid_rqs(
    adversary: Adversary, quorum_families: Iterable[Sequence[Subset]]
) -> int:
    """Count how many of the given quorum families admit a valid RQS
    (with maximal classification).  Exposed for the ablation bench."""
    count = 0
    for family in quorum_families:
        if props.check_property1(adversary, family) is not None:
            continue
        qc1, qc2 = classify_quorums(adversary, family)
        rqs = RefinedQuorumSystem(
            adversary, family, qc1=qc1, qc2=qc2, validate=False
        )
        if rqs.is_valid():
            count += 1
    return count
