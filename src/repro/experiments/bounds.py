"""Experiment E11 — tightness of the Example 5/6 inequalities.

The paper gives closed-form conditions for the threshold family
``RQS = Q_t``, ``QC2 = Q_r``, ``QC1 = Q_q`` under ``B_k``:

* Property 1  ⇔  ``n > 2t + k``
* Property 2  ⇔  ``n > t + 2k + 2q``
* Property 3  ⇔  ``n > t + r + k + min(k, q)``

This sweep brute-force-validates every parameter point and reports any
mismatch between the formulas and the explicit property checks — there
must be none, in *both* directions (the conditions are necessary and
sufficient, i.e. tight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.constructions import (
    threshold_rqs,
    threshold_rqs_predicted_properties,
    threshold_rqs_predicted_valid,
)


@dataclass
class SweepResult:
    points: int
    mismatches: List[Tuple[int, int, int, int, int]]
    boundary_points: int  # points exactly at a validity boundary

    @property
    def tight(self) -> bool:
        return not self.mismatches

    def row(self) -> str:
        return (
            f"swept {self.points} parameter points, "
            f"{self.boundary_points} on the boundary, "
            f"{len(self.mismatches)} formula mismatches"
        )


def parameter_space(max_n: int) -> Iterator[Tuple[int, int, int, int, int]]:
    for n in range(3, max_n + 1):
        for t in range(1, n):
            for k in range(0, t + 1):
                for q in range(0, t + 1):
                    for r in range(q, t + 1):
                        yield n, t, k, q, r


def run_sweep(max_n: int = 7) -> SweepResult:
    points = 0
    boundary = 0
    mismatches: List[Tuple[int, int, int, int, int]] = []
    for n, t, k, q, r in parameter_space(max_n):
        points += 1
        rqs = threshold_rqs(n, t, k, q, r, validate=False)
        violation = rqs.first_violation()
        actual = (
            _actual_properties(rqs)
            if violation is not None
            else (True, True, True)
        )
        predicted = threshold_rqs_predicted_properties(n, t, k, q, r)
        if actual != predicted:
            mismatches.append((n, t, k, q, r))
        if _on_boundary(n, t, k, q, r):
            boundary += 1
    return SweepResult(points, mismatches, boundary)


def _actual_properties(rqs) -> Tuple[bool, bool, bool]:
    from repro.core import properties as props

    p1 = props.check_property1(rqs.adversary, rqs.quorums) is None
    p2 = props.check_property2(rqs.adversary, rqs.qc1, rqs.quorums) is None
    p3 = (
        props.check_property3(rqs.adversary, rqs.qc1, rqs.qc2, rqs.quorums)
        is None
    )
    return (p1, p2, p3)


def _on_boundary(n: int, t: int, k: int, q: int, r: int) -> bool:
    """Exactly one short of validity on at least one property — the
    points that prove necessity."""
    return (
        n == 2 * t + k + 1
        or n == t + 2 * k + 2 * q + 1
        or n == t + r + k + min(k, q) + 1
    )


def minimal_system_sizes(max_t: int = 4) -> List[Tuple[int, int]]:
    """The PBFT-style instantiation sizes: smallest n for q=0, r=k=t."""
    rows = []
    for t in range(1, max_t + 1):
        n = 3 * t + 1
        assert threshold_rqs_predicted_valid(n, t, t, 0, t)
        assert not threshold_rqs_predicted_valid(n - 1, t, t, 0, t)
        rows.append((t, n))
    return rows
