"""Experiment E11 — tightness of the Example 5/6 inequalities.

The paper gives closed-form conditions for the threshold family
``RQS = Q_t``, ``QC2 = Q_r``, ``QC1 = Q_q`` under ``B_k``:

* Property 1  ⇔  ``n > 2t + k``
* Property 2  ⇔  ``n > t + 2k + 2q``
* Property 3  ⇔  ``n > t + r + k + min(k, q)``

This sweep brute-force-validates every parameter point and reports any
mismatch between the formulas and the explicit property checks — there
must be none, in *both* directions (the conditions are necessary and
sufficient, i.e. tight).

It is an *analytic* sweep: :func:`bounds_grid` enumerates the parameter
space as one labeled axis and the ``evaluate`` hook checks each point in
closed form — no scenario execution involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Tuple

from repro.core.constructions import (
    threshold_rqs,
    threshold_rqs_predicted_properties,
    threshold_rqs_predicted_valid,
)
from repro.scenarios import SweepSpec, labeled, run_grid


@dataclass
class SweepResult:
    """The E11 verdict (kept distinct from the generic sweep table)."""

    points: int
    mismatches: List[Tuple[int, int, int, int, int]]
    boundary_points: int  # points exactly at a validity boundary

    @property
    def tight(self) -> bool:
        return not self.mismatches

    def row(self) -> str:
        return (
            f"swept {self.points} parameter points, "
            f"{self.boundary_points} on the boundary, "
            f"{len(self.mismatches)} formula mismatches"
        )


def parameter_space(max_n: int) -> Iterator[Tuple[int, int, int, int, int]]:
    for n in range(3, max_n + 1):
        for t in range(1, n):
            for k in range(0, t + 1):
                for q in range(0, t + 1):
                    for r in range(q, t + 1):
                        yield n, t, k, q, r


def _evaluate_point(point: Mapping) -> Mapping:
    n, t, k, q, r = point["params"]
    rqs = threshold_rqs(n, t, k, q, r, validate=False)
    violation = rqs.first_violation()
    actual = (
        _actual_properties(rqs)
        if violation is not None
        else (True, True, True)
    )
    predicted = threshold_rqs_predicted_properties(n, t, k, q, r)
    match = actual == predicted
    return {
        "verdict": "match" if match else "MISMATCH",
        "match": match,
        "boundary": _on_boundary(n, t, k, q, r),
        "params": list(point["params"]),
    }


def bounds_grid(max_n: int = 7) -> SweepSpec:
    """The E11 grid: every (n, t, k, q, r) point as one analytic cell."""
    return SweepSpec(
        name="threshold-bounds",
        axes={
            "params": tuple(
                labeled(f"n={n},t={t},k={k},q={q},r={r}", (n, t, k, q, r))
                for n, t, k, q, r in parameter_space(max_n)
            )
        },
        evaluate=_evaluate_point,
    )


def run_sweep(max_n: int = 7) -> SweepResult:
    sweep = run_grid(bounds_grid(max_n))
    mismatches = [
        tuple(cell.metrics["params"])
        for cell in sweep.cells
        if not cell.require().metrics["match"]
    ]
    boundary = sum(1 for cell in sweep.cells if cell.metrics["boundary"])
    return SweepResult(len(sweep.cells), mismatches, boundary)


def _actual_properties(rqs) -> Tuple[bool, bool, bool]:
    from repro.core import properties as props

    p1 = props.check_property1(rqs.adversary, rqs.quorums) is None
    p2 = props.check_property2(rqs.adversary, rqs.qc1, rqs.quorums) is None
    p3 = (
        props.check_property3(rqs.adversary, rqs.qc1, rqs.qc2, rqs.quorums)
        is None
    )
    return (p1, p2, p3)


def _on_boundary(n: int, t: int, k: int, q: int, r: int) -> bool:
    """Exactly one short of validity on at least one property — the
    points that prove necessity."""
    return (
        n == 2 * t + k + 1
        or n == t + 2 * k + 2 * q + 1
        or n == t + r + k + min(k, q) + 1
    )


def minimal_system_sizes(max_t: int = 4) -> List[Tuple[int, int]]:
    """The PBFT-style instantiation sizes: smallest n for q=0, r=k=t."""
    rows = []
    for t in range(1, max_t + 1):
        n = 3 * t + 1
        assert threshold_rqs_predicted_valid(n, t, t, 0, t)
        assert not threshold_rqs_predicted_valid(n - 1, t, t, 0, t)
        rows.append((t, n))
    return rows
