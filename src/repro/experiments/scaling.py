"""Experiment E18 — sharded soak scaling: shards × op budget.

The sharded engine (:mod:`repro.scenarios.sharding`) partitions a keyed
streaming soak across worker processes by the deterministic key→shard
rule; this experiment measures what that buys: **shards × max_ops up to
1e7**, every cell the same batched single-writer ABD soak, sharded
``1/2/4/8`` ways.  Per the repository invariant the whole experiment is
:data:`GRID`.

Cells report two throughput numbers.  ``ops_per_sec`` is wall-clock —
honest but host-dependent (a 1-core CI runner timeshares the shard
fleet, so wall speedup saturates at 1×).  ``capacity_ops_per_sec`` is
the sum over shards of ``completed / cpu_seconds`` — CPU time is immune
to timesharing, so it measures what the fleet sustains given a core per
shard; that is the number the near-linear-scaling gate checks, and on a
multi-core host wall-clock converges to it.  Per-shard peak RSS rides
along: each worker simulates only ``~n_keys/shards`` registers and
``1/shards`` of the op stream, so the per-process memory gate stays as
flat as the unsharded one.

Run directly (``python -m repro.experiments.scaling``) for the 1e5
sub-grid; ``run_experiment(full=True)`` adds the 1e6 and 1e7 rows.
"""

from __future__ import annotations

import resource
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.experiments.builders import keyed_mix_spec
from repro.scenarios import ScenarioSpec, SweepSpec, run_grid

#: The soak mix (the E15/E17 40:60 ratio) driven through the batched
#: ABD hot path — batching is what pushes per-process throughput into
#: the tens of thousands of ops/sec that make 1e7-op cells tractable.
MIX_WRITES = 4000
MIX_READS = 6000
SOAK_READERS = 8
SOAK_KEYS = 16
BATCH = 16

TEN_MILLION = 10_000_000


def _scaling_build(point: Mapping) -> ScenarioSpec:
    spec = keyed_mix_spec(
        "abd",
        SOAK_KEYS,
        writes=MIX_WRITES,
        reads=MIX_READS,
        readers=SOAK_READERS,
        horizon=float(MIX_WRITES + MIX_READS),
        seed=point["seed"],
        trace_level="metrics",
        max_ops=point["max_ops"],
        batch_size=BATCH,
    )
    shards = int(point["shards"])
    return spec.with_(shards=shards) if shards > 1 else spec


def _scaling_measure(point: Mapping, result) -> Mapping:
    completed = result.ops_completed()
    wall = result.execute_seconds or 1e-9
    if getattr(result, "n_shards", 0) > 1:
        cpu = result.cpu_seconds
        capacity = result.capacity_ops_per_sec
        workers = result.worker_processes
        rss = result.max_shard_rss_kb
    else:
        cpu = result.execute_cpu_seconds or wall
        capacity = completed / cpu if cpu else 0.0
        workers = 1
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    metrics = {
        "verdict": "unchecked",
        "operations": result.ops_begun(),
        "completed": completed,
        "events": result.events_processed,
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
        "ops_per_sec": round(completed / wall, 1),
        "capacity_ops_per_sec": round(capacity, 1),
        "workers": workers,
        "max_shard_rss_kb": rss,
        "keys_checked": 0,
        "violations": 0,
        "checker_mode": "none",
    }
    online = result.online
    if online is not None:
        metrics["verdict"] = online.verdict
        metrics["keys_checked"] = len(online.keys)
        metrics["violations"] = online.violation_count
        metrics["checker_mode"] = online.mode
    return metrics


#: The E18 grid: shard fan-out × op budget (up to 1e7).
GRID = SweepSpec(
    name="scaling",
    axes={
        "shards": (1, 2, 4, 8),
        "max_ops": (100_000, 1_000_000, TEN_MILLION),
        "seed": (5,),
    },
    build=_scaling_build,
    measure=_scaling_measure,
)


@dataclass
class ScalingRow:
    shards: int
    max_ops: int
    verdict: str
    ops_per_sec: float
    capacity_ops_per_sec: float
    #: capacity relative to the same-budget shards=1 row (1.0 there).
    capacity_ratio: float
    max_shard_rss_kb: int

    def row(self) -> str:
        return (
            f"shards={self.shards:<2} ops={self.max_ops:<9} "
            f"{self.verdict:<9} wall={self.ops_per_sec:>9.0f} ops/s  "
            f"capacity={self.capacity_ops_per_sec:>9.0f} ops/s "
            f"({self.capacity_ratio:.2f}x)  "
            f"shard rss<={self.max_shard_rss_kb} KiB"
        )


def run_experiment(
    executor: str = "serial",
    full: bool = False,
    sizes: Optional[Sequence[int]] = None,
    shards: Optional[Sequence[int]] = None,
) -> List[ScalingRow]:
    """Run the grid (the 1e5 sub-grid unless ``full``) into rows with
    per-budget capacity ratios against the unsharded baseline."""
    grid = GRID
    if sizes is not None:
        grid = grid.where(max_ops=tuple(sizes))
    elif not full:
        grid = grid.where(max_ops=(100_000,))
    if shards is not None:
        grid = grid.where(shards=tuple(shards))
    sweep = run_grid(grid, executor=executor)
    cells = [
        (cell.point, cell.verdict, cell.require().metrics)
        for cell in sweep.cells
    ]
    baseline = {
        point["max_ops"]: metrics["capacity_ops_per_sec"]
        for point, _, metrics in cells
        if point["shards"] == "1"
    }
    rows: List[ScalingRow] = []
    for point, verdict, metrics in cells:
        base = baseline.get(point["max_ops"]) or 0.0
        capacity = metrics["capacity_ops_per_sec"]
        rows.append(
            ScalingRow(
                shards=int(point["shards"]),
                max_ops=int(point["max_ops"]),
                verdict=verdict,
                ops_per_sec=metrics["ops_per_sec"],
                capacity_ops_per_sec=capacity,
                capacity_ratio=round(capacity / base, 3) if base else 0.0,
                max_shard_rss_kb=metrics["max_shard_rss_kb"],
            )
        )
    return rows


if __name__ == "__main__":
    for row in run_experiment():
        print(row.row())
