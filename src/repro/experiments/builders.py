"""Shared spec builders for keyed-workload studies.

``benchmarks/bench_workload.py`` and the contention/soak experiment
grids all build the same shape of scenario — a seeded
:class:`~repro.scenarios.RandomMix` over ``n_keys`` registers on one of
the storage protocols — and used to duplicate the spec-assembly
boilerplate.  :func:`keyed_mix_spec` holds it once: protocol wiring
(the RQS instance for ``rqs-storage``, parameter-free baselines
otherwise), the uniform/zipfian keyspace choice, and the optional
open-loop stopping rule for horizon-free soaks.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from repro.scenarios import RandomMix, ScenarioSpec

#: The RQS instance keyed-workload studies run the paper's protocol on.
DEFAULT_RQS = "example6"


def keyed_mix_spec(
    protocol: str,
    n_keys: int,
    writes: int,
    reads: int,
    readers: int,
    horizon: Optional[float] = None,
    n_writers: int = 1,
    skew: Optional[float] = None,
    seed: int = 0,
    trace_level: str = "full",
    duration: Optional[float] = None,
    max_ops: Optional[int] = None,
    rqs: str = DEFAULT_RQS,
    params: Optional[Mapping[str, Any]] = None,
    batch_size: Union[int, str] = 1,
) -> ScenarioSpec:
    """One keyed-``RandomMix`` scenario on a storage protocol.

    ``skew=None`` draws keys uniformly; a float switches to the zipfian
    distribution with that skew.  ``horizon=None`` spreads the ops over
    ``float(writes + reads)`` time units (one op per unit on average —
    the workload-bench convention).  ``duration``/``max_ops`` pass
    through as the open-loop stopping rule, making the cell a
    horizon-free streaming soak.  ``params`` carries protocol knobs
    (e.g. ``{"bounded_history": True}`` for rqs-storage soaks).
    ``batch_size > 1`` turns on cross-key operation batching (clients
    coalesce up to that many ops per round-trip); ``"auto"`` sizes the
    window adaptively from the client's pending queue.
    """
    mix = RandomMix(
        writes,
        reads,
        horizon=float(writes + reads) if horizon is None else horizon,
        distribution="uniform" if skew is None else "zipfian",
        skew=1.0 if skew is None else skew,
        batch_size=batch_size,
    )
    return ScenarioSpec(
        protocol=protocol,
        rqs=rqs if protocol == "rqs-storage" else None,
        readers=readers,
        n_writers=n_writers,
        n_keys=n_keys,
        workload=(mix,),
        seed=seed,
        trace_level=trace_level,
        duration=duration,
        max_ops=max_ops,
        params=dict(params) if params else {},
    )
