"""Experiment E10 — Figure 16: the Theorem 6 impossibility construction.

Theorem 6: no ``(Q(3), B)``-consensus can be both ``(1, Q(1))``-fast and
``(2, Q(2))``-fast when Property 3 fails.  Two exhibits, each a sweep:

1. **End-to-end agreement violation** (:data:`END_TO_END_GRID`): the
   real consensus algorithm over the P3-violating family
   (``n=8, t=3, k=1, q=1, r=3``) is driven through the proof's schedule:

   * proposer ``p1`` proposes 1; its messages reach only ``Q2``, whose
     update cascade lets learner ``l1`` Decide-3 the value 1 — legal,
     since ``Q2`` is a class-2 quorum here;
   * step-2/3 updates never reach the acceptor set ``B2``, and view-0
     updates/decisions never escape ``Q2 ∪ {l1}``;
   * the suspect timers elect ``p2`` (proposing 0) for view 1; its
     consult quorum is forced to the witness quorum ``Q``, inside which
     the Byzantine set ``B1`` lies that it saw nothing (σ0);
   * with P3 violated, ``choose()`` finds **no candidate** — ``B2``'s
     honest 1-update evidence is uncheckable (P3a fails: ``B2 ∈ B``)
     and unpinnable (P3b fails: ``Q1∩Q2∩Q \\ B'1 = ∅``) — so ``p2``
     freely proposes 0, every learner except ``l1`` learns 0, and
     agreement breaks.

2. **Choose-level exhibit** (:data:`CHOOSE_GRID`, an analytic
   ``evaluate`` sweep): the same ``vProof`` handed to ``choose()``
   returns the intruding default under the broken family but returns
   the decided value under the valid family (``r=2``) where ``P3b``
   pins it through the class-1 quorum — isolating exactly why
   Property 3 is the safety hinge.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.core.properties import P3Witness, negate_property3
from repro.core.rqs import RefinedQuorumSystem
from repro.scenarios import (
    ACCEPTOR,
    ByzantineRole,
    FaultPlan,
    Hold,
    Propose,
    ScenarioSpec,
    SweepSpec,
    resolve_rqs,
    run_grid,
)
from repro.consensus.acceptor import Acceptor
from repro.consensus.choose import choose
from repro.consensus.messages import AckData, Decision, NewViewAck, Update


def broken_rqs() -> RefinedQuorumSystem:
    """P1 and P2 hold, P3 fails (``n = t + r + k + min(k, q)``)."""
    return resolve_rqs("example6-broken-p3")


def valid_rqs() -> RefinedQuorumSystem:
    return resolve_rqs("example6")


def find_witness(rqs: RefinedQuorumSystem) -> P3Witness:
    witness = negate_property3(rqs.adversary, rqs.qc1, rqs.qc2, rqs.quorums)
    if witness is None:
        raise AssertionError("expected a P3 violation witness")
    return witness


@lru_cache(maxsize=1)
def _witness_setup() -> Tuple[RefinedQuorumSystem, P3Witness]:
    """The broken family and its witness, computed once per process —
    the staged schedule and the reporting code must agree on it."""
    rqs = broken_rqs()
    return rqs, find_witness(rqs)


class LyingAcceptor(Acceptor):
    """Byzantine acceptor: participates correctly in the update path but
    reports a pristine state (σ0) in its ``new_view_ack`` — the ``B1``
    behaviour of the proof's ex4."""

    benign = False

    def _send_new_view_ack(self) -> None:
        pending = self._pending_nva
        if pending is None:
            return
        self._pending_nva = None
        body = AckData(
            view=self.view,
            prep=None,
            prep_view=frozenset(),
            update={1: None, 2: None},
            update_view={1: frozenset(), 2: frozenset()},
            update_q={},
            update_proof={},
        )
        signature = self.service.sign(self.pid, body.canonical())
        self.send(pending.proposer, NewViewAck(body, signature))


@dataclass
class Theorem6Outcome:
    witness: P3Witness
    learned: Dict[object, object]
    agreement_ok: bool
    choose_broken_value: object
    choose_valid_value: object

    def rows(self) -> Tuple[str, ...]:
        return (
            f"witness: {self.witness.describe()}",
            f"end-to-end learned: {self.learned} -> "
            f"{'agreement ok?!' if self.agreement_ok else 'AGREEMENT VIOLATION'}",
            f"choose() under broken RQS returns {self.choose_broken_value!r} "
            f"(the decided value 1 is lost)",
            f"choose() under valid RQS returns {self.choose_valid_value!r} "
            f"(P3b pins the decided value)",
        )


# -- exhibit 1: the end-to-end schedule ----------------------------------------

def _view0_contagion(payload) -> bool:
    return (isinstance(payload, Update) and payload.view == 0) or (
        isinstance(payload, Decision) and payload.value == 1
    )


def _later_step_update(payload) -> bool:
    return isinstance(payload, Update) and payload.step >= 2


def _decision_for_one(payload) -> bool:
    return isinstance(payload, Decision) and payload.value == 1


def _new_view_ack(payload) -> bool:
    return isinstance(payload, NewViewAck)


def _end_to_end_spec(point: Mapping) -> ScenarioSpec:
    rqs, witness = _witness_setup()
    servers = rqs.ground_set
    q2, q = witness.q2, witness.q
    b1, b2 = witness.b1, witness.b2

    asynchrony = (
        # p1's messages reach only Q2 (prepare, sync, pulls).
        Hold(src=("p1",), dst=tuple(servers - q2),
             label="p1 only reaches Q2"),
        # view-0 updates / value-1 decisions never escape Q2 ∪ {l1}.
        Hold(src=tuple(q2),
             dst=tuple((servers - q2) | {"l2", "l3", "p1", "p2"}),
             payload=_view0_contagion,
             label="view-0 contagion contained"),
        # value-1 decisions are held everywhere (timers must keep running).
        Hold(src=tuple(q2),
             payload=_decision_for_one,
             label="decision(1) held"),
        # B2 never sees step-2/3 updates (so it cannot 2-update).
        Hold(dst=tuple(b2), payload=_later_step_update,
             label="B2 starved of update2/3"),
        # p2's consult must see exactly the witness quorum Q.
        Hold(src=tuple(servers - q), dst=("p2",),
             payload=_new_view_ack,
             label="p2 hears acks only from Q"),
    )
    return ScenarioSpec(
        protocol="rqs-consensus",
        rqs=rqs,
        proposers=2,
        learners=3,
        faults=FaultPlan(
            byzantine=tuple(
                ByzantineRole(sid, role=ACCEPTOR, factory=LyingAcceptor)
                for sid in sorted(b1, key=repr)
            ),
            asynchrony=asynchrony,
        ),
        workload=(Propose(0.0, 1, proposer=0),),
        horizon=120.0,
        # p2 will propose 0 when elected for view 1.
        params={"proposer_values": {1: 0}},
    )


def _end_to_end_measure(point: Mapping, result) -> Mapping:
    learners = result.system.learners
    report = result.check_consensus(
        benign_learners=[learner.pid for learner in learners]
    )
    return {
        "verdict": "ok" if report.agreement_ok else "violation",
        "learned": {
            str(learner.pid): learner.learned for learner in learners
        },
    }


#: The E10 end-to-end grid (a single staged execution).
END_TO_END_GRID = SweepSpec(
    name="theorem6-end-to-end",
    axes={"execution": ("proof-schedule",)},
    build=_end_to_end_spec,
    measure=_end_to_end_measure,
)


def run_end_to_end() -> Tuple[P3Witness, Dict[object, object], bool]:
    _, witness = _witness_setup()
    cell = run_grid(END_TO_END_GRID).cells[0]
    result = cell.unwrap()
    learned = {l.pid: l.learned for l in result.system.learners}
    return witness, learned, cell.verdict == "ok"


# -- exhibit 2: choose() on the staged consult state ---------------------------

def _staged_vproof(
    rqs: RefinedQuorumSystem, witness: P3Witness
) -> Tuple[Dict, FrozenSet]:
    """The proof's ex4 consult state, synthesized directly: value 1 was
    Decided-3 in view 0 through ``Q2``; the consult quorum is ``Q``;
    ``B1`` lies (σ0), ``B2`` honestly reports its 1-update, everyone
    else is fresh."""
    q2, q = witness.q2, witness.q
    b1 = witness.b1

    def fresh() -> AckData:
        return AckData(
            view=1,
            prep=None,
            prep_view=frozenset(),
            update={1: None, 2: None},
            update_view={1: frozenset(), 2: frozenset()},
            update_q={},
            update_proof={},
        )

    def honest_q2_member() -> AckData:
        return AckData(
            view=1,
            prep=1,
            prep_view=frozenset({0}),
            update={1: 1, 2: None},
            update_view={1: frozenset({0}), 2: frozenset()},
            update_q={(1, 0): (q2,)},
            update_proof={},
        )

    v_proof: Dict = {}
    for acceptor in q:
        if acceptor in b1:
            v_proof[acceptor] = fresh()       # Byzantine lie
        elif acceptor in q2:
            v_proof[acceptor] = honest_q2_member()
        else:
            v_proof[acceptor] = fresh()       # genuinely fresh
    return v_proof, q


def _choose_cell(point: Mapping) -> Mapping:
    """``choose()`` on the staged ex4 state for one quorum family."""
    if point["family"] == "broken":
        broken, witness = _witness_setup()
        v_proof, quorum = _staged_vproof(broken, witness)
        return {"value": choose(broken, 0, v_proof, quorum).value}

    # Under the valid family the same witness shape cannot exist; stage
    # the analogous state on its own quorums: Q2v is a class-2 quorum, the
    # consult quorum shares with it acceptors B1v ∪ B2v where B1v lies.
    valid = valid_rqs()
    q2v = next(iter(valid.qc2))
    others = sorted(valid.ground_set - q2v, key=repr)
    overlap_needed = 5 - len(others)
    overlap = sorted(q2v, key=repr)[:overlap_needed]
    quorum_v = frozenset(others) | frozenset(overlap)
    liar = frozenset(overlap[:1])

    def fresh() -> AckData:
        return AckData(
            view=1, prep=None, prep_view=frozenset(),
            update={1: None, 2: None},
            update_view={1: frozenset(), 2: frozenset()},
            update_q={}, update_proof={},
        )

    def honest() -> AckData:
        return AckData(
            view=1, prep=1, prep_view=frozenset({0}),
            update={1: 1, 2: None},
            update_view={1: frozenset({0}), 2: frozenset()},
            update_q={(1, 0): (q2v,)}, update_proof={},
        )

    v_proof_v = {}
    for acceptor in quorum_v:
        if acceptor in liar:
            v_proof_v[acceptor] = fresh()
        elif acceptor in q2v:
            v_proof_v[acceptor] = honest()
        else:
            v_proof_v[acceptor] = fresh()
    return {"value": choose(valid, 0, v_proof_v, quorum_v).value}


#: The E10 choose-level grid: one analytic cell per quorum family.
CHOOSE_GRID = SweepSpec(
    name="theorem6-choose",
    axes={"family": ("broken", "valid")},
    evaluate=_choose_cell,
)


def run_choose_exhibit() -> Tuple[object, object]:
    """``choose()`` on the staged ex4 state: broken vs valid family."""
    sweep = run_grid(CHOOSE_GRID)
    return (
        sweep.cell(family="broken").require().metrics["value"],
        sweep.cell(family="valid").require().metrics["value"],
    )


def run_experiment() -> Theorem6Outcome:
    witness, learned, agreement_ok = run_end_to_end()
    broken_value, valid_value = run_choose_exhibit()
    return Theorem6Outcome(
        witness=witness,
        learned=learned,
        agreement_ok=agreement_ok,
        choose_broken_value=broken_value,
        choose_valid_value=valid_value,
    )


def violation_demonstrated(outcome: Theorem6Outcome) -> bool:
    values = set(outcome.learned.values()) - {None}
    return (
        not outcome.agreement_ok
        and len(values) == 2
        and outcome.choose_broken_value == 0
        and outcome.choose_valid_value == 1
    )
