"""Experiment E16 — predicted vs measured capacity of access strategies.

The paper's concluding section names "the load and availability of RQS"
as an open direction.  The quorum algebra (:mod:`repro.core.algebra`)
and the exact strategy engine (:mod:`repro.core.strategy`) make the
load half *predictive*: for a quorum expression with per-node
capacities and a read fraction, the LP yields a distribution over
quorums whose peak per-node load — and hence ``capacity = 1/load``, the
sustainable operations per time unit — is exact.  This experiment
closes the loop by *measuring*: storage clients draw their quorums from
the strategy's seeded distribution, servers are rate-limited to their
node capacities (:class:`~repro.storage.server.RateLimitedServer`), and
the grid compares completed operations by the horizon across

    **system × strategy × read-mix × fault plan**

on the 2×3 grid expression ``a*b*c + d*e*f``.  The exhibit: on the
heterogeneous-capacity system (one fast row, one slow row) the
load-optimal strategy sustains strictly more measured operations than
the uniform strategy on every cell — and degrades far more gracefully
when a slow node crashes mid-run — while on the homogeneous control
system the two strategies measure the same, matching the prediction
that uniform is already (near-)optimal there.

Per the repository invariant (**new figure = new grid literal**) the
whole experiment is :data:`GRID`.  Simulated executions are
machine-independent, so the per-cell ``sim_ops_per_sec``
(completed / horizon) is exact and byte-stable — the
``tools/check_quorums.py`` CI gate holds ``BENCH_quorums.json`` to it.

Run directly: ``PYTHONPATH=src python -m repro.experiments.capacity``
(add ``--emit`` to rewrite ``BENCH_quorums.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import List, Mapping

from repro.core.strategy import optimal_strategy, uniform_strategy
from repro.scenarios import (
    Crash,
    FaultPlan,
    RandomMix,
    ScenarioSpec,
    SweepSpec,
    labeled,
    resolve_rqs,
    run_grid,
)

SCHEMA_VERSION = 1

#: Clients: enough closed-loop parallelism to exceed the uniform
#: strategy's predicted capacity (so its queueing deficit is visible)
#: without exceeding the optimal strategy's.
READERS = 8
N_WRITERS = 4
#: Keys partition the atomicity check (and the register space).
N_KEYS = 4
#: RandomMix arrival horizon and the spec horizon (drain window after).
MIX_HORIZON = 60.0
HORIZON = 90.0

#: (writes, reads) mixes spanning write-heavy to read-heavy fractions.
MIXES = (
    labeled("w200r40", (200, 40)),
    labeled("w120r120", (120, 120)),
    labeled("w40r200", (40, 200)),
)
#: Crash of slow-row node ``d`` mid-arrival window.
FAULT_PLANS = (
    labeled("none", FaultPlan()),
    labeled("crash-slow", FaultPlan(crashes=(Crash("d", 30.0),))),
)


def _capacity_build(point: Mapping) -> ScenarioSpec:
    writes, reads = point["mix"]
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs=point["system"],
        readers=READERS,
        n_writers=N_WRITERS,
        n_keys=N_KEYS,
        workload=(RandomMix(writes, reads, horizon=MIX_HORIZON),),
        seed=point["seed"],
        horizon=HORIZON,
        faults=point["faults"],
        quorum_strategy=point["strategy"],
        params={"capacity_model": True},
    )


def _predicted(point: Mapping):
    """The strategy the cell runs, rebuilt for its exact prediction."""
    writes, reads = point["mix"]
    rqs = resolve_rqs(point["system"])
    family = rqs.quorums
    build = (
        uniform_strategy if point["strategy"] == "uniform"
        else optimal_strategy
    )
    return build(
        family, family,
        read_fraction=Fraction(reads, reads + writes),
        read_capacity=rqs.read_capacity,
        write_capacity=rqs.write_capacity,
    )


def _capacity_measure(point: Mapping, result) -> Mapping:
    strategy = _predicted(point)
    completed = result.ops_completed()
    return {
        "operations": result.ops_begun(),
        "completed": completed,
        "events": result.adapter.sim.events_processed,
        "messages": result.adapter.network.sent_count,
        "atomic": result.atomicity.atomic,
        # Simulated-time throughput: machine-independent, gate-exact.
        "sim_ops_per_sec": round(completed / HORIZON, 6),
        # Exact rationals travel as "p/q" strings (jsonable reprs
        # non-primitives); the float twin is for plotting.
        "predicted_load": str(strategy.load),
        "predicted_capacity": round(float(strategy.capacity), 6),
        "read_fraction": str(strategy.read_fraction),
        "wall_s": round(result.execute_seconds, 4),
    }


#: The E16 grid: system × strategy × read-mix × fault plan.
GRID = SweepSpec(
    name="quorums",
    axes={
        "system": ("grid-hetero", "grid-homog"),
        "strategy": ("uniform", "optimal"),
        "mix": MIXES,
        "faults": FAULT_PLANS,
        "seed": (0,),
    },
    build=_capacity_build,
    measure=_capacity_measure,
)


@dataclass
class CapacityRow:
    system: str
    strategy: str
    mix: str
    fault: str
    predicted_capacity: float
    completed: int
    sim_ops_per_sec: float
    atomic: bool

    def row(self) -> str:
        return (
            f"{self.system:<12} {self.strategy:<8} {self.mix:<9} "
            f"{self.fault:<11} predicted={self.predicted_capacity:>6.2f} "
            f"measured={self.sim_ops_per_sec:>6.3f} ops/s "
            f"({self.completed:>3} ops) "
            f"{'atomic' if self.atomic else 'VIOLATION'}"
        )


def run_experiment(executor: str = "serial") -> List[CapacityRow]:
    """Run :data:`GRID` and fold the cells into display rows."""
    sweep = run_grid(GRID, executor=executor)
    rows: List[CapacityRow] = []
    for cell in sweep.cells:
        metrics = cell.require().metrics
        rows.append(
            CapacityRow(
                system=cell.point["system"],
                strategy=cell.point["strategy"],
                mix=cell.point["mix"],
                fault=cell.point["faults"],
                predicted_capacity=metrics["predicted_capacity"],
                completed=metrics["completed"],
                sim_ops_per_sec=metrics["sim_ops_per_sec"],
                atomic=metrics["atomic"],
            )
        )
    return rows


def collect(executor: str = "serial") -> dict:
    """Run the grid and assemble the ``BENCH_quorums.json`` payload."""
    sweep = run_grid(GRID, executor=executor)
    cases = []
    for cell in sweep.cells:
        metrics = dict(cell.require().metrics)
        cases.append({
            "system": cell.point["system"],
            "strategy": cell.point["strategy"],
            "mix": cell.point["mix"],
            "faults": cell.point["faults"],
            "seed": cell.point["seed"],
            **metrics,
        })
    return {
        "name": "quorums",
        "schema_version": SCHEMA_VERSION,
        "horizon": HORIZON,
        "cases": cases,
    }


def emit(directory=None) -> Path:
    """Regenerate ``BENCH_quorums.json`` (repo root by default)."""
    payload = collect()
    root = Path(__file__).resolve().parents[3]
    path = Path(directory or root) / "BENCH_quorums.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


if __name__ == "__main__":
    import sys

    if "--emit" in sys.argv:
        print(f"wrote {emit()}")
    else:
        for row in run_experiment():
            print(row.row())
