"""Experiment E14 — the keyed-register contention sweep.

The paper states its storage algorithm for a single register; the keyed
register space lifts it (and the ABD-family baselines) to multi-register
multi-writer workloads.  This sweep measures what contention does to
that lift: protocols × keyspace width × keyspace skew × seeds, every
cell a two-writer seeded :class:`~repro.scenarios.RandomMix` whose keys
are drawn ``uniform`` or ``zipfian`` over ``n_keys`` registers.

Per the repository invariant (**new figure = new grid literal**) the
whole experiment is :data:`GRID`; cells report the aggregate atomicity
verdict *and* the per-key verdict partition — each register is checked
independently, so a violation on a hot key never hides behind a clean
cold key (and vice versa).

Expected shape: every cell is atomic (the multi-writer lift stamps
totally-ordered timestamps after a discovery round); wider keyspaces
spread the same operation count over more registers, so per-key checker
work shrinks while message volume per operation stays protocol-constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.experiments.builders import keyed_mix_spec
from repro.scenarios import ScenarioSpec, SweepSpec, run_grid

#: Operation budget per cell (spread over 2 writers and 3 readers).
N_WRITES = 8
N_READS = 12
HORIZON = 60.0


def _contention_build(point: Mapping) -> ScenarioSpec:
    return keyed_mix_spec(
        point["protocol"],
        point["n_keys"],
        writes=N_WRITES,
        reads=N_READS,
        readers=3,
        horizon=HORIZON,
        n_writers=2,
        skew=point["skew"] or None,   # 0.0 = uniform draws
        seed=point["seed"],
    )


def _contention_measure(point: Mapping, result) -> Mapping:
    report = result.atomicity
    per_key = {
        str(key): "atomic" if atomic else "violation"
        for key, atomic in result.key_verdicts.items()
    }
    return {
        "verdict": "atomic" if report.atomic else "violation",
        "per_key": per_key,
        "keys_touched": len(per_key),
        "operations": len(result.records),
        "completed": len(result.completed),
        "messages": result.adapter.network.sent_count,
    }


#: The E14 grid: protocol × keyspace width × zipf skew × seed.
GRID = SweepSpec(
    name="contention",
    axes={
        "protocol": ("rqs-storage", "abd", "fastabd"),
        "n_keys": (1, 2, 8),
        "skew": (0.0, 1.2),
        "seed": (0, 1),
    },
    build=_contention_build,
    measure=_contention_measure,
)


@dataclass
class ContentionRow:
    protocol: str
    n_keys: int
    skew: float
    atomic_cells: int
    cells: int
    keys_touched: float

    def row(self) -> str:
        return (
            f"{self.protocol:>11} keys={self.n_keys:<2} "
            f"skew={self.skew}: {self.atomic_cells}/{self.cells} atomic, "
            f"mean keys touched {self.keys_touched:.1f}"
        )


def run_experiment(executor: str = "serial") -> List[ContentionRow]:
    """Run the grid and fold seeds into per-configuration rows."""
    sweep = run_grid(GRID, executor=executor)
    rows: List[ContentionRow] = []
    for protocol in ("rqs-storage", "abd", "fastabd"):
        for n_keys in (1, 2, 8):
            for skew in (0.0, 1.2):
                cells = [
                    c for c in sweep.cells
                    if c.point["protocol"] == protocol
                    and c.point["n_keys"] == str(n_keys)
                    and c.point["skew"] == str(skew)
                ]
                rows.append(
                    ContentionRow(
                        protocol=protocol,
                        n_keys=n_keys,
                        skew=skew,
                        atomic_cells=sum(
                            1 for c in cells if c.verdict == "atomic"
                        ),
                        cells=len(cells),
                        keys_touched=sum(
                            c.metrics["keys_touched"] for c in cells
                        ) / max(len(cells), 1),
                    )
                )
    return rows


def zipfian_key_verdicts(n_keys: int = 8, seed: int = 0) -> Dict[str, str]:
    """The per-key verdict partition of one zipfian 8-key cell (the
    acceptance exhibit: every register independently atomic)."""
    sweep = run_grid(
        GRID.where(protocol="rqs-storage", n_keys=n_keys, skew=1.2,
                   seed=seed)
    )
    (cell,) = sweep.cells
    return dict(cell.metrics["per_key"])


if __name__ == "__main__":
    for row in run_experiment():
        print(row.row())
    print("zipfian 8-key per-key verdicts:", zipfian_key_verdicts())
