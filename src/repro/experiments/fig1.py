"""Experiment E1 — Figure 1: the atomicity-violation counterexample.

The paper opens with 5 servers and ``t = 2`` crash failures and shows
that *any* algorithm greedily completing operations in one round after
hearing from ``n − t = 3`` servers violates atomicity.  We replay the
composed schedule of executions ex3+ex4 against the greedy algorithm of
:mod:`repro.storage.naive`:

1. ``wr = write(v)`` is invoked but its messages reach **only server 3**
   (the write is incomplete, as in ex3).
2. Reader ``r1`` reads; its messages to servers 1 and 2 are delayed, so
   it hears from ``Q2 = {3, 4, 5}`` and greedily returns ``v``.
3. Servers 3 and 5 crash (ex4).
4. Reader ``r2`` reads; it hears from ``Q3 = {1, 2, 4}`` — none of which
   ever saw ``v`` — and returns ⊥, *inverting* ``r1``'s read.

The atomicity checker must flag the read inversion.  The same schedule
against the Section 1.2 algorithm (4-server fast quorums,
:mod:`repro.storage.fastabd`) stays atomic — that contrast is the whole
point of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.atomicity import AtomicityReport, check_swmr_atomicity
from repro.sim.network import hold_rule
from repro.storage.fastabd import FastAbdSystem, FRead
from repro.storage.naive import NaiveSystem, NRead


@dataclass
class Fig1Outcome:
    """What each algorithm did under the Figure 1 schedule."""

    algorithm: str
    r1_value: object
    r1_rounds: int
    r2_value: object
    r2_rounds: int
    report: AtomicityReport

    def row(self) -> str:
        status = "ATOMIC" if self.report.atomic else "VIOLATION"
        rules = ",".join(sorted({v.rule for v in self.report.violations}))
        return (
            f"{self.algorithm:<22} r1→{self.r1_value!r:<6} "
            f"r2→{self.r2_value!r:<6} {status}"
            + (f" ({rules})" if rules else "")
        )


def _schedule_rules(read_message_type):
    """The adversarial message schedule shared by both algorithms."""
    return [
        # The write is incomplete: only server 3 ever receives it.
        hold_rule(
            src={"writer"}, dst={1, 2, 4, 5}, label="wr reaches only s3"
        ),
        # r1's *first-round read* messages to servers 1, 2 are delayed.
        hold_rule(
            src={"reader1"},
            dst={1, 2},
            payload_predicate=lambda p: isinstance(p, read_message_type),
            label="r1 cannot reach s1, s2",
        ),
    ]


def run_naive() -> Fig1Outcome:
    """The greedy 3-of-5 algorithm under the Figure 1 schedule."""
    system = NaiveSystem(n=5, t=2, n_readers=2, rules=_schedule_rules(NRead))
    system.write_task = system.sim.spawn(
        system.writer.write("v"), "wr(v) [incomplete]"
    )
    r1_task = system.sim.spawn(system.readers[0].read(), "r1.read()")
    system.sim.run(until=10.0)
    assert r1_task.done(), "r1 should complete from {3,4,5}"
    system.servers[3].crash()
    system.servers[5].crash()
    r2_task = system.sim.spawn(system.readers[1].read(), "r2.read()")
    system.sim.run(until=20.0)
    assert r2_task.done(), "r2 should complete from {1,2,4}"
    report = check_swmr_atomicity(system.trace.records)
    r1, r2 = r1_task.result, r2_task.result
    return Fig1Outcome(
        "naive (3-of-5 fast)",
        r1.result, r1.rounds, r2.result, r2.rounds, report,
    )


def run_fastabd() -> Fig1Outcome:
    """The Section 1.2 algorithm (4-of-5 fast) under the same schedule."""
    system = FastAbdSystem(n_readers=2, rules=_schedule_rules(FRead))
    system.sim.spawn(system.writer.write("v"), "wr(v) [incomplete]")
    r1_task = system.sim.spawn(system.readers[0].read(), "r1.read()")
    system.sim.run(until=20.0)
    assert r1_task.done(), "r1 should complete (2 rounds via writeback)"
    system.servers[3].crash()
    system.servers[5].crash()
    r2_task = system.sim.spawn(system.readers[1].read(), "r2.read()")
    system.sim.run(until=40.0)
    assert r2_task.done(), "r2 should complete from {1,2,4}"
    report = check_swmr_atomicity(system.trace.records)
    r1, r2 = r1_task.result, r2_task.result
    return Fig1Outcome(
        "section-1.2 (4-of-5)",
        r1.result, r1.rounds, r2.result, r2.rounds, report,
    )


def run_experiment() -> Tuple[Fig1Outcome, Fig1Outcome]:
    """Both rows of the E1 exhibit: (naive violates, fast-ABD doesn't)."""
    return run_naive(), run_fastabd()
