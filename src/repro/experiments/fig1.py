"""Experiment E1 — Figure 1: the atomicity-violation counterexample.

The paper opens with 5 servers and ``t = 2`` crash failures and shows
that *any* algorithm greedily completing operations in one round after
hearing from ``n − t = 3`` servers violates atomicity.  We replay the
composed schedule of executions ex3+ex4 against the greedy algorithm of
:mod:`repro.storage.naive`:

1. ``wr = write(v)`` is invoked but its messages reach **only server 3**
   (the write is incomplete, as in ex3).
2. Reader ``r1`` reads; its messages to servers 1 and 2 are delayed, so
   it hears from ``Q2 = {3, 4, 5}`` and greedily returns ``v``.
3. Servers 3 and 5 crash (ex4).
4. Reader ``r2`` reads; it hears from ``Q3 = {1, 2, 4}`` — none of which
   ever saw ``v`` — and returns ⊥, *inverting* ``r1``'s read.

The atomicity checker must flag the read inversion.  The same schedule
against the Section 1.2 algorithm (4-server fast quorums, the
``"fastabd"`` protocol) stays atomic — that contrast is the whole point
of Figure 2.  Both replays are the *same* schedule: the sweep
:data:`GRID` has a single ``algorithm`` axis and its two cells differ
only in the protocol id (and the per-protocol read message type the
delay rule matches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.analysis.atomicity import AtomicityReport
from repro.scenarios import (
    Crash,
    FaultPlan,
    Hold,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    labeled,
    payload_is,
    run_grid,
)
from repro.storage.fastabd import FRead
from repro.storage.naive import NRead

NAIVE = "naive (3-of-5 fast)"
FASTABD = "section-1.2 (4-of-5)"


@dataclass
class Fig1Outcome:
    """What each algorithm did under the Figure 1 schedule."""

    algorithm: str
    r1_value: object
    r1_rounds: int
    r2_value: object
    r2_rounds: int
    report: AtomicityReport

    def row(self) -> str:
        status = "ATOMIC" if self.report.atomic else "VIOLATION"
        rules = ",".join(sorted({v.rule for v in self.report.violations}))
        return (
            f"{self.algorithm:<22} r1→{self.r1_value!r:<6} "
            f"r2→{self.r2_value!r:<6} {status}"
            + (f" ({rules})" if rules else "")
        )


def _schedule(protocol: str, read_message_type, horizon: float) -> ScenarioSpec:
    """The adversarial Figure 1 schedule, parameterized by protocol."""
    return ScenarioSpec(
        protocol=protocol,
        readers=2,
        faults=FaultPlan(
            # ex4: servers 3 and 5 crash after r1's read completed.
            crashes=(Crash(3, 10.0), Crash(5, 10.0)),
            asynchrony=(
                # The write is incomplete: only server 3 ever receives it.
                Hold(src=("writer",), dst=(1, 2, 4, 5),
                     label="wr reaches only s3"),
                # r1's *first-round read* messages to servers 1, 2 delayed.
                Hold(src=("reader1",), dst=(1, 2),
                     payload=payload_is(read_message_type),
                     label="r1 cannot reach s1, s2"),
            ),
        ),
        workload=(
            Write(0.0, "v"),          # never completes (blocked quorum)
            Read(0.0, reader=0),      # r1, before the crashes
            Read(10.0, reader=1),     # r2, after the crashes
        ),
        horizon=horizon,
    )


def _build(point: Mapping) -> ScenarioSpec:
    protocol, read_message_type, horizon = point["algorithm"]
    return _schedule(protocol, read_message_type, horizon)


def _measure(point: Mapping, result) -> Mapping:
    r1, r2 = result.reads[0], result.reads[1]
    report = result.atomicity
    return {
        "verdict": "atomic" if report.atomic else "violation",
        "r1_value": repr(r1.result),
        "r1_rounds": r1.rounds,
        "r2_value": repr(r2.result),
        "r2_rounds": r2.rounds,
    }


#: The E1 grid: one schedule, two algorithms.
GRID = SweepSpec(
    name="fig1",
    axes={
        "algorithm": (
            labeled(NAIVE, ("naive", NRead, 20.0)),
            labeled(FASTABD, ("fastabd", FRead, 40.0)),
        )
    },
    build=_build,
    measure=_measure,
)


def _outcome(label: str, result) -> Fig1Outcome:
    r1, r2 = result.reads[0], result.reads[1]
    assert r1.complete, "r1 should complete from {3,4,5}"
    assert r2.complete, "r2 should complete from {1,2,4}"
    return Fig1Outcome(
        label, r1.result, r1.rounds, r2.result, r2.rounds, result.atomicity
    )


def _run_one(label: str) -> Fig1Outcome:
    cell = run_grid(GRID.where(algorithm=label)).cells[0]
    return _outcome(label, cell.unwrap())


def run_naive() -> Fig1Outcome:
    """The greedy 3-of-5 algorithm under the Figure 1 schedule."""
    return _run_one(NAIVE)


def run_fastabd() -> Fig1Outcome:
    """The Section 1.2 algorithm (4-of-5 fast) under the same schedule."""
    return _run_one(FASTABD)


def run_experiment() -> Tuple[Fig1Outcome, Fig1Outcome]:
    """Both rows of the E1 exhibit: (naive violates, fast-ABD doesn't)."""
    sweep = run_grid(GRID)
    return tuple(
        _outcome(cell.point["algorithm"], cell.unwrap())
        for cell in sweep.cells
    )
