"""Experiment E17 — the batched hot path: throughput vs batch size.

Cross-key operation batching (``RandomMix.batch_size``) lets storage
clients coalesce up to ``b`` pending operations into one batched
message per round-trip; servers apply and ack whole batches, stamps are
issued per element in the historical draw order, and completions feed
the online checkers in element order.  This experiment measures what
the knob buys: the E15 16-key open-loop soak swept over
**protocols × batch size × op budget**, every cell online-checked.

The exhibits:

* **ops/sec grows ≈ linearly with batch size** (fewer round-trips,
  fewer simulated events per operation) — the acceptance claim is the
  ``batch_size=16`` ABD cell at ≥5× the unbatched cell, the same ratio
  ``tools/check_workload.py`` gates on the committed bench artifact;
* **events per op collapses** — the deterministic proxy for the
  wall-clock ratio (events are machine-independent);
* **every cell stays atomic** under its windowed online verdict —
  batching is an optimization, not a semantic change.

Per the repository invariant (**new figure = new grid literal**) the
whole experiment is :data:`GRID`.  Run directly
(``python -m repro.experiments.batched``) for the 10k sub-grid;
``run_experiment(full=True)`` adds the 100k rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.experiments.builders import keyed_mix_spec
from repro.scenarios import ScenarioSpec, SweepSpec, run_grid

#: The E15 soak shape: 40/60 open-loop mix, 16 registers, 8 readers.
MIX_WRITES = 4000
MIX_READS = 6000
SOAK_KEYS = 16
SOAK_READERS = 8


def _batched_build(point: Mapping) -> ScenarioSpec:
    protocol = point["protocol"]
    return keyed_mix_spec(
        protocol,
        SOAK_KEYS,
        writes=MIX_WRITES,
        reads=MIX_READS,
        readers=SOAK_READERS,
        horizon=float(MIX_WRITES + MIX_READS),
        seed=point["seed"],
        trace_level="metrics",
        max_ops=point["max_ops"],
        batch_size=point["batch_size"],
        params=(
            {"bounded_history": True} if protocol == "rqs-storage" else None
        ),
    )


def _batched_measure(point: Mapping, result) -> Mapping:
    online = result.online
    completed = result.ops_completed()
    metrics = {
        "verdict": "unchecked" if online is None else online.verdict,
        "operations": result.ops_begun(),
        "completed": completed,
        "events": result.adapter.sim.events_processed,
        "messages": result.adapter.network.sent_count,
        "events_per_op": round(
            result.adapter.sim.events_processed / max(completed, 1), 2
        ),
        "wall_s": round(result.execute_seconds, 4),
    }
    if online is not None:
        metrics["violations"] = len(online.violations)
        metrics["checker_max_retained"] = online.max_retained
    return metrics


#: The E17 grid: protocol × batch size × op budget on the 16-key soak.
GRID = SweepSpec(
    name="batched",
    axes={
        "protocol": ("abd", "fastabd", "rqs-storage"),
        "batch_size": (1, 4, 16),
        "max_ops": (10_000, 100_000),
        "seed": (5,),
    },
    build=_batched_build,
    measure=_batched_measure,
)


@dataclass
class BatchedRow:
    protocol: str
    batch_size: int
    max_ops: int
    verdict: str
    ops_per_sec: float
    events_per_op: float
    #: ops/sec relative to the same protocol's ``batch_size=1`` cell at
    #: the same op budget (1.0 for the unbatched cells themselves).
    speedup: float = 1.0

    def row(self) -> str:
        return (
            f"{self.protocol:>11} batch={self.batch_size:<3} "
            f"ops={self.max_ops:<7} {self.verdict:<9} "
            f"{self.ops_per_sec:>9.0f} ops/s  "
            f"{self.events_per_op:>6.2f} ev/op  "
            f"speedup={self.speedup:.2f}x"
        )


def run_experiment(
    executor: str = "serial", full: bool = False, sizes=None
) -> List[BatchedRow]:
    """Run the grid (the 10k sub-grid unless ``full``) into rows."""
    if sizes is not None:
        grid = GRID.where(max_ops=tuple(sizes))
    else:
        grid = GRID if full else GRID.where(max_ops=(10_000,))
    sweep = run_grid(grid, executor=executor)
    rows: List[BatchedRow] = []
    for cell in sweep.cells:
        metrics = cell.require().metrics
        wall = metrics["wall_s"] or 1e-9
        rows.append(
            BatchedRow(
                protocol=cell.point["protocol"],
                batch_size=int(cell.point["batch_size"]),
                max_ops=int(cell.point["max_ops"]),
                verdict=cell.verdict,
                ops_per_sec=round(metrics["completed"] / wall, 1),
                events_per_op=metrics["events_per_op"],
            )
        )
    baselines = {
        (row.protocol, row.max_ops): row.ops_per_sec
        for row in rows
        if row.batch_size == 1
    }
    for row in rows:
        base = baselines.get((row.protocol, row.max_ops))
        if base:
            row.speedup = round(row.ops_per_sec / base, 2)
    return rows


if __name__ == "__main__":
    for row in run_experiment():
        print(row.row())
