"""Experiments E6/E9 — correctness under adversity.

* :func:`storage_stress` (E6, Theorems 7/8): randomized contended
  workloads with crashes and Byzantine servers; every completed history
  must be atomic and — while a correct quorum exists — every operation
  must complete (wait-freedom).
* :func:`consensus_liveness` (E9, Theorem 12): eventual synchrony — the
  network drops everything until GST, after which view changes elect a
  correct leader and every correct learner learns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.atomicity import AtomicityReport, check_swmr_atomicity
from repro.analysis.consensus_check import check_consensus
from repro.core.constructions import threshold_rqs
from repro.sim.network import drop_rule
from repro.storage.server import FabricatingServer, SilentServer
from repro.storage.system import StorageSystem
from repro.consensus.system import ConsensusSystem


@dataclass
class StressOutcome:
    seed: int
    operations: int
    completed: int
    report: AtomicityReport

    @property
    def ok(self) -> bool:
        return self.report.atomic and self.completed == self.operations

    def row(self) -> str:
        return (
            f"seed={self.seed}: {self.completed}/{self.operations} ops, "
            f"{'atomic' if self.report.atomic else 'VIOLATION'}"
        )


def storage_stress(
    seed: int,
    n_writes: int = 8,
    n_reads: int = 12,
    byzantine: bool = True,
    crash: bool = True,
) -> StressOutcome:
    """One randomized contended run with failures.

    The system is the pbft-style ``n=7, t=2`` instance: up to 2 failures
    are tolerated; we inject one fabricating Byzantine server and one
    mid-run crash, which still leaves a correct (class-3) quorum.
    """
    rqs = threshold_rqs(7, 2, 2, 0, 2)
    factories = (
        {7: lambda pid: FabricatingServer(pid, 999, "EVIL")}
        if byzantine
        else {}
    )
    crash_times = {6: 25.0} if crash else {}
    system = StorageSystem(
        rqs,
        n_readers=3,
        server_factories=factories,
        crash_times=crash_times,
    )
    system.random_workload(n_writes, n_reads, horizon=60.0, seed=seed)
    system.run_to_completion()
    report = check_swmr_atomicity(system.operations())
    return StressOutcome(
        seed=seed,
        operations=len(system.operations()),
        completed=len(system.completed_operations()),
        report=report,
    )


def run_storage_stress(seeds: range = range(10)) -> List[StressOutcome]:
    return [storage_stress(seed) for seed in seeds]


@dataclass
class LivenessOutcome:
    gst: float
    learned: Dict[object, object]
    terminated: bool
    agreement_ok: bool

    def row(self) -> str:
        return (
            f"GST={self.gst}: learned={self.learned} "
            f"({'terminated' if self.terminated else 'NOT terminated'})"
        )


def consensus_liveness(gst: float = 40.0, horizon: float = 2000.0) -> LivenessOutcome:
    """Messages are lost until GST; the algorithm must still terminate.

    Before GST every message is dropped (the paper's model: pre-GST
    messages are received by GST or lost — we realize the "lost" case).
    The proposal itself is re-driven by the election module: after GST
    suspect timers fire, a view change elects a leader whose consult
    phase completes, and every correct learner learns.
    """
    rqs = threshold_rqs(8, 3, 1, 1, 2)
    system = ConsensusSystem(
        rqs,
        n_proposers=2,
        n_learners=3,
        rules=[drop_rule(until=gst, label="lossy until GST")],
        sync_delay=5.0,
    )
    # Arm acceptor timers directly: the initial prepare is lost pre-GST,
    # and a real deployment's clients would retransmit; the Sync message
    # of lines 101-103 plays that role but is also dropped pre-GST, so
    # the proposer re-sends it periodically here.
    system.propose_at(0.0, "V", proposer_index=0)
    for when in range(10, int(gst) + 30, 10):
        system.sim.call_at(
            float(when), system.proposers[0]._post_propose_sync
        )
    system.run(until=horizon)
    learned = {l.pid: l.learned for l in system.learners}
    report = check_consensus(
        system.operations(),
        correct_learners=[l.pid for l in system.learners],
    )
    return LivenessOutcome(
        gst=gst,
        learned=learned,
        terminated=not report.unterminated,
        agreement_ok=report.agreement_ok,
    )
