"""Experiments E6/E9 — correctness under adversity.

* :func:`storage_stress` / :func:`run_storage_stress` (E6, Theorems
  7/8): randomized contended workloads with crashes and Byzantine
  servers; every completed history must be atomic and — while a correct
  quorum exists — every operation must complete (wait-freedom).
* :func:`consensus_liveness` (E9, Theorem 12): eventual synchrony — the
  network drops everything until GST, after which view changes elect a
  correct leader and every correct learner learns.

Both are sweeps over single scenario specs: the multi-seed stress study
is :func:`storage_stress_grid` (a ``seed`` axis over a seeded
:class:`~repro.scenarios.RandomMix` literal), the pre-GST regime is
:func:`liveness_grid` (a :func:`~repro.scenarios.lossy_until_gst` fault
schedule parameterized by a ``gst`` axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.analysis.atomicity import AtomicityReport
from repro.scenarios import (
    ByzantineRole,
    Crash,
    FaultPlan,
    Propose,
    RandomMix,
    Resync,
    ScenarioSpec,
    SweepSpec,
    lossy_until_gst,
    run_grid,
)


@dataclass
class StressOutcome:
    seed: int
    operations: int
    completed: int
    report: AtomicityReport

    @property
    def ok(self) -> bool:
        return self.report.atomic and self.completed == self.operations

    def row(self) -> str:
        return (
            f"seed={self.seed}: {self.completed}/{self.operations} ops, "
            f"{'atomic' if self.report.atomic else 'VIOLATION'}"
        )


def _stress_build(point: Mapping) -> ScenarioSpec:
    """One randomized contended run with failures.

    The system is the pbft-style ``n=7, t=2`` instance: up to 2 failures
    are tolerated; we inject one fabricating Byzantine server and one
    mid-run crash, which still leaves a correct (class-3) quorum.
    """
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs="threshold:7,2,2,0,2",
        readers=3,
        faults=FaultPlan(
            crashes=(Crash(6, 25.0),) if point["crash"] else (),
            byzantine=(
                (ByzantineRole(7, "fabricating",
                               params={"ts": 999, "value": "EVIL"}),)
                if point["byzantine"] else ()
            ),
        ),
        workload=(RandomMix(point["writes"], point["reads"], horizon=60.0),),
        seed=point["seed"],
    )


def _stress_measure(point: Mapping, result) -> Mapping:
    report = result.atomicity
    operations, completed = len(result.records), len(result.completed)
    ok = report.atomic and completed == operations
    return {
        "verdict": "wait-free atomic" if ok else "violation",
        "operations": operations,
        "completed": completed,
    }


def storage_stress_grid(
    seeds: Sequence[int],
    n_writes: int = 8,
    n_reads: int = 12,
    byzantine: bool = True,
    crash: bool = True,
) -> SweepSpec:
    """The E6 grid: one randomized contended cell per seed."""
    return SweepSpec(
        name="storage-stress",
        axes={
            "seed": tuple(seeds),
            "writes": (n_writes,),
            "reads": (n_reads,),
            "byzantine": (byzantine,),
            "crash": (crash,),
        },
        build=_stress_build,
        measure=_stress_measure,
    )


def _stress_outcome(cell) -> StressOutcome:
    result = cell.unwrap()
    return StressOutcome(
        seed=int(cell.point["seed"]),
        operations=len(result.records),
        completed=len(result.completed),
        report=result.atomicity,
    )


def storage_stress(
    seed: int,
    n_writes: int = 8,
    n_reads: int = 12,
    byzantine: bool = True,
    crash: bool = True,
) -> StressOutcome:
    """One randomized contended run with failures (a single-cell grid)."""
    grid = storage_stress_grid(
        (seed,), n_writes=n_writes, n_reads=n_reads,
        byzantine=byzantine, crash=crash,
    )
    return _stress_outcome(run_grid(grid).cells[0])


def run_storage_stress(seeds: Sequence[int] = range(10)) -> List[StressOutcome]:
    sweep = run_grid(storage_stress_grid(tuple(seeds)))
    return [_stress_outcome(cell) for cell in sweep.cells]


@dataclass
class LivenessOutcome:
    gst: float
    learned: Dict[object, object]
    terminated: bool
    agreement_ok: bool

    def row(self) -> str:
        return (
            f"GST={self.gst}: learned={self.learned} "
            f"({'terminated' if self.terminated else 'NOT terminated'})"
        )


def _liveness_build(point: Mapping) -> ScenarioSpec:
    gst = point["gst"]
    return ScenarioSpec(
        protocol="rqs-consensus",
        rqs="example6",
        proposers=2,
        learners=3,
        faults=FaultPlan(asynchrony=(lossy_until_gst(gst),)),
        workload=(Propose(0.0, "V"),) + tuple(
            Resync(float(when), proposer=0)
            for when in range(10, int(gst) + 30, 10)
        ),
        horizon=point["horizon"],
        params={"sync_delay": 5.0},
    )


def _liveness_measure(point: Mapping, result) -> Mapping:
    report = result.consensus
    terminated = not report.unterminated
    return {
        "verdict": (
            "live" if terminated and report.agreement_ok else "violation"
        ),
        "terminated": terminated,
        "agreement_ok": report.agreement_ok,
    }


def liveness_grid(gst: float, horizon: float) -> SweepSpec:
    """The E9 grid: the eventual-synchrony schedule at one (or more) GSTs."""
    return SweepSpec(
        name="consensus-liveness",
        axes={"gst": (gst,), "horizon": (horizon,)},
        build=_liveness_build,
        measure=_liveness_measure,
    )


def consensus_liveness(gst: float = 40.0, horizon: float = 2000.0) -> LivenessOutcome:
    """Messages are lost until GST; the algorithm must still terminate.

    Before GST every message is dropped (the paper's model: pre-GST
    messages are received by GST or lost — we realize the "lost" case).
    The proposal itself is re-driven by the election module: after GST
    suspect timers fire, a view change elects a leader whose consult
    phase completes, and every correct learner learns.  The initial
    prepare is lost pre-GST, and a real deployment's clients would
    retransmit; the Sync message of lines 101-103 plays that role but is
    also dropped pre-GST, so the workload re-sends it periodically.
    """
    cell = run_grid(liveness_grid(gst, horizon)).cells[0]
    result = cell.unwrap()
    report = result.consensus
    return LivenessOutcome(
        gst=gst,
        learned={l.pid: l.learned for l in result.system.learners},
        terminated=not report.unterminated,
        agreement_ok=report.agreement_ok,
    )
