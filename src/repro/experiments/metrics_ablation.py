"""Experiment E13 — load/availability ablation (Section 6 directions).

The paper lists "the load and availability of RQS" as an open direction.
This ablation quantifies the price of fast quorum classes on the
Example 6 threshold family: class-1 quorums are larger, so they carry a
higher load and die sooner as the per-server failure probability grows —
the crossover where the *expected best-case latency* of the refined
system stops improving on a flat (class-3 only) system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.constructions import threshold_rqs
from repro.core.metrics import (
    availability,
    best_case_latency_profile,
    system_load,
)
from repro.core.rqs import RefinedQuorumSystem
from repro.core.search import search_rqs
from repro.core.adversary import ExplicitAdversary, ThresholdAdversary


@dataclass
class MetricsRow:
    p: float
    load_class1: float
    load_class3: float
    avail_class1: float
    avail_class2: float
    avail_class3: float
    expected_latency: float

    def row(self) -> str:
        return (
            f"p={self.p:.2f}  load(QC1)={self.load_class1:.3f} "
            f"load(RQS)={self.load_class3:.3f}  "
            f"avail 1/2/3={self.avail_class1:.3f}/"
            f"{self.avail_class2:.3f}/{self.avail_class3:.3f}  "
            f"E[rounds]={self.expected_latency:.3f}"
        )


def default_rqs() -> RefinedQuorumSystem:
    return threshold_rqs(8, 3, 1, 1, 2)


def sweep(
    probabilities: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    latencies: Tuple[int, int, int] = (1, 2, 3),
) -> List[MetricsRow]:
    rqs = default_rqs()
    rows = []
    for p in probabilities:
        rows.append(
            MetricsRow(
                p=p,
                load_class1=system_load(rqs, cls=1),
                load_class3=system_load(rqs, cls=3),
                avail_class1=availability(rqs, p, cls=1),
                avail_class2=availability(rqs, p, cls=2),
                avail_class3=availability(rqs, p, cls=3),
                expected_latency=best_case_latency_profile(rqs, p, latencies),
            )
        )
    return rows


def search_cost(sizes: Sequence[int] = (4, 5, 6)) -> List[Tuple[int, int, int]]:
    """RQS discovery for general adversaries: (``|S|``, quorums found,
    class-1 quorums found) per universe size."""
    rows = []
    for n in sizes:
        servers = tuple(range(1, n + 1))
        # a lightly-irregular adversary: one "fragile pair" plus singletons
        adversary = ExplicitAdversary(
            servers, [{1, 2}] + [{i} for i in servers]
        )
        rqs = search_rqs(adversary, min_quorum_size=max(2, n - 2))
        rows.append((n, len(rqs.quorums), len(rqs.qc1)))
    return rows
