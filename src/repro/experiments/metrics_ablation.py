"""Experiment E13 — load/availability ablation (Section 6 directions).

The paper lists "the load and availability of RQS" as an open direction.
This ablation quantifies the price of fast quorum classes on the
Example 6 threshold family: class-1 quorums are larger, so they carry a
higher load and die sooner as the per-server failure probability grows —
the crossover where the *expected best-case latency* of the refined
system stops improving on a flat (class-3 only) system.

Both studies are analytic sweeps: :func:`ablation_grid` sweeps the
per-server failure probability, :func:`search_grid` sweeps universe
sizes for general-adversary RQS discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.core.adversary import ExplicitAdversary
from repro.core.constructions import threshold_rqs
from repro.core.metrics import (
    availability,
    best_case_latency_profile,
    system_load,
)
from repro.core.rqs import RefinedQuorumSystem
from repro.core.search import search_rqs
from repro.scenarios import SweepSpec, labeled, run_grid


@dataclass
class MetricsRow:
    p: float
    load_class1: float
    load_class3: float
    avail_class1: float
    avail_class2: float
    avail_class3: float
    expected_latency: float

    def row(self) -> str:
        return (
            f"p={self.p:.2f}  load(QC1)={self.load_class1:.3f} "
            f"load(RQS)={self.load_class3:.3f}  "
            f"avail 1/2/3={self.avail_class1:.3f}/"
            f"{self.avail_class2:.3f}/{self.avail_class3:.3f}  "
            f"E[rounds]={self.expected_latency:.3f}"
        )


def default_rqs() -> RefinedQuorumSystem:
    return threshold_rqs(8, 3, 1, 1, 2)


def _ablation_cell(point: Mapping) -> Mapping:
    rqs = default_rqs()
    p = point["p"]
    return {
        # system_load returns an exact Fraction; cells carry floats.
        "load_class1": float(system_load(rqs, cls=1)),
        "load_class3": float(system_load(rqs, cls=3)),
        "avail_class1": availability(rqs, p, cls=1),
        "avail_class2": availability(rqs, p, cls=2),
        "avail_class3": availability(rqs, p, cls=3),
        "expected_latency": best_case_latency_profile(
            rqs, p, point["latencies"]
        ),
    }


def ablation_grid(
    probabilities: Sequence[float],
    latencies: Tuple[int, int, int] = (1, 2, 3),
) -> SweepSpec:
    """The E13 grid: one analytic cell per failure probability."""
    return SweepSpec(
        name="metrics-ablation",
        axes={
            "p": tuple(probabilities),
            "latencies": (labeled(repr(latencies), latencies),),
        },
        evaluate=_ablation_cell,
    )


def sweep(
    probabilities: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    latencies: Tuple[int, int, int] = (1, 2, 3),
) -> List[MetricsRow]:
    result = run_grid(ablation_grid(probabilities, latencies))
    return [
        MetricsRow(p=p, **cell.require().metrics)
        for p, cell in zip(probabilities, result.cells)
    ]


def _search_cell(point: Mapping) -> Mapping:
    n = point["n"]
    servers = tuple(range(1, n + 1))
    # a lightly-irregular adversary: one "fragile pair" plus singletons
    adversary = ExplicitAdversary(
        servers, [{1, 2}] + [{i} for i in servers]
    )
    rqs = search_rqs(adversary, min_quorum_size=max(2, n - 2))
    return {"quorums": len(rqs.quorums), "class1": len(rqs.qc1)}


def search_grid(sizes: Sequence[int]) -> SweepSpec:
    """RQS-discovery cost grid: one analytic cell per universe size."""
    return SweepSpec(
        name="rqs-search-cost",
        axes={"n": tuple(sizes)},
        evaluate=_search_cell,
    )


def search_cost(sizes: Sequence[int] = (4, 5, 6)) -> List[Tuple[int, int, int]]:
    """RQS discovery for general adversaries: (``|S|``, quorums found,
    class-1 quorums found) per universe size."""
    result = run_grid(search_grid(sizes))
    return [
        (n, cell.require().metrics["quorums"], cell.metrics["class1"])
        for n, cell in zip(sizes, result.cells)
    ]
