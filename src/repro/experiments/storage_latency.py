"""Experiment E5 — the storage latency table (Theorem 9).

The paper's headline claim for storage: synchronous, uncontended
operations complete in

======================  ==============  =============
available quorum class  write (rounds)  read (rounds)
======================  ==============  =============
1                       1               1
2                       2               2
3                       3               3
======================  ==============  =============

We measure writes by crashing servers *before* the write so that exactly
a class-1 / class-2 / class-3 quorum of correct servers remains.

Reads are measured after a **completed single-round write whose round-1
message missed one server** (the paper's ex2/ex3 situation in Figure 4 —
with a fully-replicated completed write our reads finish in one round
regardless, which is sound but uninformative), with servers crashed
after the write so the reader sees a class-1 / class-2 / class-3 quorum.

The default system is the Example 6 instance ``n=8, t=3, k=1, q=1, r=2``
(the scenario RQS name ``"example6"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.scenarios import (
    Crash,
    FaultPlan,
    Hold,
    Read,
    ScenarioSpec,
    Write,
    crashes,
    run,
)

DEFAULT_RQS = "example6"


@dataclass
class LatencyRow:
    quorum_class: int
    write_rounds: Optional[int]
    read_rounds: Optional[int]
    atomic: bool

    def row(self) -> str:
        return (
            f"class {self.quorum_class}: write={self.write_rounds} rounds, "
            f"read={self.read_rounds} rounds, "
            f"{'atomic' if self.atomic else 'VIOLATION'}"
        )


def measure_write(crash_count: int) -> Tuple[int, bool]:
    """Write latency with ``crash_count`` servers down from the start."""
    spec = ScenarioSpec(
        protocol="rqs-storage",
        rqs=DEFAULT_RQS,
        readers=1,
        faults=FaultPlan(
            crashes=crashes({sid: 0.0 for sid in range(1, crash_count + 1)})
        ),
        # The write completes within 3 two-Δ rounds; read well after.
        workload=(Write(0.0, "value"), Read(10.0)),
    )
    result = run(spec)
    record, read = result.write(), result.read()
    ok = result.atomicity.atomic and read.result == "value"
    return record.rounds, ok


def measure_read(crash_count: int) -> Tuple[int, bool]:
    """Read latency after an incomplete-but-completed 1-round write.

    The writer's round-1 message to server 1 is held, so the write
    completes via the class-1 quorum ``{2..8}``; then ``crash_count``
    servers (2, 3, ...) crash before the read.
    """
    spec = ScenarioSpec(
        protocol="rqs-storage",
        rqs=DEFAULT_RQS,
        readers=1,
        faults=FaultPlan(
            # The write finishes at 2Δ; crash just before the read starts.
            crashes=tuple(
                Crash(sid, 5.0) for sid in range(2, 2 + crash_count)
            ),
            asynchrony=(
                Hold(src=("writer",), dst=(1,), label="wr misses s1"),
            ),
        ),
        workload=(Write(0.0, "value"), Read(5.0)),
    )
    result = run(spec)
    write_record, record = result.write(), result.read()
    assert write_record.rounds == 1, "setup: the write must be 1-round"
    ok = result.atomicity.atomic and record.result == "value"
    return record.rounds, ok


#: servers to crash so the *best correct quorum* has the given class
#: (for the n=8, t=3, q=1, r=2 system: class1 needs ≥7 up, class2 ≥6,
#: class3 ≥5).
_WRITE_CRASHES = {1: 1, 2: 2, 3: 3}
#: For reads the writer already missed server 1 (which still answers
#: reads), so after crashing c more servers the responder set has 8-c
#: servers but only 7-c of them hold the value: crashing 2 (resp. 3)
#: makes the best *responding* quorum class 2 (resp. 3) while defeating
#: the class-1 fast path (fewer than n-2q=6 holders).
_READ_CRASHES = {1: 0, 2: 2, 3: 3}


def run_experiment() -> List[LatencyRow]:
    rows: List[LatencyRow] = []
    for cls in (1, 2, 3):
        write_rounds, write_ok = measure_write(_WRITE_CRASHES[cls])
        read_rounds, read_ok = measure_read(_READ_CRASHES[cls])
        rows.append(
            LatencyRow(cls, write_rounds, read_rounds, write_ok and read_ok)
        )
    return rows


PAPER_CLAIM = {1: (1, 1), 2: (2, 2), 3: (3, 3)}


def matches_paper(rows: Sequence[LatencyRow]) -> bool:
    """The measured shape must not exceed the paper's claimed bounds and
    must hit them exactly for this scenario family."""
    return all(
        (row.write_rounds, row.read_rounds) == PAPER_CLAIM[row.quorum_class]
        and row.atomic
        for row in rows
    )
