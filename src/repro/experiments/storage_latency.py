"""Experiment E5 — the storage latency table (Theorem 9).

The paper's headline claim for storage: synchronous, uncontended
operations complete in

======================  ==============  =============
available quorum class  write (rounds)  read (rounds)
======================  ==============  =============
1                       1               1
2                       2               2
3                       3               3
======================  ==============  =============

We measure writes by crashing servers *before* the write so that exactly
a class-1 / class-2 / class-3 quorum of correct servers remains.

Reads are measured after a **completed single-round write whose round-1
message missed one server** (the paper's ex2/ex3 situation in Figure 4 —
with a fully-replicated completed write our reads finish in one round
regardless, which is sound but uninformative), with servers crashed
after the write so the reader sees a class-1 / class-2 / class-3 quorum.

The default system is the Example 6 instance ``n=8, t=3, k=1, q=1, r=2``
(the scenario RQS name ``"example6"``).

The whole experiment is the sweep :data:`GRID` — an ``op`` ×
``quorum_class`` grid, each cell one scenario, run by
:func:`repro.scenarios.run_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.scenarios import (
    Crash,
    FaultPlan,
    Hold,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    crashes,
    run_grid,
)

DEFAULT_RQS = "example6"

#: servers to crash so the *best correct quorum* has the given class
#: (for the n=8, t=3, q=1, r=2 system: class1 needs ≥7 up, class2 ≥6,
#: class3 ≥5).
_WRITE_CRASHES = {1: 1, 2: 2, 3: 3}
#: For reads the writer already missed server 1 (which still answers
#: reads), so after crashing c more servers the responder set has 8-c
#: servers but only 7-c of them hold the value: crashing 2 (resp. 3)
#: makes the best *responding* quorum class 2 (resp. 3) while defeating
#: the class-1 fast path (fewer than n-2q=6 holders).
_READ_CRASHES = {1: 0, 2: 2, 3: 3}


@dataclass
class LatencyRow:
    quorum_class: int
    write_rounds: Optional[int]
    read_rounds: Optional[int]
    atomic: bool

    def row(self) -> str:
        return (
            f"class {self.quorum_class}: write={self.write_rounds} rounds, "
            f"read={self.read_rounds} rounds, "
            f"{'atomic' if self.atomic else 'VIOLATION'}"
        )


def _write_spec(crash_count: int) -> ScenarioSpec:
    """Write latency setup: ``crash_count`` servers down from the start."""
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs=DEFAULT_RQS,
        readers=1,
        faults=FaultPlan(
            crashes=crashes({sid: 0.0 for sid in range(1, crash_count + 1)})
        ),
        # The write completes within 3 two-Δ rounds; read well after.
        workload=(Write(0.0, "value"), Read(10.0)),
    )


def _read_spec(crash_count: int) -> ScenarioSpec:
    """Read latency setup after an incomplete-but-completed 1-round write.

    The writer's round-1 message to server 1 is held, so the write
    completes via the class-1 quorum ``{2..8}``; then ``crash_count``
    servers (2, 3, ...) crash before the read.
    """
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs=DEFAULT_RQS,
        readers=1,
        faults=FaultPlan(
            # The write finishes at 2Δ; crash just before the read starts.
            crashes=tuple(
                Crash(sid, 5.0) for sid in range(2, 2 + crash_count)
            ),
            asynchrony=(
                Hold(src=("writer",), dst=(1,), label="wr misses s1"),
            ),
        ),
        workload=(Write(0.0, "value"), Read(5.0)),
    )


def _build(point: Mapping) -> ScenarioSpec:
    cls = point["quorum_class"]
    if point["op"] == "write":
        return _write_spec(_WRITE_CRASHES[cls])
    return _read_spec(_READ_CRASHES[cls])


def _measure(point: Mapping, result) -> Mapping:
    write_record, read_record = result.write(), result.read()
    if point["op"] == "write":
        measured, rounds = write_record, write_record.rounds
    else:
        assert write_record.rounds == 1, "setup: the write must be 1-round"
        measured, rounds = read_record, read_record.rounds
    ok = result.atomicity.atomic and read_record.result == "value"
    return {
        "rounds": rounds,
        "time": measured.completed_at - measured.invoked_at,
        "verdict": "atomic" if ok else "violation",
    }


#: The E5 grid: measured operation × available quorum class.
GRID = SweepSpec(
    name="storage-latency",
    axes={"op": ("write", "read"), "quorum_class": (1, 2, 3)},
    build=_build,
    measure=_measure,
)


def run_experiment() -> List[LatencyRow]:
    sweep = run_grid(GRID)
    rows: List[LatencyRow] = []
    for cls in (1, 2, 3):
        write_cell = sweep.cell(op="write", quorum_class=cls).require()
        read_cell = sweep.cell(op="read", quorum_class=cls).require()
        rows.append(
            LatencyRow(
                quorum_class=cls,
                write_rounds=write_cell.metrics.get("rounds"),
                read_rounds=read_cell.metrics.get("rounds"),
                atomic=(
                    write_cell.verdict == "atomic"
                    and read_cell.verdict == "atomic"
                ),
            )
        )
    return rows


PAPER_CLAIM = {1: (1, 1), 2: (2, 2), 3: (3, 3)}


def matches_paper(rows: Sequence[LatencyRow]) -> bool:
    """The measured shape must not exceed the paper's claimed bounds and
    must hit them exactly for this scenario family."""
    return all(
        (row.write_rounds, row.read_rounds) == PAPER_CLAIM[row.quorum_class]
        and row.atomic
        for row in rows
    )
