"""Paper-claim drivers: every figure and theorem as a sweep grid.

Each module regenerates one exhibit of the paper (see
``docs/experiments.md`` for the full index): it declares a
:class:`~repro.scenarios.SweepSpec` grid literal — protocols × fault
plans × seeds, or an analytic parameter axis — plus build/measure hooks,
runs it through :func:`~repro.scenarios.run_grid`, and reshapes the
resulting cells into the paper's table or exhibit.

The two layer invariants both bite here: every execution goes through
``repro.scenarios`` (drivers build specs, never wire simulators by
hand), and every parameter study is a grid literal (drivers never
hand-roll protocol/seed loops).

=====================  ========================================================
module                 exhibit
=====================  ========================================================
``fig1``               E1 — Figure 1 atomicity-violation counterexample
``fig4``               E4 — Figure 4 Property-3 intuition executions
``storage_latency``    E5 — Theorem 9 storage staircase (1/2/3 rounds)
``stress``             E6/E9 — randomized adversity + GST liveness
``theorem3``           E7 — Figure 8 storage impossibility without P3
``consensus_latency``  E8 — Section 4.2 consensus staircase (2/3/4 delays)
``theorem6``           E10 — Figure 16 consensus agreement violation
``bounds``             E11 — tightness of the closed-form inequalities
``baselines``          E12 — RQS vs fast-ABD / ABD / Paxos / PBFT
``metrics_ablation``   E13 — load/availability ablation
``contention``         E14 — keyed-register contention sweep (per-key verdicts)
``soak``               E15 — horizon-free streaming soaks (online verdicts)
``capacity``           E16 — predicted vs measured strategy capacity
``batched``            E17 — batched hot path: throughput vs batch size
``scaling``            E18 — sharded soak scaling: shards × op budget
``skew_scaling``       E19 — skew-balanced sharding + batched tail latency
=====================  ========================================================

Shared helpers: :func:`~repro.experiments.builders.keyed_mix_spec`
builds the keyed-``RandomMix`` cells used by the contention/soak grids
and the workload bench, so the spec shape lives in exactly one place.
"""

from repro.experiments.builders import DEFAULT_RQS, keyed_mix_spec

__all__ = ["DEFAULT_RQS", "keyed_mix_spec"]
