"""Experiment E19 — skew-balanced sharding + batched tail latency.

Two grids probe what PRs 8-10's perf work holds onto under adversity:

**Skew grid** (:data:`GRID`) — skew × shards for the batched zipfian
soak.  Uniform sharding is load-balanced by construction; a zipfian key
draw concentrates mass on the hot keys, and a crc32 key→shard rule then
lands whole hot keys on one worker.  The weighted LPT rule in
:func:`repro.scenarios.workloads.shard_assignment` bin-packs the
*expected* per-key frequencies instead, so the grid measures two things
per cell: ``capacity_ops_per_sec`` (the near-linear-scaling claim,
CPU-time basis as in E18) and ``imbalance`` (max/mean completed ops per
shard — 1.0 is perfect balance, and the soak gate requires <= 1.3 at
skew 1.2).  Cells are **duration-bounded** (not op-budgeted): an op
budget is split evenly across shards, which would pin imbalance at 1.0
by fiat; a shared time horizon lets a hot shard fall behind and show it.
At skew 2.0 × 4 shards the grid also shows where balance *must* break:
the hot key's weight (1.0 of a ~1.62 total) exceeds a fair quarter, so
every partition is pinned at the hot-key imbalance floor of ~2.47 — the
LPT rule hits exactly that floor rather than crc32's worse draw.

**Tail grid** (:data:`TAIL_GRID`) — batched vs unbatched p99 read
latency under a lossy-until-GST fault plan, for the two protocols whose
batched readers complete **per element**.  Before per-element
completion, one straggling element (a quorum short a lossy server's
replies, or a degraded BCD class) stalled its whole batch; with it, the
contract is that batching never inflates the read tail:
``p99(batched) <= 1.5 x p99(unbatched)`` per protocol — asserted in
``tests/experiments/test_skew_scaling.py``.  The plans deliberately
make the unbatched tail non-trivial (rqs-storage: two crashed servers
plus a lossy one degrade the responded-quorum class, so unbatched reads
hit the Theorem 9 three-round ceiling; fast-ABD: a lossy server plus a
slowed writer leg widen the pre-write race window).

Run directly (``python -m repro.experiments.skew_scaling``) for both.
"""

from __future__ import annotations

import resource
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.builders import keyed_mix_spec
from repro.scenarios import ScenarioSpec, SweepSpec, run_grid
from repro.scenarios.faults import Crash, Delay, Drop, FaultPlan

# -- the skew grid -------------------------------------------------------------

#: The E18 soak mix at E19's key-space width: 64 keys flatten the
#: zipfian head enough that a weighted partition *can* balance it
#: (with 16 keys the skew-1.2 hot key alone outweighs a fair share).
MIX_WRITES = 4000
MIX_READS = 6000
SOAK_READERS = 8
SOAK_KEYS = 64
BATCH = 16

#: Shared open-loop time horizon per cell (~1 op per time unit).
DURATION = 30_000.0


def _skew_build(point: Mapping) -> ScenarioSpec:
    spec = keyed_mix_spec(
        "abd",
        SOAK_KEYS,
        writes=MIX_WRITES,
        reads=MIX_READS,
        readers=SOAK_READERS,
        horizon=float(MIX_WRITES + MIX_READS),
        skew=float(point["skew"]),
        seed=point["seed"],
        trace_level="metrics",
        duration=DURATION,
        batch_size=BATCH,
    )
    shards = int(point["shards"])
    return spec.with_(shards=shards) if shards > 1 else spec


def _skew_measure(point: Mapping, result) -> Mapping:
    completed = result.ops_completed()
    wall = result.execute_seconds or 1e-9
    if getattr(result, "n_shards", 0) > 1:
        cpu = result.cpu_seconds
        capacity = result.capacity_ops_per_sec
        imbalance = result.imbalance
        rss = result.max_shard_rss_kb
    else:
        cpu = result.execute_cpu_seconds or wall
        capacity = completed / cpu if cpu else 0.0
        imbalance = 1.0
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    metrics = {
        "verdict": "unchecked",
        "operations": result.ops_begun(),
        "completed": completed,
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
        "capacity_ops_per_sec": round(capacity, 1),
        "imbalance": round(imbalance, 4),
        "max_shard_rss_kb": rss,
    }
    online = result.online
    if online is not None:
        metrics["verdict"] = online.verdict
        metrics["keys_checked"] = len(online.keys)
        metrics["violations"] = online.violation_count
    return metrics


#: The E19 skew grid: zipf exponent × shard fan-out.
GRID = SweepSpec(
    name="skew_scaling",
    axes={
        "skew": (0.8, 1.2, 2.0),
        "shards": (1, 2, 4),
        "seed": (5,),
    },
    build=_skew_build,
    measure=_skew_measure,
)


@dataclass
class SkewRow:
    skew: float
    shards: int
    verdict: str
    capacity_ops_per_sec: float
    #: capacity relative to the same-skew shards=1 row (1.0 there).
    capacity_ratio: float
    imbalance: float

    def row(self) -> str:
        return (
            f"skew={self.skew:<4} shards={self.shards:<2} "
            f"{self.verdict:<9} "
            f"capacity={self.capacity_ops_per_sec:>9.0f} ops/s "
            f"({self.capacity_ratio:.2f}x)  "
            f"imbalance={self.imbalance:.3f}"
        )


def run_experiment(
    executor: str = "serial",
    skews: Optional[Sequence[float]] = None,
    shards: Optional[Sequence[int]] = None,
) -> List[SkewRow]:
    """Run the skew grid into rows with per-skew capacity ratios
    against the unsharded baseline."""
    grid = GRID
    if skews is not None:
        grid = grid.where(skew=tuple(skews))
    if shards is not None:
        grid = grid.where(shards=tuple(shards))
    sweep = run_grid(grid, executor=executor)
    cells = [
        (cell.point, cell.verdict, cell.require().metrics)
        for cell in sweep.cells
    ]
    baseline = {
        point["skew"]: metrics["capacity_ops_per_sec"]
        for point, _, metrics in cells
        if point["shards"] == "1"
    }
    rows: List[SkewRow] = []
    for point, verdict, metrics in cells:
        base = baseline.get(point["skew"]) or 0.0
        capacity = metrics["capacity_ops_per_sec"]
        rows.append(
            SkewRow(
                skew=float(point["skew"]),
                shards=int(point["shards"]),
                verdict=verdict,
                capacity_ops_per_sec=capacity,
                capacity_ratio=round(capacity / base, 3) if base else 0.0,
                imbalance=metrics["imbalance"],
            )
        )
    return rows


# -- the tail grid -------------------------------------------------------------

#: Global stabilization time for the tail plans: both lossy regimes
#: heal at GST, well inside the cells' horizon.
GST = 60.0
TAIL_HORIZON = 80.0
TAIL_KEYS = 4
TAIL_WRITES = 60
TAIL_READS = 120
TAIL_READERS = 4
TAIL_SKEW = 1.2
TAIL_BATCH = 16
TAIL_SEED = 11

#: Per-protocol lossy-until-GST plans tuned so the *unbatched* read
#: tail is the protocol's honest degraded-mode figure (see module
#: docstring) — the 1.5x assertion is vacuous against an all-fast tail.
TAIL_PLANS: Dict[str, FaultPlan] = {
    "rqs-storage": FaultPlan(
        crashes=(Crash(6, 0.0), Crash(7, 0.0)),
        asynchrony=(Drop(src=(5,), until=GST, label="lossy server 5"),),
    ),
    "fastabd": FaultPlan(
        asynchrony=(
            Drop(src=(2,), until=GST, label="lossy server 2"),
            Delay(3.0, src=("writer",), dst=(0, 1), until=GST,
                  label="slow writer leg"),
        ),
    ),
}


def _tail_build(point: Mapping) -> ScenarioSpec:
    protocol = str(point["protocol"])
    return keyed_mix_spec(
        protocol,
        TAIL_KEYS,
        writes=TAIL_WRITES,
        reads=TAIL_READS,
        readers=TAIL_READERS,
        horizon=TAIL_HORIZON,
        skew=TAIL_SKEW,
        seed=point["seed"],
        trace_level="full",
        batch_size=int(point["batch"]),
    ).with_(faults=TAIL_PLANS[protocol])


def _tail_measure(point: Mapping, result) -> Mapping:
    latency = result.latency("read")
    return {
        "verdict": "atomic" if result.atomicity.atomic else "violation",
        "completed": result.ops_completed(),
        "reads": latency.count,
        "read_p50": latency.p50_time,
        "read_p99": latency.p99_time,
        "max_rounds": max((r.rounds for r in result.reads), default=0),
    }


#: The E19 tail grid: per-element protocols × batch on/off.
TAIL_GRID = SweepSpec(
    name="skew_tail",
    axes={
        "protocol": ("fastabd", "rqs-storage"),
        "batch": (1, TAIL_BATCH),
        "seed": (TAIL_SEED,),
    },
    build=_tail_build,
    measure=_tail_measure,
)


@dataclass
class TailRow:
    protocol: str
    verdict: str
    unbatched_p99: float
    batched_p99: float
    #: batched p99 / unbatched p99 — the <= 1.5 contract figure.
    p99_ratio: float

    def row(self) -> str:
        return (
            f"{self.protocol:<12} {self.verdict:<9} "
            f"p99 unbatched={self.unbatched_p99:>5.1f} "
            f"batched={self.batched_p99:>5.1f} "
            f"ratio={self.p99_ratio:.2f}"
        )


def run_tail(executor: str = "serial") -> List[TailRow]:
    """Run the tail grid into one batched/unbatched ratio row per
    protocol."""
    sweep = run_grid(TAIL_GRID, executor=executor)
    by_protocol: Dict[str, Dict[str, Mapping]] = {}
    verdicts: Dict[str, str] = {}
    for cell in sweep.cells:
        metrics = cell.require().metrics
        by_protocol.setdefault(cell.point["protocol"], {})[
            cell.point["batch"]
        ] = metrics
        if cell.verdict != "atomic":
            verdicts[cell.point["protocol"]] = str(cell.verdict)
    rows: List[TailRow] = []
    for protocol, cells in by_protocol.items():
        unbatched = cells["1"]["read_p99"]
        batched = cells[str(TAIL_BATCH)]["read_p99"]
        rows.append(
            TailRow(
                protocol=protocol,
                verdict=verdicts.get(protocol, "atomic"),
                unbatched_p99=unbatched,
                batched_p99=batched,
                p99_ratio=(
                    round(batched / unbatched, 3) if unbatched else 0.0
                ),
            )
        )
    return rows


if __name__ == "__main__":
    for skew_row in run_experiment():
        print(skew_row.row())
    for tail_row in run_tail():
        print(tail_row.row())
