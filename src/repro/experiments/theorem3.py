"""Experiment E7 — Figure 8: the Theorem 3 impossibility construction.

Theorem 3: no ``(Q(3), B)``-atomic storage can be both ``(1, Q(1))``-fast
and ``(2, Q(2))``-fast when Property 3 fails.  We mechanize the proof's
executions against the *real* RQS storage algorithm configured with a
quorum family that satisfies Properties 1-2 but **violates Property 3**
(the Example 6 instance ``n=8, t=3, k=1, q=1, r=3``:
``n > 2t+k`` ✓, ``n > t+2k+2q`` ✓, but ``n = t+r+k+min(k,q)`` ✗).

From a concrete negation witness ``(Q1, Q2, Q, B'1, B2)`` with
``Q2∩Q \\ B'1 = B2 ∈ B`` and ``Q1∩Q2∩Q \\ B'1 = ∅`` we stage:

* **ex''2** — ``wr1 = write(v1)`` reaches ``Q2`` in round 1 but only
  ``Q1 ∩ Q2`` in round 2, then the writer crashes; reader ``r1``
  (cut off from ``S \\ Q1``) returns ``v1`` in **one round** — the
  fast path any ``(1,Q(1))``-fast algorithm must take.
* **ex4** — the Byzantine set ``B1`` wipes its state to σ0; reader
  ``r2`` (cut off from ``S \\ Q``) completes, and whatever it returns is
  wrong: ``v1`` would be fabricated in the indistinguishable **ex5**
  (where nothing was ever written and ``B2`` forges σ1), while ⊥ inverts
  ``r1``'s read in ex4.

The driver runs ex''2+ex4 *and* ex5, asserts the two runs are
indistinguishable to ``r2`` (same output), and reports the atomicity
violation the checker finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.analysis.atomicity import AtomicityReport, check_swmr_atomicity
from repro.core.constructions import threshold_rqs
from repro.core.properties import P3Witness, negate_property3
from repro.core.rqs import RefinedQuorumSystem
from repro.sim.network import hold_rule
from repro.storage.history import History
from repro.storage.messages import WR
from repro.storage.server import ForgetfulServer
from repro.storage.system import StorageSystem


def broken_rqs() -> RefinedQuorumSystem:
    """Properties 1-2 hold, Property 3 fails (checked by the caller)."""
    return threshold_rqs(8, 3, 1, 1, 3, validate=False)


def find_witness(rqs: RefinedQuorumSystem) -> P3Witness:
    witness = negate_property3(
        rqs.adversary, rqs.qc1, rqs.qc2, rqs.quorums
    )
    if witness is None:
        raise AssertionError("expected a P3 violation witness")
    return witness


@dataclass
class Theorem3Outcome:
    witness: P3Witness
    r1_value: object
    r1_rounds: int
    ex4_r2_value: object
    ex5_r2_value: object
    indistinguishable: bool
    report: AtomicityReport

    def rows(self) -> Tuple[str, ...]:
        rules = ",".join(sorted({v.rule for v in self.report.violations}))
        return (
            f"witness: {self.witness.describe()}",
            f"ex''2: rd1 -> {self.r1_value!r} in {self.r1_rounds} round(s)",
            f"ex4:   rd2 -> {self.ex4_r2_value!r}",
            f"ex5:   rd2 -> {self.ex5_r2_value!r} "
            f"(indistinguishable: {self.indistinguishable})",
            f"checker: "
            f"{'VIOLATION (' + rules + ')' if not self.report.atomic else 'atomic?!'}",
        )


def _stage(rqs, witness: P3Witness, with_write: bool):
    """Build the staged system for ex''2+ex4 (with_write) or ex5."""
    servers = rqs.ground_set
    q1 = witness.q1 if witness.q1 is not None else frozenset()
    q2, q = witness.q2, witness.q
    b1, b2 = witness.b1, witness.b2
    forge_time = 8.0

    def round2(payload) -> bool:
        return isinstance(payload, WR) and payload.rnd >= 2

    rules = [
        # wr1 round 1 reaches only Q2; round 2 reaches only Q1 ∩ Q2.
        hold_rule(src={"writer"}, dst=servers - q2, label="wr misses S\\Q2"),
        hold_rule(
            src={"writer"},
            dst=q2 - q1,
            payload_predicate=round2,
            label="wr round2 misses Q2\\Q1",
        ),
        # r1 only talks to Q1; r2 only hears from Q.
        hold_rule(src={"reader1"}, dst=servers - q1, label="r1 ⊆ Q1"),
        hold_rule(src=servers - q, dst={"reader2"}, label="r2 hears only Q"),
    ]
    factories = {}
    if with_write:
        # ex4: B1 forges σ0 (forgets everything) before rd2.
        for sid in b1:
            factories[sid] = (
                lambda pid: ForgetfulServer(pid, forge_time, None)
            )
    else:
        # ex5: B2 forges σ1 (pretends wr1's round 1 reached it).
        sigma1 = History()
        sigma1.store(1, 1, "v1", frozenset())
        view = sigma1.snapshot()
        for sid in b2:
            factories[sid] = (
                lambda pid: ForgetfulServer(pid, forge_time, view)
            )
    return StorageSystem(
        rqs, n_readers=2, rules=rules, server_factories=factories
    )


def run_with_write(rqs, witness: P3Witness):
    """ex''2 + ex4."""
    system = _stage(rqs, witness, with_write=True)
    system.sim.spawn(system.writer.write("v1"), "wr1 [crashes]")
    system.writer.schedule_crash(2.5)  # after round-2 sends at 2Δ
    system.sim.run(until=4.0)
    r1_task = system.sim.spawn(system.readers[0].read(), "rd1")
    system.sim.run(until=8.0)
    assert r1_task.done(), "rd1 must be fast through Q1"
    r1 = r1_task.result
    r2_task = system.sim.spawn(system.readers[1].read(), "rd2 (ex4)")
    system.sim.run(until=60.0)
    assert r2_task.done(), "rd2 must complete through Q"
    report = check_swmr_atomicity(system.operations())
    return r1, r2_task.result, report


def run_without_write(rqs, witness: P3Witness):
    """ex5: nothing is written; B2 fabricates wr1's round 1."""
    system = _stage(rqs, witness, with_write=False)
    system.sim.run(until=8.5)   # let the forgery trigger
    r2_task = system.sim.spawn(system.readers[1].read(), "rd2 (ex5)")
    system.sim.run(until=60.0)
    assert r2_task.done(), "rd2 must complete through Q"
    return r2_task.result


def run_experiment() -> Theorem3Outcome:
    rqs = broken_rqs()
    witness = find_witness(rqs)
    r1, ex4_r2, report = run_with_write(rqs, witness)
    ex5_r2 = run_without_write(rqs, witness)
    return Theorem3Outcome(
        witness=witness,
        r1_value=r1.result,
        r1_rounds=r1.rounds,
        ex4_r2_value=ex4_r2.result,
        ex5_r2_value=ex5_r2.result,
        indistinguishable=(ex4_r2.result == ex5_r2.result),
        report=report,
    )


def violation_demonstrated(outcome: Theorem3Outcome) -> bool:
    """The construction succeeds iff r1 was fast and atomicity broke.

    Whatever rd2 returns, one execution is wrong: ``v1`` fabricates in
    ex5, ⊥ inverts rd1 in ex4; the checker catches the realized one.
    """
    return (
        outcome.r1_rounds == 1
        and outcome.r1_value == "v1"
        and outcome.indistinguishable
        and not outcome.report.atomic
    )
