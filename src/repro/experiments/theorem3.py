"""Experiment E7 — Figure 8: the Theorem 3 impossibility construction.

Theorem 3: no ``(Q(3), B)``-atomic storage can be both ``(1, Q(1))``-fast
and ``(2, Q(2))``-fast when Property 3 fails.  We mechanize the proof's
executions against the *real* RQS storage algorithm configured with a
quorum family that satisfies Properties 1-2 but **violates Property 3**
(the Example 6 instance ``n=8, t=3, k=1, q=1, r=3``:
``n > 2t+k`` ✓, ``n > t+2k+2q`` ✓, but ``n = t+r+k+min(k,q)`` ✗).

From a concrete negation witness ``(Q1, Q2, Q, B'1, B2)`` with
``Q2∩Q \\ B'1 = B2 ∈ B`` and ``Q1∩Q2∩Q \\ B'1 = ∅`` we stage:

* **ex''2** — ``wr1 = write(v1)`` reaches ``Q2`` in round 1 but only
  ``Q1 ∩ Q2`` in round 2, then the writer crashes; reader ``r1``
  (cut off from ``S \\ Q1``) returns ``v1`` in **one round** — the
  fast path any ``(1,Q(1))``-fast algorithm must take.
* **ex4** — the Byzantine set ``B1`` wipes its state to σ0; reader
  ``r2`` (cut off from ``S \\ Q``) completes, and whatever it returns is
  wrong: ``v1`` would be fabricated in the indistinguishable **ex5**
  (where nothing was ever written and ``B2`` forges σ1), while ⊥ inverts
  ``r1``'s read in ex4.

The driver is the two-cell sweep :data:`GRID` — ex''2+ex4 *and* ex5, two
scenario specs differing only in workload and forged state — and the
reporting hook asserts the two runs are indistinguishable to ``r2``
(same output) and reports the atomicity violation the checker finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Tuple

from repro.analysis.atomicity import AtomicityReport
from repro.core.properties import P3Witness, negate_property3
from repro.core.rqs import RefinedQuorumSystem
from repro.scenarios import (
    ByzantineRole,
    Crash,
    FaultPlan,
    Hold,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    labeled,
    resolve_rqs,
    run_grid,
)
from repro.storage.history import History
from repro.storage.messages import WR

BROKEN_RQS = "example6-broken-p3"

FORGE_TIME = 8.0

WITH_WRITE = "ex''2+ex4"
WITHOUT_WRITE = "ex5"


def broken_rqs() -> RefinedQuorumSystem:
    """Properties 1-2 hold, Property 3 fails (checked by the caller)."""
    return resolve_rqs(BROKEN_RQS)


def find_witness(rqs: RefinedQuorumSystem) -> P3Witness:
    witness = negate_property3(
        rqs.adversary, rqs.qc1, rqs.qc2, rqs.quorums
    )
    if witness is None:
        raise AssertionError("expected a P3 violation witness")
    return witness


@lru_cache(maxsize=1)
def _witness_setup() -> Tuple[RefinedQuorumSystem, P3Witness]:
    """The broken family and its witness, computed once per process —
    both cells and the reporting code must see the same witness."""
    rqs = broken_rqs()
    return rqs, find_witness(rqs)


@dataclass
class Theorem3Outcome:
    witness: P3Witness
    r1_value: object
    r1_rounds: int
    ex4_r2_value: object
    ex5_r2_value: object
    indistinguishable: bool
    report: AtomicityReport

    def rows(self) -> Tuple[str, ...]:
        rules = ",".join(sorted({v.rule for v in self.report.violations}))
        return (
            f"witness: {self.witness.describe()}",
            f"ex''2: rd1 -> {self.r1_value!r} in {self.r1_rounds} round(s)",
            f"ex4:   rd2 -> {self.ex4_r2_value!r}",
            f"ex5:   rd2 -> {self.ex5_r2_value!r} "
            f"(indistinguishable: {self.indistinguishable})",
            f"checker: "
            f"{'VIOLATION (' + rules + ')' if not self.report.atomic else 'atomic?!'}",
        )


def _round2(payload) -> bool:
    return isinstance(payload, WR) and payload.rnd >= 2


def _staged_faults(rqs, witness: P3Witness, with_write: bool) -> FaultPlan:
    """The fault plan for ex''2+ex4 (``with_write``) or ex5."""
    servers = rqs.ground_set
    q1 = witness.q1 if witness.q1 is not None else frozenset()
    q2, q = witness.q2, witness.q
    b1, b2 = witness.b1, witness.b2

    asynchrony = (
        # wr1 round 1 reaches only Q2; round 2 reaches only Q1 ∩ Q2.
        Hold(src=("writer",), dst=tuple(servers - q2),
             label="wr misses S\\Q2"),
        Hold(src=("writer",), dst=tuple(q2 - q1), payload=_round2,
             label="wr round2 misses Q2\\Q1"),
        # r1 only talks to Q1; r2 only hears from Q.
        Hold(src=("reader1",), dst=tuple(servers - q1), label="r1 ⊆ Q1"),
        Hold(src=tuple(servers - q), dst=("reader2",),
             label="r2 hears only Q"),
    )
    if with_write:
        # ex4: B1 forges σ0 (forgets everything) before rd2.
        byzantine = tuple(
            ByzantineRole(sid, "forgetful", at=FORGE_TIME,
                          params={"state": None})
            for sid in sorted(b1, key=repr)
        )
        crashes = (Crash("writer", 2.5),)  # after round-2 sends at 2Δ
    else:
        # ex5: B2 forges σ1 (pretends wr1's round 1 reached it).
        sigma1 = History()
        sigma1.store(1, 1, "v1", frozenset())
        view = sigma1.snapshot()
        byzantine = tuple(
            ByzantineRole(sid, "forgetful", at=FORGE_TIME,
                          params={"state": view})
            for sid in sorted(b2, key=repr)
        )
        crashes = ()
    return FaultPlan(
        crashes=crashes, byzantine=byzantine, asynchrony=asynchrony
    )


def _build(point: Mapping) -> ScenarioSpec:
    rqs, witness = _witness_setup()
    with_write = point["execution"]
    if with_write:
        workload = (
            Write(0.0, "v1"),              # wr1, crashes mid-write
            Read(4.0, reader=0),           # rd1, fast through Q1
            Read(FORGE_TIME, reader=1),    # rd2, after B1's forgery
        )
    else:
        # ex5: nothing is written; B2 fabricates wr1's round 1.
        workload = (Read(FORGE_TIME + 0.5, reader=1),)
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs=rqs,
        readers=2,
        faults=_staged_faults(rqs, witness, with_write=with_write),
        workload=workload,
        horizon=60.0,
    )


def _measure(point: Mapping, result) -> Mapping:
    report = result.atomicity
    metrics = {"verdict": "atomic" if report.atomic else "violation"}
    if point["execution"]:
        r1, r2 = result.reads[0], result.reads[1]
        metrics.update(
            r1_value=repr(r1.result), r1_rounds=r1.rounds,
            r2_value=repr(r2.result),
        )
    else:
        metrics["r2_value"] = repr(result.reads[0].result)
    return metrics


#: The E7 grid: the proof's two indistinguishable executions.
GRID = SweepSpec(
    name="theorem3",
    axes={
        "execution": (
            labeled(WITH_WRITE, True),
            labeled(WITHOUT_WRITE, False),
        )
    },
    build=_build,
    measure=_measure,
)


def run_experiment() -> Theorem3Outcome:
    _, witness = _witness_setup()
    sweep = run_grid(GRID)
    ex4 = sweep.cell(execution=WITH_WRITE).unwrap()
    ex5 = sweep.cell(execution=WITHOUT_WRITE).unwrap()
    r1, ex4_r2 = ex4.reads[0], ex4.reads[1]
    assert r1.complete, "rd1 must be fast through Q1"
    assert ex4_r2.complete, "rd2 must complete through Q"
    ex5_r2 = ex5.reads[0]
    assert ex5_r2.complete, "rd2 must complete through Q"
    return Theorem3Outcome(
        witness=witness,
        r1_value=r1.result,
        r1_rounds=r1.rounds,
        ex4_r2_value=ex4_r2.result,
        ex5_r2_value=ex5_r2.result,
        indistinguishable=(ex4_r2.result == ex5_r2.result),
        report=ex4.atomicity,
    )


def violation_demonstrated(outcome: Theorem3Outcome) -> bool:
    """The construction succeeds iff r1 was fast and atomicity broke.

    Whatever rd2 returns, one execution is wrong: ``v1`` fabricates in
    ex5, ⊥ inverts rd1 in ex4; the checker catches the realized one.
    """
    return (
        outcome.r1_rounds == 1
        and outcome.r1_value == "v1"
        and outcome.indistinguishable
        and not outcome.report.atomic
    )
