"""Experiment E12 — best-case latency versus the classical baselines.

Storage (rounds per operation, synchronous & uncontended, all servers up):

====================  ======  =====
algorithm             write   read
====================  ======  =====
RQS storage (class 1)  1       1
Section 1.2 fast-ABD   1       1
ABD                    1       2
====================  ======  =====

Consensus (message delays until all learners learn):

=====================  ============
algorithm              learn delay
=====================  ============
RQS consensus (class1)  2
RQS consensus (class2)  3
RQS consensus (class3)  4
crash Paxos             4
PBFT-lite               5
=====================  ============

The paper's "who wins" shape: the RQS storage matches fast-ABD where it
applies and halves ABD's read latency; the RQS consensus beats PBFT's
fault-free path by up to 2.5× and never loses to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.constructions import pbft_style_rqs, threshold_rqs
from repro.consensus.paxos import PaxosSystem
from repro.consensus.pbft import PbftSystem
from repro.consensus.system import ConsensusSystem
from repro.storage.abd import AbdSystem
from repro.storage.fastabd import FastAbdSystem
from repro.storage.system import StorageSystem


@dataclass
class StorageRow:
    algorithm: str
    write_rounds: int
    read_rounds: int

    def row(self) -> str:
        return (
            f"{self.algorithm:<24} write={self.write_rounds} "
            f"read={self.read_rounds}"
        )


@dataclass
class ConsensusRow:
    algorithm: str
    learn_delays: Optional[float]

    def row(self) -> str:
        return f"{self.algorithm:<24} learn={self.learn_delays} delays"


def storage_rows() -> List[StorageRow]:
    rows: List[StorageRow] = []

    rqs_system = StorageSystem(threshold_rqs(8, 3, 1, 1, 2), n_readers=1)
    write = rqs_system.write("v")
    read = rqs_system.read()
    rows.append(StorageRow("RQS storage (class 1)", write.rounds, read.rounds))

    fast = FastAbdSystem(n_readers=1)
    write = fast.write("v")
    read = fast.read()
    rows.append(StorageRow("section-1.2 fast-ABD", write.rounds, read.rounds))

    abd = AbdSystem(n=5, n_readers=1)
    write = abd.write("v")
    read = abd.read()
    rows.append(StorageRow("ABD", write.rounds, read.rounds))
    return rows


def consensus_rows() -> List[ConsensusRow]:
    rows: List[ConsensusRow] = []
    rqs = threshold_rqs(8, 3, 1, 1, 2)
    for cls, crashes in ((1, 0), (2, 2), (3, 3)):
        system = ConsensusSystem(
            rqs, crash_times={sid: 0.0 for sid in range(1, crashes + 1)}
        )
        delays = system.run_best_case("v")
        worst = max(d for d in delays.values())
        rows.append(ConsensusRow(f"RQS consensus (class {cls})", worst))

    paxos = PaxosSystem(n_acceptors=5)
    delays = paxos.run_best_case("v")
    rows.append(ConsensusRow("crash Paxos", max(delays.values())))

    pbft = PbftSystem(f=1)
    delays = pbft.run_best_case("v")
    rows.append(ConsensusRow("PBFT-lite", max(delays.values())))
    return rows


def run_experiment() -> Dict[str, list]:
    return {"storage": storage_rows(), "consensus": consensus_rows()}


def matches_paper(results: Dict[str, list]) -> bool:
    storage = {r.algorithm: (r.write_rounds, r.read_rounds) for r in results["storage"]}
    consensus = {r.algorithm: r.learn_delays for r in results["consensus"]}
    return (
        storage["RQS storage (class 1)"] == (1, 1)
        and storage["section-1.2 fast-ABD"] == (1, 1)
        and storage["ABD"] == (1, 2)
        and consensus["RQS consensus (class 1)"] == 2.0
        and consensus["RQS consensus (class 2)"] == 3.0
        and consensus["RQS consensus (class 3)"] == 4.0
        and consensus["crash Paxos"] >= 4.0
        and consensus["PBFT-lite"] >= 4.0
    )
