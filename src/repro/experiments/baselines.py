"""Experiment E12 — best-case latency versus the classical baselines.

Storage (rounds per operation, synchronous & uncontended, all servers up):

====================  ======  =====
algorithm             write   read
====================  ======  =====
RQS storage (class 1)  1       1
Section 1.2 fast-ABD   1       1
ABD                    1       2
====================  ======  =====

Consensus (message delays until all learners learn):

=====================  ============
algorithm              learn delay
=====================  ============
RQS consensus (class1)  2
RQS consensus (class2)  3
RQS consensus (class3)  4
crash Paxos             4
PBFT-lite               5
=====================  ============

The paper's "who wins" shape: the RQS storage matches fast-ABD where it
applies and halves ABD's read latency; the RQS consensus beats PBFT's
fault-free path by up to 2.5× and never loses to it.

Every row is one :class:`~repro.scenarios.ScenarioSpec` — the same
workload literal, swapped across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.scenarios import (
    FaultPlan,
    Propose,
    Read,
    ScenarioSpec,
    Write,
    crashes,
    run,
)


@dataclass
class StorageRow:
    algorithm: str
    write_rounds: int
    read_rounds: int

    def row(self) -> str:
        return (
            f"{self.algorithm:<24} write={self.write_rounds} "
            f"read={self.read_rounds}"
        )


@dataclass
class ConsensusRow:
    algorithm: str
    learn_delays: Optional[float]

    def row(self) -> str:
        return f"{self.algorithm:<24} learn={self.learn_delays} delays"


_STORAGE_WORKLOAD = (Write(0.0, "v"), Read(10.0))


def storage_rows() -> List[StorageRow]:
    rows: List[StorageRow] = []
    specs = (
        ("RQS storage (class 1)",
         ScenarioSpec(protocol="rqs-storage", rqs="example6", readers=1,
                      workload=_STORAGE_WORKLOAD)),
        ("section-1.2 fast-ABD",
         ScenarioSpec(protocol="fastabd", readers=1,
                      workload=_STORAGE_WORKLOAD)),
        ("ABD",
         ScenarioSpec(protocol="abd", readers=1,
                      workload=_STORAGE_WORKLOAD)),
    )
    for name, spec in specs:
        result = run(spec)
        rows.append(
            StorageRow(name, result.write().rounds, result.read().rounds)
        )
    return rows


def consensus_rows() -> List[ConsensusRow]:
    rows: List[ConsensusRow] = []
    for cls, n_crashes in ((1, 0), (2, 2), (3, 3)):
        result = run(ScenarioSpec(
            protocol="rqs-consensus",
            rqs="example6",
            faults=FaultPlan(
                crashes=crashes(
                    {sid: 0.0 for sid in range(1, n_crashes + 1)}
                )
            ),
            workload=(Propose(0.0, "v"),),
            horizon=60.0,
        ))
        rows.append(ConsensusRow(
            f"RQS consensus (class {cls})", result.worst_learner_delay
        ))

    for name, spec in (
        ("crash Paxos",
         ScenarioSpec(protocol="paxos", params={"n_acceptors": 5},
                      workload=(Propose(0.0, "v"),), horizon=60.0)),
        ("PBFT-lite",
         ScenarioSpec(protocol="pbft", params={"f": 1},
                      workload=(Propose(0.0, "v"),), horizon=60.0)),
    ):
        result = run(spec)
        rows.append(ConsensusRow(name, result.worst_learner_delay))
    return rows


def run_experiment() -> Dict[str, list]:
    return {"storage": storage_rows(), "consensus": consensus_rows()}


def matches_paper(results: Dict[str, list]) -> bool:
    storage = {r.algorithm: (r.write_rounds, r.read_rounds) for r in results["storage"]}
    consensus = {r.algorithm: r.learn_delays for r in results["consensus"]}
    return (
        storage["RQS storage (class 1)"] == (1, 1)
        and storage["section-1.2 fast-ABD"] == (1, 1)
        and storage["ABD"] == (1, 2)
        and consensus["RQS consensus (class 1)"] == 2.0
        and consensus["RQS consensus (class 2)"] == 3.0
        and consensus["RQS consensus (class 3)"] == 4.0
        and consensus["crash Paxos"] >= 4.0
        and consensus["PBFT-lite"] >= 4.0
    )
