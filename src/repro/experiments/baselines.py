"""Experiment E12 — best-case latency versus the classical baselines.

Storage (rounds per operation, synchronous & uncontended, all servers up):

====================  ======  =====
algorithm             write   read
====================  ======  =====
RQS storage (class 1)  1       1
Section 1.2 fast-ABD   1       1
ABD                    1       2
====================  ======  =====

Consensus (message delays until all learners learn):

=====================  ============
algorithm              learn delay
=====================  ============
RQS consensus (class1)  2
RQS consensus (class2)  3
RQS consensus (class3)  4
crash Paxos             4
PBFT-lite               5
=====================  ============

The paper's "who wins" shape: the RQS storage matches fast-ABD where it
applies and halves ABD's read latency; the RQS consensus beats PBFT's
fault-free path by up to 2.5× and never loses to it.

Every row is one grid cell: the sweeps :data:`STORAGE_GRID` and
:data:`CONSENSUS_GRID` each have a single ``algorithm`` axis whose
labeled values *are* the scenario spec literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.scenarios import (
    FaultPlan,
    Propose,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    crashes,
    labeled,
    run_grid,
)


@dataclass
class StorageRow:
    algorithm: str
    write_rounds: int
    read_rounds: int

    def row(self) -> str:
        return (
            f"{self.algorithm:<24} write={self.write_rounds} "
            f"read={self.read_rounds}"
        )


@dataclass
class ConsensusRow:
    algorithm: str
    learn_delays: Optional[float]

    def row(self) -> str:
        return f"{self.algorithm:<24} learn={self.learn_delays} delays"


_STORAGE_WORKLOAD = (Write(0.0, "v"), Read(10.0))
_CONSENSUS_WORKLOAD = (Propose(0.0, "v"),)


def _spec_of(point: Mapping) -> ScenarioSpec:
    return point["algorithm"]


def _storage_measure(point: Mapping, result) -> Mapping:
    return {
        "write_rounds": result.write().rounds,
        "read_rounds": result.read().rounds,
        "verdict": "atomic" if result.atomicity.atomic else "violation",
    }


def _consensus_measure(point: Mapping, result) -> Mapping:
    return {"learn_delays": result.worst_learner_delay}


def _rqs_consensus_spec(n_crashes: int) -> ScenarioSpec:
    return ScenarioSpec(
        protocol="rqs-consensus",
        rqs="example6",
        faults=FaultPlan(
            crashes=crashes({sid: 0.0 for sid in range(1, n_crashes + 1)})
        ),
        workload=_CONSENSUS_WORKLOAD,
        horizon=60.0,
    )


#: The E12 storage table: each labeled axis value is the row's spec.
STORAGE_GRID = SweepSpec(
    name="baseline-storage",
    axes={
        "algorithm": (
            labeled(
                "RQS storage (class 1)",
                ScenarioSpec(protocol="rqs-storage", rqs="example6",
                             readers=1, workload=_STORAGE_WORKLOAD),
            ),
            labeled(
                "section-1.2 fast-ABD",
                ScenarioSpec(protocol="fastabd", readers=1,
                             workload=_STORAGE_WORKLOAD),
            ),
            labeled(
                "ABD",
                ScenarioSpec(protocol="abd", readers=1,
                             workload=_STORAGE_WORKLOAD),
            ),
        )
    },
    build=_spec_of,
    measure=_storage_measure,
)

#: The E12 consensus table: RQS degradation ladder plus the baselines.
CONSENSUS_GRID = SweepSpec(
    name="baseline-consensus",
    axes={
        "algorithm": (
            labeled("RQS consensus (class 1)", _rqs_consensus_spec(0)),
            labeled("RQS consensus (class 2)", _rqs_consensus_spec(2)),
            labeled("RQS consensus (class 3)", _rqs_consensus_spec(3)),
            labeled(
                "crash Paxos",
                ScenarioSpec(protocol="paxos", params={"n_acceptors": 5},
                             workload=_CONSENSUS_WORKLOAD, horizon=60.0),
            ),
            labeled(
                "PBFT-lite",
                ScenarioSpec(protocol="pbft", params={"f": 1},
                             workload=_CONSENSUS_WORKLOAD, horizon=60.0),
            ),
        )
    },
    build=_spec_of,
    measure=_consensus_measure,
)


def storage_rows() -> List[StorageRow]:
    sweep = run_grid(STORAGE_GRID)
    return [
        StorageRow(
            algorithm=cell.require().point["algorithm"],
            write_rounds=cell.metrics["write_rounds"],
            read_rounds=cell.metrics["read_rounds"],
        )
        for cell in sweep.cells
    ]


def consensus_rows() -> List[ConsensusRow]:
    sweep = run_grid(CONSENSUS_GRID)
    return [
        ConsensusRow(
            algorithm=cell.require().point["algorithm"],
            learn_delays=cell.metrics["learn_delays"],
        )
        for cell in sweep.cells
    ]


def run_experiment() -> Dict[str, list]:
    return {"storage": storage_rows(), "consensus": consensus_rows()}


def matches_paper(results: Dict[str, list]) -> bool:
    storage = {r.algorithm: (r.write_rounds, r.read_rounds) for r in results["storage"]}
    consensus = {r.algorithm: r.learn_delays for r in results["consensus"]}
    return (
        storage["RQS storage (class 1)"] == (1, 1)
        and storage["section-1.2 fast-ABD"] == (1, 1)
        and storage["ABD"] == (1, 2)
        and consensus["RQS consensus (class 1)"] == 2.0
        and consensus["RQS consensus (class 2)"] == 3.0
        and consensus["RQS consensus (class 3)"] == 4.0
        and consensus["crash Paxos"] >= 4.0
        and consensus["PBFT-lite"] >= 4.0
    )
