"""Experiment E4 — Figure 4: the Property-3 intuition executions.

Six servers under the *general* (non-threshold) adversary of Example 7
(``B = closure({{s1,s2}, {s3,s4}, {s2,s4}})``), with
``Q1 = {s2,s4,s5,s6}`` class 1 and ``Q2, Q'2`` class 2.  We replay the
figure's executions against the real RQS storage algorithm:

* **ex1** — s1 and s3 are down; a synchronous uncontended ``write(1)``
  completes in a single round through the class-1 quorum ``Q1``.
* **ex2/ex3** — the write reaches only ``{s1..s5}`` and is incomplete
  (the writer stops before round 2); reader ``r1`` can only reach
  ``Q2 = {s1..s5}`` and must return 1 after **2 rounds** (the
  sophisticated round-1 write-back carrying ``Q2``'s id).
* **ex4/ex5** — afterwards ``s5`` crashes and the Byzantine pair
  ``B12 = {s1, s2}`` "forgets" round 2 of ``rd`` (it erases the quorum
  ids the write-back stored); reader ``r2``, reaching only
  ``Q'2 = {s1,s2,s3,s4,s6}``, must still return 1 — which is possible
  *only because* ``P3b(Q2, Q'2, B34)`` holds: the class-1 quorum
  witness ``s2 ∈ Q1 ∩ Q2 ∩ Q'2 \\ B34`` pins the value.

The run asserts the figure's outcomes and that the history is atomic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.atomicity import AtomicityReport, check_swmr_atomicity
from repro.core.constructions import example7_named_quorums, example7_rqs
from repro.sim.network import hold_rule
from repro.storage.history import Entry
from repro.storage.server import StorageServer
from repro.storage.system import StorageSystem


class SetForgettingServer(StorageServer):
    """Byzantine server that, at ``trigger_time``, erases the class-2
    quorum ids stored in its history (it "forgets round 2 of rd" while
    keeping the pairs — the ex4 behaviour of Figure 4)."""

    benign = False

    def __init__(self, pid, trigger_time: float):
        super().__init__(pid)
        self.trigger_time = trigger_time
        self._armed = False

    def bind(self, network):  # type: ignore[override]
        bound = super().bind(network)
        if not self._armed:
            self._armed = True
            self.sim.call_at(self.trigger_time, self._forget_sets)
        return bound

    def _forget_sets(self) -> None:
        cells = self.history._cells
        for key, entry in list(cells.items()):
            cells[key] = Entry(entry.pair, frozenset())


@dataclass
class Fig4Outcome:
    ex1_write_rounds: int
    ex3_read_value: object
    ex3_read_rounds: int
    ex4_read_value: object
    ex4_read_rounds: int
    report: AtomicityReport

    def rows(self) -> Tuple[str, ...]:
        return (
            f"ex1: synchronous write via Q1 -> {self.ex1_write_rounds} round(s)",
            f"ex3: rd via Q2 -> {self.ex3_read_value!r} in "
            f"{self.ex3_read_rounds} round(s)",
            f"ex4: rd' via Q'2 (s5 down, {{s1,s2}} Byzantine) -> "
            f"{self.ex4_read_value!r} in {self.ex4_read_rounds} round(s)",
            f"history: {'atomic' if self.report.atomic else 'VIOLATION'}",
        )


def run_ex1() -> int:
    """ex1: write(1) with s1, s3 down completes in one round."""
    rqs = example7_rqs()
    system = StorageSystem(
        rqs, n_readers=1, crash_times={"s1": 0.0, "s3": 0.0}
    )
    record = system.write(1)
    return record.rounds


def run_ex3_ex4() -> Tuple[object, int, object, int, AtomicityReport]:
    """The composed ex3 → ex4 schedule of Figure 4."""
    rqs = example7_rqs()
    forgery_time = 12.0
    system = StorageSystem(
        rqs,
        n_readers=2,
        rules=[
            # The slow write never reaches s6 (ex3).
            hold_rule(src={"writer"}, dst={"s6"}, label="wr misses s6"),
            # r1 only communicates with Q2 = {s1..s5}.
            hold_rule(src={"reader1"}, dst={"s6"}, label="r1 misses s6"),
        ],
        server_factories={
            "s1": lambda pid: SetForgettingServer(pid, forgery_time),
            "s2": lambda pid: SetForgettingServer(pid, forgery_time),
        },
    )
    # Incomplete write: the writer stops after its first round.
    system.sim.spawn(system.writer.write(1), "wr(1) [incomplete]")
    system.writer.schedule_crash(1.9)   # before its round 2 starts at 2Δ
    system.sim.run(until=2.0)

    # ex3: r1 reads through Q2 and must return 1 in two rounds.
    r1_task = system.sim.spawn(system.readers[0].read(), "rd by r1")
    system.sim.run(until=forgery_time)
    assert r1_task.done(), "rd must complete through Q2"
    r1 = r1_task.result

    # ex4: s5 crashes, {s1, s2} forget the write-back's quorum ids.
    system.servers["s5"].crash()
    r2_task = system.sim.spawn(system.readers[1].read(), "rd' by r2")
    system.sim.run(until=60.0)
    assert r2_task.done(), "rd' must complete through Q'2"
    r2 = r2_task.result

    report = check_swmr_atomicity(system.operations())
    return r1.result, r1.rounds, r2.result, r2.rounds, report


def run_experiment() -> Fig4Outcome:
    ex1_rounds = run_ex1()
    ex3_value, ex3_rounds, ex4_value, ex4_rounds, report = run_ex3_ex4()
    return Fig4Outcome(
        ex1_rounds, ex3_value, ex3_rounds, ex4_value, ex4_rounds, report
    )


def matches_paper(outcome: Fig4Outcome) -> bool:
    return (
        outcome.ex1_write_rounds == 1
        and outcome.ex3_read_value == 1
        and outcome.ex3_read_rounds == 2
        and outcome.ex4_read_value == 1
        and outcome.report.atomic
    )
