"""Experiment E4 — Figure 4: the Property-3 intuition executions.

Six servers under the *general* (non-threshold) adversary of Example 7
(``B = closure({{s1,s2}, {s3,s4}, {s2,s4}})``), with
``Q1 = {s2,s4,s5,s6}`` class 1 and ``Q2, Q'2`` class 2.  We replay the
figure's executions against the real RQS storage algorithm:

* **ex1** — s1 and s3 are down; a synchronous uncontended ``write(1)``
  completes in a single round through the class-1 quorum ``Q1``.
* **ex2/ex3** — the write reaches only ``{s1..s5}`` and is incomplete
  (the writer crashes before round 2); reader ``r1`` can only reach
  ``Q2 = {s1..s5}`` and must return 1 after **2 rounds** (the
  sophisticated round-1 write-back carrying ``Q2``'s id).
* **ex4/ex5** — afterwards ``s5`` crashes and the Byzantine pair
  ``B12 = {s1, s2}`` "forgets" round 2 of ``rd`` (it erases the quorum
  ids the write-back stored); reader ``r2``, reaching only
  ``Q'2 = {s1,s2,s3,s4,s6}``, must still return 1 — which is possible
  *only because* ``P3b(Q2, Q'2, B34)`` holds: the class-1 quorum
  witness ``s2 ∈ Q1 ∩ Q2 ∩ Q'2 \\ B34`` pins the value.

Both stages are cells of the sweep :data:`GRID` (one ``stage`` axis over
the RQS name ``"example7"``); the reporting hook asserts the figure's
outcomes and that the composed history is atomic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.analysis.atomicity import AtomicityReport
from repro.scenarios import (
    ByzantineRole,
    Crash,
    FaultPlan,
    Hold,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    run_grid,
)

_FORGERY_TIME = 12.0


@dataclass
class Fig4Outcome:
    ex1_write_rounds: int
    ex3_read_value: object
    ex3_read_rounds: int
    ex4_read_value: object
    ex4_read_rounds: int
    report: AtomicityReport

    def rows(self) -> Tuple[str, ...]:
        return (
            f"ex1: synchronous write via Q1 -> {self.ex1_write_rounds} round(s)",
            f"ex3: rd via Q2 -> {self.ex3_read_value!r} in "
            f"{self.ex3_read_rounds} round(s)",
            f"ex4: rd' via Q'2 (s5 down, {{s1,s2}} Byzantine) -> "
            f"{self.ex4_read_value!r} in {self.ex4_read_rounds} round(s)",
            f"history: {'atomic' if self.report.atomic else 'VIOLATION'}",
        )


def _ex1_spec() -> ScenarioSpec:
    """ex1: write(1) with s1, s3 down completes in one round."""
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs="example7",
        readers=1,
        faults=FaultPlan(crashes=(Crash("s1", 0.0), Crash("s3", 0.0))),
        workload=(Write(0.0, 1),),
    )


def _ex3_ex4_spec() -> ScenarioSpec:
    """The composed ex3 → ex4 schedule of Figure 4 as one scenario."""
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs="example7",
        readers=2,
        faults=FaultPlan(
            crashes=(
                # Incomplete write: the writer dies before round 2 at 2Δ.
                Crash("writer", 1.9),
                # ex4: s5 crashes once r1's read has completed.
                Crash("s5", _FORGERY_TIME),
            ),
            byzantine=(
                ByzantineRole("s1", "forget-qc2-ids", at=_FORGERY_TIME),
                ByzantineRole("s2", "forget-qc2-ids", at=_FORGERY_TIME),
            ),
            asynchrony=(
                # The slow write never reaches s6 (ex3).
                Hold(src=("writer",), dst=("s6",), label="wr misses s6"),
                # r1 only communicates with Q2 = {s1..s5}.
                Hold(src=("reader1",), dst=("s6",), label="r1 misses s6"),
            ),
        ),
        workload=(
            Write(0.0, 1),             # never completes (writer crashes)
            Read(2.0, reader=0),       # ex3: rd through Q2
            Read(_FORGERY_TIME, reader=1),  # ex4: rd' through Q'2
        ),
        horizon=60.0,
    )


def _build(point: Mapping) -> ScenarioSpec:
    return _ex1_spec() if point["stage"] == "ex1" else _ex3_ex4_spec()


def _measure(point: Mapping, result) -> Mapping:
    report = result.atomicity
    metrics = {"verdict": "atomic" if report.atomic else "violation"}
    if point["stage"] == "ex1":
        metrics["write_rounds"] = result.write().rounds
    else:
        r1, r2 = result.reads[0], result.reads[1]
        metrics.update(
            ex3_value=repr(r1.result), ex3_rounds=r1.rounds,
            ex4_value=repr(r2.result), ex4_rounds=r2.rounds,
        )
    return metrics


#: The E4 grid: the figure's two stages over the Example 7 adversary.
GRID = SweepSpec(
    name="fig4",
    axes={"stage": ("ex1", "ex3+ex4")},
    build=_build,
    measure=_measure,
)


def run_experiment() -> Fig4Outcome:
    sweep = run_grid(GRID)
    ex1 = sweep.cell(stage="ex1").unwrap()
    composed = sweep.cell(stage="ex3+ex4").unwrap()
    r1, r2 = composed.reads[0], composed.reads[1]
    assert r1.complete, "rd must complete through Q2"
    assert r2.complete, "rd' must complete through Q'2"
    return Fig4Outcome(
        ex1_write_rounds=ex1.write().rounds,
        ex3_read_value=r1.result,
        ex3_read_rounds=r1.rounds,
        ex4_read_value=r2.result,
        ex4_read_rounds=r2.rounds,
        report=composed.atomicity,
    )


def matches_paper(outcome: Fig4Outcome) -> bool:
    return (
        outcome.ex1_write_rounds == 1
        and outcome.ex3_read_value == 1
        and outcome.ex3_read_rounds == 2
        and outcome.ex4_read_value == 1
        and outcome.report.atomic
    )
