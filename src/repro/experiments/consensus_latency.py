"""Experiment E8 — the consensus latency table (Section 4.2).

The paper's claim: in best-case executions (single correct proposer,
synchrony) all correct learners learn in

======================  ====================
available quorum class  learn (msg delays)
======================  ====================
1                       2
2                       3
3                       4
======================  ====================

and the availability of a class-3 quorum is anyway required for
liveness.  We run the Example 6 instance ``n=8, t=3, k=1, q=1, r=2``
over a uniform-Δ network and crash acceptors so exactly a class-1/2/3
quorum of correct acceptors remains.

The experiment is the one-axis sweep :data:`GRID` over the available
quorum class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.scenarios import (
    FaultPlan,
    Propose,
    ScenarioSpec,
    SweepSpec,
    crashes,
    run_grid,
)

DEFAULT_RQS = "example6"

_CRASHES = {1: 0, 2: 2, 3: 3}


@dataclass
class ConsensusLatencyRow:
    quorum_class: int
    delays: Dict[object, Optional[float]]
    agreed: bool

    @property
    def worst_delay(self) -> Optional[float]:
        values = [d for d in self.delays.values() if d is not None]
        return max(values) if len(values) == len(self.delays) else None

    def row(self) -> str:
        return (
            f"class {self.quorum_class}: learners learn in "
            f"{self.worst_delay} message delays "
            f"({'agreement ok' if self.agreed else 'DISAGREEMENT'})"
        )


def _build(point: Mapping) -> ScenarioSpec:
    return ScenarioSpec(
        protocol="rqs-consensus",
        rqs=DEFAULT_RQS,
        proposers=2,
        learners=3,
        faults=FaultPlan(
            crashes=crashes(
                {sid: 0.0
                 for sid in range(1, _CRASHES[point["quorum_class"]] + 1)}
            )
        ),
        workload=(Propose(0.0, "V"),),
        horizon=60.0,
    )


def _measure(point: Mapping, result) -> Mapping:
    return {
        "verdict": "ok" if result.consensus.ok else "violation",
        "delays": {
            str(pid): delay
            for pid, delay in result.learner_delays.items()
        },
        "worst_delay": result.worst_learner_delay,
    }


#: The E8 grid: one cell per available quorum class.
GRID = SweepSpec(
    name="consensus-latency",
    axes={"quorum_class": (1, 2, 3)},
    build=_build,
    measure=_measure,
)


def run_experiment() -> List[ConsensusLatencyRow]:
    sweep = run_grid(GRID)
    rows: List[ConsensusLatencyRow] = []
    for cls in (1, 2, 3):
        cell = sweep.cell(quorum_class=cls).require()
        rows.append(
            ConsensusLatencyRow(
                quorum_class=cls,
                delays=dict(cell.metrics["delays"]),
                agreed=cell.verdict == "ok",
            )
        )
    return rows


PAPER_CLAIM = {1: 2.0, 2: 3.0, 3: 4.0}


def matches_paper(rows: Sequence[ConsensusLatencyRow]) -> bool:
    return all(
        row.worst_delay == PAPER_CLAIM[row.quorum_class] and row.agreed
        for row in rows
    )
