"""Experiment E15 — horizon-free streaming soaks with online verdicts.

The streaming pipeline removes the last O(history) term from long runs:
open-loop workload generation (clients draw their next op lazily), a
non-retaining ``TraceLevel.METRICS`` trace whose records flow through
online latency accumulators, and the windowed per-key online checker
that delivers a safety verdict as operations complete.  This experiment
measures that pipeline at scale: **protocols × keyspace width × op
count up to one million**, every cell an open-loop soak stopped by a
``max_ops`` budget.

Per the repository invariant (**new figure = new grid literal**) the
whole experiment is :data:`GRID`.  Cells report throughput, streaming
latency summaries, the online verdict and the checker's high-water
retained-state mark — the exhibit is that the mark stays O(clients +
keys) while op counts grow 100×.

The protocol axis spans the bounded-state baselines (ABD and fast-ABD
servers keep one/two pairs per key) **and** the paper's RQS protocol
with bounded server history: rqs-storage cells run with
``params={"bounded_history": True}``, under which servers
garbage-collect history cells superseded by quorum-acked newer state
(see :class:`repro.storage.server.StorageServer`), so the server-side
memory term is flat too — cells report the retained/GC'd cell counters
alongside the checker's mark.  (Unbounded rqs-storage keeps the entire
per-key history by design — the Section 5 simplification — which is
exactly why it only joins the soak grid behind the knob.)

Run directly (``python -m repro.experiments.soak``) for the default
sub-grid (≤ 100k ops per cell); ``run_experiment(full=True)`` runs the
million-op rows as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.experiments.builders import keyed_mix_spec
from repro.scenarios import ScenarioSpec, SweepSpec, run_grid

#: The open-loop mix ratio (writes : reads) and rate scale — the
#: closed-loop soak row's 40/60 mix spread over one op per time unit.
MIX_WRITES = 4000
MIX_READS = 6000
SOAK_READERS = 8

#: The largest cell of the grid (the acceptance soak size).
MILLION = 1_000_000


def _soak_build(point: Mapping) -> ScenarioSpec:
    protocol = point["protocol"]
    return keyed_mix_spec(
        protocol,
        point["n_keys"],
        writes=MIX_WRITES,
        reads=MIX_READS,
        readers=SOAK_READERS,
        horizon=float(MIX_WRITES + MIX_READS),
        seed=point["seed"],
        trace_level="metrics",
        max_ops=point["max_ops"],
        # RQS servers must GC superseded history cells, or the soak's
        # server memory grows O(writes).
        params=(
            {"bounded_history": True} if protocol == "rqs-storage" else None
        ),
    )


def _soak_measure(point: Mapping, result) -> Mapping:
    online = result.online
    reads = result.latency_streaming("read")
    writes = result.latency_streaming("write")
    metrics = {
        "verdict": "unchecked",
        "operations": result.ops_begun(),
        "completed": result.ops_completed(),
        "events": result.adapter.sim.events_processed,
        "messages": result.adapter.network.sent_count,
        "keys_checked": 0,
        "violations": 0,
        "checker_max_retained": 0,
        "read_p99": reads.p99_time,
        "write_p99": writes.p99_time,
        "wall_s": round(result.execute_seconds, 4),
        "bounded_history": False,
        "server_retained_cells": 0,
        "server_max_retained_cells": 0,
        "server_gc_removed_cells": 0,
    }
    if online is not None:
        online_metrics = online.as_metrics()
        online_metrics.pop("atomic")
        metrics["verdict"] = online.verdict
        metrics.update(online_metrics)
    history = result.server_history
    if history is not None:
        metrics["bounded_history"] = history["bounded_history"]
        metrics["server_retained_cells"] = history["retained_cells"]
        metrics["server_max_retained_cells"] = (
            history["max_retained_cells"]
        )
        metrics["server_gc_removed_cells"] = history["gc_removed_cells"]
    return metrics


#: The E15 grid: protocol × keyspace width × op budget (up to 1e6).
GRID = SweepSpec(
    name="soak",
    axes={
        "protocol": ("abd", "fastabd", "rqs-storage"),
        "n_keys": (4, 16),
        "max_ops": (10_000, 100_000, MILLION),
        "seed": (5,),
    },
    build=_soak_build,
    measure=_soak_measure,
)


@dataclass
class SoakRow:
    protocol: str
    n_keys: int
    max_ops: int
    verdict: str
    ops_per_sec: float
    checker_max_retained: int
    read_p99: float
    #: Summed server-side history-cell high-water mark (rqs-storage
    #: bounded-history cells; 0 for the pair-state baselines).
    server_max_retained: int = 0

    def row(self) -> str:
        return (
            f"{self.protocol:>11} keys={self.n_keys:<3} "
            f"ops={self.max_ops:<8} {self.verdict:<9} "
            f"{self.ops_per_sec:>9.0f} ops/s  "
            f"retained<={self.checker_max_retained:<4} "
            f"server<={self.server_max_retained:<5} "
            f"read p99={self.read_p99}"
        )


def run_experiment(
    executor: str = "serial", full: bool = False, sizes=None
) -> List[SoakRow]:
    """Run the grid (the ≤100k sub-grid unless ``full``) into rows.

    ``sizes`` restricts the ``max_ops`` axis explicitly (e.g. the test
    suite's quick fold uses ``(10_000,)``)."""
    if sizes is not None:
        grid = GRID.where(max_ops=tuple(sizes))
    else:
        grid = GRID if full else GRID.where(max_ops=(10_000, 100_000))
    sweep = run_grid(grid, executor=executor)
    rows: List[SoakRow] = []
    for cell in sweep.cells:
        metrics = cell.require().metrics
        wall = metrics["wall_s"] or 1e-9
        rows.append(
            SoakRow(
                protocol=cell.point["protocol"],
                n_keys=int(cell.point["n_keys"]),
                max_ops=int(cell.point["max_ops"]),
                verdict=cell.verdict,
                ops_per_sec=round(metrics["completed"] / wall, 1),
                checker_max_retained=metrics["checker_max_retained"],
                read_p99=metrics["read_p99"],
                server_max_retained=metrics["server_max_retained_cells"],
            )
        )
    return rows


if __name__ == "__main__":
    for row in run_experiment():
        print(row.row())
