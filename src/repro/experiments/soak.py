"""Experiment E15 — horizon-free streaming soaks with online verdicts.

The streaming pipeline removes the last O(history) term from long runs:
open-loop workload generation (clients draw their next op lazily), a
non-retaining ``TraceLevel.METRICS`` trace whose records flow through
online latency accumulators, and the windowed per-key online checker
that delivers a safety verdict as operations complete.  This experiment
measures that pipeline at scale: **protocols × keyspace width × op
count up to one million**, every cell an open-loop soak stopped by a
``max_ops`` budget.

Per the repository invariant (**new figure = new grid literal**) the
whole experiment is :data:`GRID`.  Cells report throughput, streaming
latency summaries, the online verdict and the checker's high-water
retained-state mark — the exhibit is that the mark stays O(clients +
keys) while op counts grow 100×.

The protocol axis is the two bounded-state baselines (ABD and fast-ABD
servers keep one/two pairs per key).  The paper's RQS protocol
deliberately stores the *entire* per-key history server-side (a Section
5 simplification), so its memory is O(writes) by design and it is
excluded from this grid; bounding its server history is a named
ROADMAP direction, and until then E15 measures the baselines only.

Run directly (``python -m repro.experiments.soak``) for the default
sub-grid (≤ 100k ops per cell); ``run_experiment(full=True)`` runs the
million-op rows as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.experiments.builders import keyed_mix_spec
from repro.scenarios import ScenarioSpec, SweepSpec, run_grid

#: The open-loop mix ratio (writes : reads) and rate scale — the
#: closed-loop soak row's 40/60 mix spread over one op per time unit.
MIX_WRITES = 4000
MIX_READS = 6000
SOAK_READERS = 8

#: The largest cell of the grid (the acceptance soak size).
MILLION = 1_000_000


def _soak_build(point: Mapping) -> ScenarioSpec:
    return keyed_mix_spec(
        point["protocol"],
        point["n_keys"],
        writes=MIX_WRITES,
        reads=MIX_READS,
        readers=SOAK_READERS,
        horizon=float(MIX_WRITES + MIX_READS),
        seed=point["seed"],
        trace_level="metrics",
        max_ops=point["max_ops"],
    )


def _soak_measure(point: Mapping, result) -> Mapping:
    online = result.online
    reads = result.latency_streaming("read")
    writes = result.latency_streaming("write")
    metrics = {
        "verdict": "unchecked",
        "operations": result.ops_begun(),
        "completed": result.ops_completed(),
        "events": result.adapter.sim.events_processed,
        "messages": result.adapter.network.sent_count,
        "keys_checked": 0,
        "violations": 0,
        "checker_max_retained": 0,
        "read_p99": reads.p99_time,
        "write_p99": writes.p99_time,
        "wall_s": round(result.execute_seconds, 4),
    }
    if online is not None:
        online_metrics = online.as_metrics()
        online_metrics.pop("atomic")
        metrics["verdict"] = online.verdict
        metrics.update(online_metrics)
    return metrics


#: The E15 grid: protocol × keyspace width × op budget (up to 1e6).
GRID = SweepSpec(
    name="soak",
    axes={
        "protocol": ("abd", "fastabd"),
        "n_keys": (4, 16),
        "max_ops": (10_000, 100_000, MILLION),
        "seed": (5,),
    },
    build=_soak_build,
    measure=_soak_measure,
)


@dataclass
class SoakRow:
    protocol: str
    n_keys: int
    max_ops: int
    verdict: str
    ops_per_sec: float
    checker_max_retained: int
    read_p99: float

    def row(self) -> str:
        return (
            f"{self.protocol:>8} keys={self.n_keys:<3} "
            f"ops={self.max_ops:<8} {self.verdict:<9} "
            f"{self.ops_per_sec:>9.0f} ops/s  "
            f"retained<={self.checker_max_retained:<4} "
            f"read p99={self.read_p99}"
        )


def run_experiment(
    executor: str = "serial", full: bool = False, sizes=None
) -> List[SoakRow]:
    """Run the grid (the ≤100k sub-grid unless ``full``) into rows.

    ``sizes`` restricts the ``max_ops`` axis explicitly (e.g. the test
    suite's quick fold uses ``(10_000,)``)."""
    if sizes is not None:
        grid = GRID.where(max_ops=tuple(sizes))
    else:
        grid = GRID if full else GRID.where(max_ops=(10_000, 100_000))
    sweep = run_grid(grid, executor=executor)
    rows: List[SoakRow] = []
    for cell in sweep.cells:
        metrics = cell.require().metrics
        wall = metrics["wall_s"] or 1e-9
        rows.append(
            SoakRow(
                protocol=cell.point["protocol"],
                n_keys=int(cell.point["n_keys"]),
                max_ops=int(cell.point["max_ops"]),
                verdict=cell.verdict,
                ops_per_sec=round(metrics["completed"] / wall, 1),
                checker_max_retained=metrics["checker_max_retained"],
                read_p99=metrics["read_p99"],
            )
        )
    return rows


if __name__ == "__main__":
    for row in run_experiment():
        print(row.row())
