"""Generator-coroutine tasks and their blocking effects.

Protocol code in this library is written as Python generators that
``yield`` *effects* to the simulator, so that algorithm implementations
read like the paper's pseudocode::

    def write(self, value):
        self.ts += 1
        yield from self.round(1)
        if self.acked_class1_quorum():
            return "OK"
        ...

Supported effects:

* :class:`Sleep` — resume after a fixed amount of simulated time (used
  for the ``2Δ`` timeouts of the storage algorithm and the exponential
  ``suspectTimeout`` of the election module).
* :class:`WaitUntil` — park until a zero-argument predicate becomes true.
  Predicates are re-evaluated by the simulator after every processed
  event, which keeps algorithm code free of explicit wake-up plumbing.

A task finishes when its generator returns; the returned value is stored
in :attr:`Task.result`.  Tasks can wait on each other via
``WaitUntil(other.done)``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional


class Effect:
    """Base class for objects protocol coroutines may ``yield``."""


class Sleep(Effect):
    """Resume the task after ``duration`` simulated time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"sleep duration must be >= 0, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sleep({self.duration})"


class WaitUntil(Effect):
    """Park the task until ``predicate()`` is true.

    The predicate must be cheap and side-effect free: it is re-evaluated
    after every simulator event until it holds.
    """

    __slots__ = ("predicate", "label")

    def __init__(self, predicate: Callable[[], bool], label: str = ""):
        self.predicate = predicate
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitUntil({self.label or self.predicate!r})"


def sequential_ops(sim, schedule):
    """Driver coroutine: run one client's operations back to back.

    ``schedule`` is a list of ``(time, factory, args)`` triples; each
    operation coroutine ``factory(*args)`` starts no earlier than its
    scheduled time and no earlier than the previous operation's
    completion — the paper's client well-formedness rule.  Shared by
    :class:`repro.storage.system.StorageSystem` and the scenario-layer
    adapters so scripted and spec-driven runs of the same schedule stay
    identical.
    """
    for time, factory, args in schedule:
        start = time

        def reached(start=start) -> bool:
            return sim.now >= start

        if sim.now < start:
            sim.call_at(start, lambda: None)
            yield WaitUntil(reached, f"start@{start}")
        yield from factory(*args)


class Task:
    """A running protocol coroutine.

    Created via :meth:`repro.sim.simulator.Simulator.spawn`; not
    instantiated directly by user code.
    """

    def __init__(self, coro: Generator[Effect, Any, Any], name: str = ""):
        self._coro = coro
        self.name = name or repr(coro)
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.waiting_on: Optional[Effect] = None

    def done(self) -> bool:
        """True when the coroutine has returned (usable as a predicate)."""
        return self.finished

    def step(self, value: Any = None) -> Optional[Effect]:
        """Advance the coroutine; return the next effect or ``None`` if done.

        Exceptions escaping the coroutine are stored in :attr:`error` and
        re-raised — simulations should be loud about protocol bugs.
        """
        if self.finished:
            return None
        try:
            effect = self._coro.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.waiting_on = None
            return None
        except BaseException as exc:
            self.finished = True
            self.error = exc
            self.waiting_on = None
            raise
        self.waiting_on = effect
        return effect

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else f"waiting on {self.waiting_on!r}"
        return f"Task({self.name}, {state})"
