"""Generator-coroutine tasks and their blocking effects.

Protocol code in this library is written as Python generators that
``yield`` *effects* to the simulator, so that algorithm implementations
read like the paper's pseudocode::

    def write(self, value):
        self.ts += 1
        yield from self.round(1)
        if self.acked_class1_quorum():
            return "OK"
        ...

Supported effects:

* :class:`Sleep` — resume after a fixed amount of simulated time (used
  for the ``2Δ`` timeouts of the storage algorithm and the exponential
  ``suspectTimeout`` of the election module).
* :class:`WaitUntil` — park until a condition becomes true.  The
  preferred argument is an indexed
  :class:`~repro.sim.conditions.Condition` (an ``Event``, ``Counter``
  threshold, ``AckSet`` quorum, explicit ``Check``, …): the simulator
  then re-polls the task only when the condition is *signalled*.  A raw
  zero-argument predicate is still accepted as a legacy path and is
  re-evaluated after every simulated instant, like the original
  fixpoint loop — no in-tree protocol uses one (ROADMAP invariant 3).

A task finishes when its generator returns; the returned value is stored
in :attr:`Task.result`.  Tasks can wait on each other via
``WaitUntil(other.done)`` (legacy) or on a shared ``Event``.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Generator, Optional, Union

from repro.sim.conditions import Condition


class Effect:
    """Base class for objects protocol coroutines may ``yield``."""


class Sleep(Effect):
    """Resume the task after ``duration`` simulated time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"sleep duration must be >= 0, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sleep({self.duration})"


class WaitUntil(Effect):
    """Park the task until a condition (or legacy predicate) is true.

    ``condition_or_predicate`` is either an indexed
    :class:`~repro.sim.conditions.Condition` (wake-ups driven by
    :meth:`~repro.sim.conditions.Condition.signal`) or a zero-argument
    callable (legacy: cheap, side-effect free, re-evaluated after every
    simulated instant).
    """

    __slots__ = ("condition", "predicate", "label")

    def __init__(
        self,
        condition_or_predicate: Union[Condition, Callable[[], bool]],
        label: str = "",
    ):
        if isinstance(condition_or_predicate, Condition):
            self.condition: Optional[Condition] = condition_or_predicate
            self.predicate: Optional[Callable[[], bool]] = None
            if not label:
                label = condition_or_predicate.label
        else:
            self.condition = None
            self.predicate = condition_or_predicate
        self.label = label

    def ready(self) -> bool:
        """The wait's current truth value, whichever flavour it is."""
        if self.condition is not None:
            return self.condition.holds()
        return self.predicate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.label or self.condition or self.predicate
        return f"WaitUntil({target!r})"


def sequential_ops(sim, schedule):
    """Driver coroutine: run one client's operations back to back.

    ``schedule`` is a list of ``(time, factory, args)`` triples; each
    operation coroutine ``factory(*args)`` starts no earlier than its
    scheduled time and no earlier than the previous operation's
    completion — the paper's client well-formedness rule.  Shared by
    :class:`repro.storage.system.StorageSystem` and the scenario-layer
    adapters so scripted and spec-driven runs of the same schedule stay
    identical.
    """
    for time, factory, args in schedule:
        start = time
        if sim.now < start:
            yield WaitUntil(sim.timer_at(start), f"start@{start}")
        yield from factory(*args)


#: Ceiling of the adaptive (``batch_size="auto"``) coalescing window.
AUTO_BATCH_MAX = 32


def batched_ops(sim, schedule, size, run_batch):
    """Driver coroutine: one client's operations, coalesced ``size`` at
    a time into batched round-trips.

    ``schedule`` yields ``(time, elem)`` pairs in the client's draw
    order; each batch is the next up-to-``size`` pending elements and
    starts no earlier than its *first* element's scheduled time (the
    batching rule — later elements ride along, their own times are
    subsumed) and no earlier than the previous batch's completion.
    ``run_batch(elements)`` is the protocol's batched coroutine.

    ``size="auto"`` sizes each window from the client's observed
    pending queue instead of a fixed count: after waiting for the head
    element's start time, the batch takes every element whose scheduled
    time has already passed (capped at :data:`AUTO_BATCH_MAX`).  The
    window therefore grows while round-trips run slow — lossy pre-GST
    traffic backs operations up, and the backlog coalesces — and
    shrinks back toward 1 when the client keeps up with its arrival
    rate.  The rule reads only the simulated clock and the draw, so
    replays of the same spec are bit-identical.
    """
    iterator = iter(schedule)
    if size == "auto":
        yield from _adaptive_batches(sim, iterator, run_batch)
        return
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        start = chunk[0][0]
        if sim.now < start:
            yield WaitUntil(sim.timer_at(start), f"start@{start}")
        yield from run_batch([elem for _, elem in chunk])


def _adaptive_batches(sim, iterator, run_batch):
    """The ``"auto"`` window rule of :func:`batched_ops`.

    Keeps a one-element pushback buffer (``pending``): the first
    element whose scheduled time is still in the future ends the
    current window and becomes the next window's head.
    """
    pending = next(iterator, None)
    while pending is not None:
        start = pending[0]
        if sim.now < start:
            yield WaitUntil(sim.timer_at(start), f"start@{start}")
        horizon = sim.now
        chunk = [pending]
        pending = None
        for item in iterator:
            if item[0] <= horizon and len(chunk) < AUTO_BATCH_MAX:
                chunk.append(item)
            else:
                pending = item
                break
        yield from run_batch([elem for _, elem in chunk])
        if pending is None:
            pending = next(iterator, None)


class Task:
    """A running protocol coroutine.

    Created via :meth:`repro.sim.simulator.Simulator.spawn`; not
    instantiated directly by user code.
    """

    def __init__(self, coro: Generator[Effect, Any, Any], name: str = ""):
        self._coro = coro
        self.name = name or repr(coro)
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.waiting_on: Optional[Effect] = None

    def done(self) -> bool:
        """True when the coroutine has returned (usable as a predicate)."""
        return self.finished

    def step(self, value: Any = None) -> Optional[Effect]:
        """Advance the coroutine; return the next effect or ``None`` if done.

        Exceptions escaping the coroutine are stored in :attr:`error` and
        re-raised — simulations should be loud about protocol bugs.
        """
        if self.finished:
            return None
        try:
            effect = self._coro.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.waiting_on = None
            return None
        except BaseException as exc:
            self.finished = True
            self.error = exc
            self.waiting_on = None
            raise
        self.waiting_on = effect
        return effect

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else f"waiting on {self.waiting_on!r}"
        return f"Task({self.name}, {state})"
