"""Execution traces: operation records and latency accounting inputs.

Protocols append :class:`OperationRecord` entries to a shared
:class:`Trace` as operations are invoked and complete.  The analysis
package consumes these records to check atomicity/agreement and to count
rounds / message delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple


@dataclass
class OperationRecord:
    """A single high-level operation (read / write / propose / learn)."""

    op_id: int
    kind: str                      # "write" | "read" | "propose" | "learn"
    process: Hashable              # invoking client / learner
    invoked_at: float
    value: Any = None              # written value / proposal / learned value
    completed_at: Optional[float] = None
    result: Any = None             # read result / decision
    rounds: int = 0                # communication round-trips used
    key: Hashable = 0              # addressed register (storage kinds)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def overlaps(self, other: "OperationRecord") -> bool:
        """Real-time concurrency (operation intervals intersect)."""
        self_end = self.completed_at if self.complete else float("inf")
        other_end = other.completed_at if other.complete else float("inf")
        return self.invoked_at <= other_end and other.invoked_at <= self_end

    def precedes(self, other: "OperationRecord") -> bool:
        """Definition of precedence: completes before the other is invoked."""
        return self.complete and self.completed_at < other.invoked_at


class Trace:
    """Append-only log of operation records for one execution."""

    def __init__(self):
        self._records: List[OperationRecord] = []
        self._next_id = 0

    def begin(
        self,
        kind: str,
        process: Hashable,
        time: float,
        value: Any = None,
        key: Hashable = 0,
    ) -> OperationRecord:
        record = OperationRecord(
            op_id=self._next_id,
            kind=kind,
            process=process,
            invoked_at=time,
            value=value,
            key=key,
        )
        self._next_id += 1
        self._records.append(record)
        return record

    def complete(
        self,
        record: OperationRecord,
        time: float,
        result: Any = None,
        rounds: int = 0,
    ) -> OperationRecord:
        record.completed_at = time
        record.result = result
        record.rounds = rounds
        return record

    @property
    def records(self) -> Tuple[OperationRecord, ...]:
        return tuple(self._records)

    def of_kind(self, kind: str) -> Tuple[OperationRecord, ...]:
        return tuple(r for r in self._records if r.kind == kind)

    def completed(self) -> Tuple[OperationRecord, ...]:
        return tuple(r for r in self._records if r.complete)

    def __len__(self) -> int:
        return len(self._records)
