"""Execution traces: operation records and latency accounting inputs.

Protocols append :class:`OperationRecord` entries to a shared
:class:`Trace` as operations are invoked and complete.  The analysis
package consumes these records to check atomicity/agreement and to count
rounds / message delays.

Traces come in two retention modes, mirroring the network's
:class:`~repro.sim.network.TraceLevel`:

* **retaining** (the default, FULL tracing) — every record is kept for
  post-hoc checkers, fingerprints and per-record test assertions;
* **streaming** (``retain=False``, METRICS tracing) — records are handed
  to subscribers as operations begin and complete and then dropped.
  The trace keeps per-kind begun/completed counters and per-kind online
  :class:`~repro.analysis.streaming.LatencyAccumulator` summaries, so
  horizon-free runs report uniform metrics in O(1) memory per kind
  while never materializing the history.

Both modes maintain the counters and accumulators, so streaming
summaries can be cross-checked against the exact list-based path on
retained runs (``tests/scenarios/test_streaming.py`` pins the match).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple


@dataclass(slots=True)
class OperationRecord:
    """A single high-level operation (read / write / propose / learn)."""

    op_id: int
    kind: str                      # "write" | "read" | "propose" | "learn"
    process: Hashable              # invoking client / learner
    invoked_at: float
    value: Any = None              # written value / proposal / learned value
    completed_at: Optional[float] = None
    result: Any = None             # read result / decision
    rounds: int = 0                # communication round-trips used
    key: Hashable = 0              # addressed register (storage kinds)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def overlaps(self, other: "OperationRecord") -> bool:
        """Real-time concurrency (operation intervals intersect)."""
        self_end = self.completed_at if self.complete else float("inf")
        other_end = other.completed_at if other.complete else float("inf")
        return self.invoked_at <= other_end and other.invoked_at <= self_end

    def precedes(self, other: "OperationRecord") -> bool:
        """Definition of precedence: completes before the other is invoked."""
        return self.complete and self.completed_at < other.invoked_at


class Trace:
    """Log of operation records for one execution.

    ``retain=False`` is the streaming mode: records are not kept after
    completion (``records`` stays empty); counters, accumulators and
    subscribers observe them instead.
    """

    def __init__(self, retain: bool = True):
        # Deferred import: repro.sim sits below repro.analysis in the
        # layer order, and importing at module scope would cycle back
        # through repro.analysis -> repro.storage -> this module.
        from repro.analysis.streaming import LatencyAccumulator

        self._accumulator_factory = LatencyAccumulator
        self.retain = retain
        self._records: List[OperationRecord] = []
        self._next_id = 0
        self.begun: Dict[str, int] = {}
        self.completed_counts: Dict[str, int] = {}
        self._accumulators: Dict[str, "LatencyAccumulator"] = {}
        self._on_begin: List[Callable[[OperationRecord], None]] = []
        self._on_complete: List[Callable[[OperationRecord], None]] = []

    def subscribe(
        self,
        on_begin: Optional[Callable[[OperationRecord], None]] = None,
        on_complete: Optional[Callable[[OperationRecord], None]] = None,
    ) -> None:
        """Attach streaming observers (e.g. the windowed online checker).

        ``on_begin`` fires when an operation is invoked, ``on_complete``
        when it completes — in simulated-event order, at every retention
        mode.
        """
        if on_begin is not None:
            self._on_begin.append(on_begin)
        if on_complete is not None:
            self._on_complete.append(on_complete)

    def begin(
        self,
        kind: str,
        process: Hashable,
        time: float,
        value: Any = None,
        key: Hashable = 0,
    ) -> OperationRecord:
        record = OperationRecord(
            op_id=self._next_id,
            kind=kind,
            process=process,
            invoked_at=time,
            value=value,
            key=key,
        )
        self._next_id += 1
        self.begun[kind] = self.begun.get(kind, 0) + 1
        if self.retain:
            self._records.append(record)
        for observer in self._on_begin:
            observer(record)
        return record

    def complete(
        self,
        record: OperationRecord,
        time: float,
        result: Any = None,
        rounds: int = 0,
    ) -> OperationRecord:
        record.completed_at = time
        record.result = result
        record.rounds = rounds
        self.completed_counts[record.kind] = (
            self.completed_counts.get(record.kind, 0) + 1
        )
        accumulator = self._accumulators.get(record.kind)
        if accumulator is None:
            accumulator = self._accumulators[record.kind] = (
                self._accumulator_factory(record.kind)
            )
        accumulator.observe(rounds, time - record.invoked_at)
        for observer in self._on_complete:
            observer(record)
        return record

    # -- counters & streaming summaries ---------------------------------------

    def begun_total(self) -> int:
        """Operations invoked, at any retention mode."""
        return sum(self.begun.values())

    def completed_total(self) -> int:
        return sum(self.completed_counts.values())

    def accumulator(self, kind: str) -> Optional[LatencyAccumulator]:
        """The online latency summary for one kind (None before the
        first completion of that kind)."""
        return self._accumulators.get(kind)

    # -- retained records ------------------------------------------------------

    @property
    def records(self) -> Tuple[OperationRecord, ...]:
        return tuple(self._records)

    def of_kind(self, kind: str) -> Tuple[OperationRecord, ...]:
        return tuple(r for r in self._records if r.kind == kind)

    def completed(self) -> Tuple[OperationRecord, ...]:
        return tuple(r for r in self._records if r.complete)

    def __len__(self) -> int:
        return self.begun_total()
