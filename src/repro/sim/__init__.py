"""Deterministic discrete-event simulation substrate.

The executable instance of the paper's system model: processes as
automata, point-to-point channels, synchrony as a bound ``Δ`` on message
delay, asynchrony as messages held in transit, crash and Byzantine
failures.
"""

from repro.sim.conditions import (
    AckSet,
    AllOf,
    AnyOf,
    Check,
    Condition,
    ConditionMap,
    Counter,
    Event,
)
from repro.sim.simulator import Simulator, default_wakeup, wakeup_mode
from repro.sim.tasks import Sleep, Task, WaitUntil
from repro.sim.network import (
    DROP,
    HOLD,
    Message,
    Network,
    Rule,
    TraceLevel,
    delay_rule,
    drop_rule,
    hold_rule,
)
from repro.sim.process import ByzantineProcess, Process
from repro.sim.trace import OperationRecord, Trace

__all__ = [
    "AckSet",
    "AllOf",
    "AnyOf",
    "Check",
    "Condition",
    "ConditionMap",
    "Counter",
    "Event",
    "Simulator",
    "Sleep",
    "Task",
    "TraceLevel",
    "WaitUntil",
    "default_wakeup",
    "wakeup_mode",
    "Message",
    "Network",
    "Rule",
    "HOLD",
    "DROP",
    "delay_rule",
    "drop_rule",
    "hold_rule",
    "ByzantineProcess",
    "Process",
    "OperationRecord",
    "Trace",
]
