"""Indexed wait conditions — the simulator's O(1) wake-up primitive.

Historically every blocked task carried an opaque ``lambda`` predicate
and the simulator re-evaluated *all* of them after *every* simulated
instant, to a fixpoint — O(parked²) predicate calls per delivery, the
dominant cost of large-``n`` runs.  A :class:`Condition` replaces the
opaque predicate with an object that **signals** the simulator when its
truth value may have changed, so the event loop re-polls only the tasks
whose condition was actually touched this instant (see
:meth:`repro.sim.simulator.Simulator._wake_tasks`).

The catalogue, roughly in order of preference:

* :class:`Event` — a one-way boolean flag ("decision learned",
  "timer expired").  :meth:`Simulator.timer_at` hands these out for
  deadlines.
* :class:`Counter` — a monotonically increasing count; wait on
  :meth:`Counter.at_least` ("``n − t`` replies collected").
* :class:`AckSet` — a growing responder-id set (a real ``set``
  subclass, so quorum code like ``q <= acks`` keeps working); wait on
  :meth:`AckSet.at_least` or :meth:`AckSet.includes_any` ("acks from
  some quorum").
* :class:`Check` — an arbitrary predicate that the owning process
  signals explicitly from the handlers that mutate its inputs.  The
  migration device for waits too entangled for the shapes above
  (the RQS reader's candidate-set predicates, the proposer's consult
  quorum).
* :class:`AllOf` / :class:`AnyOf` — conjunction/disjunction
  combinators; a child's signal propagates to the composite ("a quorum
  of acks **and** the 2Δ timer").

A signal is a *hint*, not a wake-up: the simulator re-checks
``holds()`` before resuming waiters, so spurious signals are cheap and
missed-signal bugs surface as deterministic deadlocks (never as
corrupted interleavings).  Conditions whose inputs can only ever be
mutated from simulator events (message handlers, timers) therefore
wake tasks exactly when the old full-scan loop would have.

Raw callables are still accepted by :class:`~repro.sim.tasks.WaitUntil`
as a legacy path (re-polled every instant, like the old loop), but no
in-tree protocol uses one — the ROADMAP's third invariant.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, List, Optional, Tuple


class Condition:
    """Base class for indexed wait conditions.

    Subclasses implement :meth:`holds` (the current truth value) and
    call :meth:`signal` from every mutation that may flip it.  The
    simulator attaches itself while tasks are parked on the condition;
    signalling an un-waited condition is a no-op beyond parent
    propagation.
    """

    __slots__ = ("label", "_sim", "_parents")

    def __init__(self, label: str = ""):
        self.label = label
        self._sim = None          # set by the simulator while waited on
        self._parents: Optional[List["Condition"]] = None

    # -- protocol ----------------------------------------------------------

    def holds(self) -> bool:
        """The condition's current truth value (must be side-effect free)."""
        raise NotImplementedError

    def signal(self) -> None:
        """Tell the simulator this condition may have become true.

        Batched per simulated instant and deduplicated; waiters are
        re-polled (``holds()`` re-checked) after all events of the
        instant have run — preserving the paper's atomic receive
        substep.
        """
        sim = self._sim
        if sim is not None:
            sim._signal(self)
        parents = self._parents
        if parents:
            for parent in parents:
                parent.signal()

    def _watch(self, parent: "Condition") -> None:
        """Register a composite to be signalled when this one is."""
        if self._parents is None:
            self._parents = []
        self._parents.append(parent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label or hex(id(self))})"


class Event(Condition):
    """A one-way boolean flag ("it happened")."""

    __slots__ = ("_set",)

    def __init__(self, label: str = ""):
        super().__init__(label)
        self._set = False

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        if not self._set:
            self._set = True
            self.signal()

    def holds(self) -> bool:
        return self._set


class Check(Condition):
    """An explicitly-signalled arbitrary predicate.

    The owning process calls :meth:`signal` from every handler that
    mutates the predicate's inputs.  This keeps complicated waits (the
    RQS reader's candidate predicates, the consult-phase quorum search)
    verbatim while still indexing their wake-ups.
    """

    __slots__ = ("_predicate",)

    def __init__(self, predicate: Callable[[], bool], label: str = ""):
        super().__init__(label)
        self._predicate = predicate

    def holds(self) -> bool:
        return self._predicate()


class Threshold(Condition):
    """``counter.value >= needed`` (created via :meth:`Counter.at_least`)."""

    __slots__ = ("_counter", "_needed")

    def __init__(self, counter: "Counter", needed: int, label: str = ""):
        super().__init__(label)
        self._counter = counter
        self._needed = needed

    def holds(self) -> bool:
        return self._counter.value >= self._needed


class Counter:
    """A monotonically increasing count with derived wait conditions."""

    __slots__ = ("label", "value", "_derived")

    def __init__(self, label: str = ""):
        self.label = label
        self.value = 0
        self._derived: List[Condition] = []

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only grow, got {amount}")
        self.value += amount
        for condition in self._derived:
            condition.signal()

    def at_least(self, needed: int, label: str = "") -> Threshold:
        condition = Threshold(
            self, needed, label or f"{self.label}>={needed}"
        )
        self._derived.append(condition)
        return condition

    def reset(self, label: str = "") -> None:
        """Return the counter to its freshly-constructed state so a
        :class:`ConditionMap` can recycle it for a new key.  Derived
        conditions are orphaned — their waiters must all have resumed
        before the owning key is discarded (the pooling contract)."""
        self.label = label
        self.value = 0
        self._derived.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.label or ''}={self.value})"


class AckSet(set):
    """A growing responder-id set that signals derived conditions.

    A real ``set`` subclass, so existing quorum idioms — ``q <= acks``,
    ``len(acks) >= k``, comprehension membership — keep working on it
    unchanged.  Only :meth:`add` is instrumented; protocol responder
    sets are append-only.
    """

    __slots__ = ("label", "_derived")

    def __init__(self, label: str = ""):
        super().__init__()
        self.label = label
        self._derived: List[Condition] = []

    def add(self, member: Hashable) -> None:
        if member not in self:
            super().add(member)
            for condition in self._derived:
                condition.signal()

    def at_least(self, needed: int, label: str = "") -> Condition:
        """Wait for the set to reach ``needed`` members."""
        condition = SizeAtLeast(
            self, needed, label or f"{self.label}>={needed}"
        )
        self._derived.append(condition)
        return condition

    def includes_any(
        self, quorums: Iterable[frozenset], label: str = ""
    ) -> Condition:
        """Wait until some quorum is fully contained in the set."""
        condition = IncludesAny(
            self, tuple(quorums), label or f"{self.label} quorum"
        )
        self._derived.append(condition)
        return condition

    def reset(self, label: str = "") -> None:
        """Return the set to its freshly-constructed state so a
        :class:`ConditionMap` can recycle it (see :meth:`Counter.reset`
        for the pooling contract)."""
        self.clear()
        self.label = label
        self._derived.clear()


class SizeAtLeast(Condition):
    """``len(acks) >= needed`` (created via :meth:`AckSet.at_least`)."""

    __slots__ = ("_acks", "_needed")

    def __init__(self, acks: AckSet, needed: int, label: str = ""):
        super().__init__(label)
        self._acks = acks
        self._needed = needed

    def holds(self) -> bool:
        return len(self._acks) >= self._needed


class IncludesAny(Condition):
    """``any(q <= acks for q in quorums)`` (via :meth:`AckSet.includes_any`)."""

    __slots__ = ("_acks", "_quorums")

    def __init__(
        self, acks: AckSet, quorums: Tuple[frozenset, ...], label: str = ""
    ):
        super().__init__(label)
        self._acks = acks
        self._quorums = quorums

    def holds(self) -> bool:
        acks = self._acks
        return any(q <= acks for q in self._quorums)


class ConditionMap:
    """Lazy keyed factory for signalling containers.

    Protocols keep one :class:`AckSet`/:class:`Counter` per logical key
    (a timestamp, a round, a ballot); this wraps the get-or-create
    boilerplate and the label formatting in one place::

        self._acks = ConditionMap(AckSet, "wr ts={} rnd={}")
        ...
        self._acks(ts, rnd).add(src)

    Discarded containers that expose a ``reset`` method (both built-in
    factories do) are parked on a small free list and recycled by the
    next :meth:`__call__`, so a streaming client allocates O(pool) ack
    sets over a million-op run instead of one per operation.
    """

    __slots__ = ("_factory", "_label", "_items", "_pool")

    #: Recycled containers retained per map; past this they are freed.
    _POOL_LIMIT = 16

    def __init__(self, factory: Callable[[str], Any], label: str = ""):
        self._factory = factory
        self._label = label
        self._items: dict = {}
        self._pool: List[Any] = []

    def __call__(self, *key: Hashable) -> Any:
        item = self._items.get(key)
        if item is None:
            label = self._label.format(*key) if self._label else ""
            if self._pool:
                item = self._pool.pop()
                item.reset(label)
            else:
                item = self._factory(label)
            self._items[key] = item
        return item

    def peek(self, *key: Hashable) -> Optional[Any]:
        """The container for ``key`` if one exists — never creates.

        Message handlers use this for replies to operations that may
        already have retired their per-op state (see :meth:`discard`):
        a straggler ack must not resurrect a pruned entry, or long
        streaming runs would grow one dead container per operation.
        """
        return self._items.get(key)

    def discard(self, *key: Hashable) -> None:
        """Drop the container for ``key`` (no-op when absent).

        Clients call this when an operation completes so per-op
        responder state stays O(in-flight operations), not O(history) —
        the memory contract of horizon-free streaming runs.  The
        container is recycled (see the class docstring); callers must
        not retain references to it past the discard.
        """
        item = self._items.pop(key, None)
        if (
            item is not None
            and len(self._pool) < self._POOL_LIMIT
            and hasattr(item, "reset")
        ):
            self._pool.append(item)

    def __len__(self) -> int:
        return len(self._items)


class _Composite(Condition):
    __slots__ = ("children",)

    def __init__(self, *children: Condition, label: str = ""):
        super().__init__(label)
        self.children = children
        for child in children:
            child._watch(self)


class AllOf(_Composite):
    """Conjunction: holds when every child holds (e.g. timer AND quorum)."""

    __slots__ = ()

    def holds(self) -> bool:
        return all(child.holds() for child in self.children)


class AnyOf(_Composite):
    """Disjunction: holds when some child holds."""

    __slots__ = ()

    def holds(self) -> bool:
        return any(child.holds() for child in self.children)
