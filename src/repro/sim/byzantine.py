"""Generic Byzantine behaviour strategies.

Concrete protocol attacks (e.g. a storage server forging its ``history``)
live next to the protocols; this module provides the protocol-agnostic
building blocks used by resilience tests and the proof replays:

* :class:`Silent` — never responds (crash-equivalent, time-0).
* :class:`SilentAfter` — behaves correctly until a trigger time, then
  goes silent ("forget about round 2 of rd" in Figure 4's ex4).
* :class:`Mimic` — runs a benign automaton but applies a payload
  transformation to outgoing replies (equivocation / value forging).
* :class:`StateForger` — runs a benign automaton whose state is replaced
  at a trigger time (the σ0/σ1 forgeries of the Theorem 3 proof).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.network import Message


class ByzantineBehavior:
    """Base strategy: receives deliveries, drives the faulty process."""

    def attach(self, process: Any) -> None:
        """Called once when the behaviour is installed on a process
        (at construction — the simulator is not reachable yet)."""
        self.process = process

    def on_bind(self, process: Any) -> None:
        """Called when the process binds to a network; the simulator is
        available from here on (schedule triggers here)."""

    def on_message(self, process: Any, message: Message) -> None:
        """Handle a delivery; default is to ignore it (silence)."""


class Silent(ByzantineBehavior):
    """Never respond to anything."""


class SilentAfter(ByzantineBehavior):
    """Delegate to a benign handler until ``trigger_time``, then silence."""

    def __init__(self, benign_handler: Callable[[Any, Message], None], trigger_time: float):
        self.benign_handler = benign_handler
        self.trigger_time = trigger_time

    def on_message(self, process: Any, message: Message) -> None:
        if process.sim.now < self.trigger_time:
            self.benign_handler(process, message)


class Mimic(ByzantineBehavior):
    """Run a benign handler, transforming what gets sent out.

    ``transform(dst, payload) -> Optional[payload]`` returns the payload
    to really send, or ``None`` to suppress the send.  Installation works
    by wrapping the process ``send`` method, so the benign handler code
    needs no changes.
    """

    def __init__(
        self,
        benign_handler: Callable[[Any, Message], None],
        transform: Callable[[Any, Any], Optional[Any]],
    ):
        self.benign_handler = benign_handler
        self.transform = transform

    def attach(self, process: Any) -> None:
        super().attach(process)
        original_inject = process.inject

        def sending(dst, payload):
            replacement = self.transform(dst, payload)
            if replacement is not None:
                original_inject(dst, replacement)

        process.send = sending  # type: ignore[assignment]

    def on_message(self, process: Any, message: Message) -> None:
        self.benign_handler(process, message)


class StateForger(ByzantineBehavior):
    """Behave benignly, but replace local state at ``trigger_time``.

    ``forge(process)`` mutates the process state (e.g. reset a storage
    server's history to the initial state σ0, or install a fabricated
    σ1).  Used by the Theorem 3/6 proof replays.
    """

    def __init__(
        self,
        benign_handler: Callable[[Any, Message], None],
        forge: Callable[[Any], None],
        trigger_time: float,
    ):
        self.benign_handler = benign_handler
        self.forge = forge
        self.trigger_time = trigger_time
        self._forged = False

    def on_bind(self, process: Any) -> None:
        process.sim.call_at(self.trigger_time, self._do_forge)

    def _do_forge(self) -> None:
        if not self._forged:
            self._forged = True
            self.forge(self.process)

    def on_message(self, process: Any, message: Message) -> None:
        self.benign_handler(process, message)
