"""Process base classes: benign, crash-faulty and Byzantine processes.

Processes follow the paper's model (Section 3.1):

* a **benign** process follows its automaton; it may *crash* and then
  takes no further steps (neither receives nor sends);
* a **Byzantine** process can deviate arbitrarily — modelled by a
  :class:`~repro.sim.byzantine.ByzantineBehavior` strategy that
  intercepts deliveries and may inject arbitrary messages.

A process is bound to a :class:`~repro.sim.network.Network` before the
simulation starts; sending before binding is a configuration error.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional

from repro.errors import SimulationError
from repro.sim.network import Message, Network, TraceLevel


class Process:
    """A deterministic automaton attached to the network."""

    def __init__(self, pid: Hashable):
        self.pid = pid
        self.network: Optional[Network] = None
        self.crashed = False
        self.crash_time: Optional[float] = None
        self.delivered: List[Message] = []

    # -- wiring ---------------------------------------------------------------

    def bind(self, network: Network) -> "Process":
        self.network = network
        network.register(self)
        return self

    @property
    def sim(self):
        if self.network is None:
            raise SimulationError(f"process {self.pid!r} is not bound")
        return self.network.sim

    # -- fault injection --------------------------------------------------------

    def crash(self) -> None:
        """Stop taking steps from now on (crash failure)."""
        if not self.crashed:
            self.crashed = True
            self.crash_time = self.sim.now

    def schedule_crash(self, time: float) -> None:
        """Crash at absolute simulated ``time``."""
        self.sim.call_at(time, self.crash)

    @property
    def benign(self) -> bool:
        """Correct or crash-faulty (never Byzantine). Overridden below."""
        return True

    # -- messaging -----------------------------------------------------------------

    def send(self, dst: Hashable, payload: Any) -> None:
        """Send unless crashed (crashed processes take no steps)."""
        if self.crashed:
            return
        if self.network is None:
            raise SimulationError(f"process {self.pid!r} is not bound")
        self.network.send(self.pid, dst, payload)

    def send_all(self, destinations, payload: Any) -> None:
        for dst in destinations:
            self.send(dst, payload)

    def receive(self, message: Message) -> None:
        """Network entry point; drops deliveries to crashed processes.

        Under :class:`~repro.sim.network.TraceLevel` ``METRICS`` the
        per-process ``delivered`` history is not retained (the record
        would be the last reference keeping every consumed message
        alive).
        """
        if self.crashed:
            return
        if self.network.trace_level >= TraceLevel.FULL:
            self.delivered.append(message)
        self.on_message(message)

    def on_message(self, message: Message) -> None:
        """Protocol handler; subclasses override."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}({self.pid!r}, {state})"


class ByzantineProcess(Process):
    """A process controlled by a Byzantine behaviour strategy.

    The strategy receives every delivery and full control of the outgoing
    interface; by default (no strategy) the process is *silent* —
    indistinguishable from a crash at time 0, which is the weakest
    Byzantine behaviour and a useful default for resilience tests.
    """

    def __init__(self, pid: Hashable, behavior: Optional[Any] = None):
        super().__init__(pid)
        self.behavior = behavior
        if behavior is not None:
            behavior.attach(self)

    def bind(self, network: Network) -> "Process":
        bound = super().bind(network)
        if self.behavior is not None:
            self.behavior.on_bind(self)
        return bound

    @property
    def benign(self) -> bool:
        return False

    def receive(self, message: Message) -> None:
        if self.crashed:
            return
        if self.network.trace_level >= TraceLevel.FULL:
            self.delivered.append(message)
        if self.behavior is not None:
            self.behavior.on_message(self, message)

    def inject(self, dst: Hashable, payload: Any) -> None:
        """Send an arbitrary (possibly forged) message."""
        if self.network is None:
            raise SimulationError(f"process {self.pid!r} is not bound")
        self.network.send(self.pid, dst, payload)
