"""The deterministic discrete-event simulator.

The simulator owns a priority queue of timed callbacks and the *wait-set
index*: a ``condition -> waiters`` map of tasks blocked on indexed
:class:`~repro.sim.conditions.Condition` objects.  Message handlers and
timers mutate conditions, conditions *signal* the simulator, and after
every simulated instant only the tasks whose condition was signalled are
re-polled — wake-up work proportional to what actually changed, instead
of the historical re-evaluate-every-parked-predicate fixpoint scan.

A message delivery that completes an "acks from some quorum" condition
therefore wakes the corresponding client in the same instant — matching
the paper's assumption that local computation takes negligible time.
Raw-predicate waits (the legacy path) still exist and are re-polled
every instant like the old loop; no in-tree protocol uses one.

Determinism: events at equal times execute in insertion order (a
monotonic sequence number breaks ties), signalled conditions are
processed in signal order, waiters of one condition wake in park order,
and legacy predicates are polled in spawn order.  Given the same
schedule and seeds, runs are bit-for-bit reproducible.  The pre-index
semantics are kept available as ``wakeup="scan"`` (every parked task
re-polled to a fixpoint each instant) so equivalence is *testable*:
``tests/sim/test_wakeup_equivalence.py`` proves both modes produce
bit-identical traces for every registered protocol.
"""

from __future__ import annotations

import contextlib
import heapq
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.conditions import Condition, Event
from repro.sim.tasks import Effect, Sleep, Task, WaitUntil

#: Wake-up strategies: "indexed" (condition -> waiters map, the default)
#: or "scan" (legacy: re-poll every parked task each instant, to a
#: fixpoint) — kept for golden-trace equivalence testing.
WAKEUP_MODES = ("indexed", "scan")

_DEFAULT_WAKEUP = "indexed"


def default_wakeup() -> str:
    """The wake-up mode new simulators are created with."""
    return _DEFAULT_WAKEUP


@contextlib.contextmanager
def wakeup_mode(mode: str):
    """Run a block with a different default wake-up strategy.

    Used by the equivalence suite and the sim-core bench to execute the
    same scenario under the legacy full-scan loop without threading a
    knob through every system constructor.
    """
    global _DEFAULT_WAKEUP
    if mode not in WAKEUP_MODES:
        raise SimulationError(
            f"unknown wakeup mode {mode!r}; valid: {', '.join(WAKEUP_MODES)}"
        )
    previous = _DEFAULT_WAKEUP
    _DEFAULT_WAKEUP = mode
    try:
        yield
    finally:
        _DEFAULT_WAKEUP = previous


class Simulator:
    """Event loop for simulated distributed executions."""

    def __init__(self, wakeup: Optional[str] = None):
        self.now: float = 0.0
        self.wakeup = wakeup or _DEFAULT_WAKEUP
        if self.wakeup not in WAKEUP_MODES:
            raise SimulationError(
                f"unknown wakeup mode {self.wakeup!r}; "
                f"valid: {', '.join(WAKEUP_MODES)}"
            )
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        # Legacy raw-predicate waits (and, in scan mode, all waits):
        # re-polled every instant in park order.
        self._parked: List[Task] = []
        # The wait-set index (indexed mode only): condition -> tasks
        # parked on it, plus the global park-order list that preserves
        # the legacy loop's wake order across conditions.
        self._waiters: Dict[Condition, List[Task]] = {}
        self._park_order: List[Task] = []
        # Conditions signalled since the last wake pass, in signal
        # order (deduplicated).
        self._signalled: List[Condition] = []
        self._signalled_set: set = set()
        self._tasks: List[Task] = []
        self._events_processed = 0

    # -- scheduling ----------------------------------------------------------

    def call_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action()`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, action))
        self._seq += 1

    def call_later(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` simulated time units."""
        self.call_at(self.now + delay, action)

    def timer_at(self, time: float, label: str = "") -> Event:
        """An :class:`Event` that sets itself at absolute ``time``.

        The condition-flavoured deadline: protocols wait on the returned
        event (possibly inside an ``AllOf`` with a quorum condition)
        instead of scheduling a no-op callback and polling ``sim.now``.
        Already-elapsed times return an already-set event.
        """
        event = Event(label or f"t>={time}")
        if time <= self.now:
            event.set()
        else:
            self.call_at(time, event.set)
        return event

    # -- tasks -----------------------------------------------------------------

    def spawn(
        self, coro: Generator[Effect, Any, Any], name: str = ""
    ) -> Task:
        """Start a protocol coroutine; it runs until its first block."""
        task = Task(coro, name=name)
        self._tasks.append(task)
        self._advance(task)
        return task

    def _advance(self, task: Task) -> None:
        """Step ``task`` until it blocks (Sleep/WaitUntil) or finishes."""
        effect = task.step(None)
        while effect is not None:
            if isinstance(effect, Sleep):
                self.call_later(
                    effect.duration, lambda t=task: self._advance(t)
                )
                return
            if isinstance(effect, WaitUntil):
                if effect.ready():
                    effect = task.step(None)
                    continue
                condition = effect.condition
                if condition is not None and self.wakeup == "indexed":
                    self._park_on(condition, task)
                else:
                    self._parked.append(task)
                return
            raise SimulationError(f"unknown effect yielded: {effect!r}")

    def _park_on(self, condition: Condition, task: Task) -> None:
        waiters = self._waiters.get(condition)
        if waiters is None:
            self._waiters[condition] = [task]
            condition._sim = self
        else:
            waiters.append(task)
        self._park_order.append(task)

    def _unpark(self, condition: Condition, task: Task) -> None:
        """Drop one waiter from the index (the park-order list is
        rebuilt by the caller's sweep)."""
        waiters = self._waiters.get(condition)
        if waiters is not None:
            waiters.remove(task)
            if not waiters:
                del self._waiters[condition]
                condition._sim = None

    # -- signals ------------------------------------------------------------

    def _signal(self, condition: Condition) -> None:
        """Batch a condition for the end-of-instant wake pass.

        Called by :meth:`Condition.signal`; deduplicated per pass and
        ignored for conditions nobody waits on.
        """
        if condition in self._waiters and condition not in self._signalled_set:
            self._signalled_set.add(condition)
            self._signalled.append(condition)

    def _wake_tasks(self) -> None:
        """Wake every task whose wait now holds (to fixpoint).

        Indexed waiters are re-polled only when their condition was
        signalled this instant, but in **park order** — sweeping the
        park-order list with ``holds()`` re-checked per task at its
        turn, exactly the order and visibility the legacy scan loop
        produces (a woken task that consumes a shared condition leaves
        later waiters parked; a task that re-parks lands at its sweep
        position).  Untouched tasks cost a pointer comparison, not a
        predicate call — conditions only change via signalling
        mutations, so an unsignalled condition cannot have become true.
        Legacy raw-predicate waiters are re-polled unconditionally, in
        park order, like the historical loop.  Waking a task may signal
        more conditions or park new tasks, so the pass repeats until
        neither queue makes progress.
        """
        while True:
            progressed = False
            # 1. Indexed wake-ups: drain the signal batch (a wake may
            #    append to the next batch).
            while self._signalled:
                batch = self._signalled
                self._signalled = []
                self._signalled_set.clear()
                touched = set()
                for condition in batch:
                    waiters = self._waiters.get(condition)
                    if waiters is not None:
                        touched.update(waiters)
                if not touched:
                    continue
                order = self._park_order
                self._park_order = []
                for task in order:
                    effect = task.waiting_on
                    if (
                        task in touched
                        and effect is not None
                        and effect.condition.holds()
                    ):
                        self._unpark(effect.condition, task)
                        task.waiting_on = None
                        progressed = True
                        self._advance(task)  # re-parks append in place
                    else:
                        self._park_order.append(task)
            # 2. Legacy scan: re-poll raw-predicate waiters (all waiters
            #    in scan mode) in park order.
            waiting = self._parked
            self._parked = []
            for task in waiting:
                effect = task.waiting_on
                assert isinstance(effect, WaitUntil)
                if effect.ready():
                    progressed = True
                    task.waiting_on = None
                    self._advance(task)  # may re-park into self._parked
                else:
                    self._parked.append(task)
            if not progressed and not self._signalled:
                return

    # -- running ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When the queue runs dry before ``until``, the clock still advances
        to exactly ``until`` so follow-up scheduling stays consistent.
        """
        while self._queue:
            time = self._queue[0][0]
            if until is not None and time > until:
                break
            self.now = time
            # Process *every* event scheduled at this instant before
            # waking tasks: this models the paper's atomic receive substep
            # (a process receives the full set of available messages in
            # one step), and avoids spurious wake-ups between deliveries
            # that happen "at the same time".
            while self._queue and self._queue[0][0] == time:
                _, _, action = heapq.heappop(self._queue)
                action()
                self._events_processed += 1
                if self._events_processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; livelock suspected"
                    )
            self._wake_tasks()
        if until is not None and self.now < until:
            self.now = until
            self._wake_tasks()

    def run_to_completion(
        self, strict: bool = True, max_events: int = 1_000_000
    ) -> None:
        """Drain the queue; with ``strict`` raise if tasks remain blocked.

        In an asynchronous execution it is legitimate for operations to
        block forever (no correct quorum); pass ``strict=False`` there and
        inspect :meth:`blocked_tasks`.
        """
        self.run(until=None, max_events=max_events)
        if strict and self.blocked_tasks():
            names = [t.name for t in self.blocked_tasks()]
            raise DeadlockError(
                f"event queue drained with blocked tasks: {names}"
            )

    # -- introspection ----------------------------------------------------------

    def blocked_tasks(self) -> Tuple[Task, ...]:
        """Every parked task: legacy waiters first, then the wait-set
        index in park order."""
        return tuple(self._parked) + tuple(self._park_order)

    def waiter_count(self, condition: Condition) -> int:
        """How many tasks are parked on ``condition`` (0 if none)."""
        return len(self._waiters.get(condition, ()))

    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed
