"""The deterministic discrete-event simulator.

The simulator owns a priority queue of timed callbacks and a set of
*parked* tasks blocked on :class:`~repro.sim.tasks.WaitUntil` predicates.
After every processed event it re-polls parked tasks to a fixpoint, so a
message delivery that satisfies a "received acks from some quorum"
predicate wakes the corresponding client in the same instant — matching
the paper's assumption that local computation takes negligible time.

Determinism: events at equal times execute in insertion order (a
monotonic sequence number breaks ties), and parked tasks are polled in
spawn order.  Given the same schedule and seeds, runs are bit-for-bit
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.tasks import Effect, Sleep, Task, WaitUntil


class Simulator:
    """Event loop for simulated distributed executions."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._parked: List[Task] = []
        self._tasks: List[Task] = []
        self._events_processed = 0

    # -- scheduling ----------------------------------------------------------

    def call_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action()`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, action))
        self._seq += 1

    def call_later(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` simulated time units."""
        self.call_at(self.now + delay, action)

    # -- tasks -----------------------------------------------------------------

    def spawn(
        self, coro: Generator[Effect, Any, Any], name: str = ""
    ) -> Task:
        """Start a protocol coroutine; it runs until its first block."""
        task = Task(coro, name=name)
        self._tasks.append(task)
        self._advance(task)
        return task

    def _advance(self, task: Task) -> None:
        """Step ``task`` until it blocks (Sleep/WaitUntil) or finishes."""
        effect = task.step(None)
        while effect is not None:
            if isinstance(effect, Sleep):
                self.call_later(
                    effect.duration, lambda t=task: self._advance(t)
                )
                return
            if isinstance(effect, WaitUntil):
                if effect.predicate():
                    effect = task.step(None)
                    continue
                self._parked.append(task)
                return
            raise SimulationError(f"unknown effect yielded: {effect!r}")

    def _poll_parked(self) -> None:
        """Wake every parked task whose predicate now holds (to fixpoint).

        Waking a task may change process state or park new tasks, so the
        scan repeats until a full pass makes no progress.
        """
        progressed = True
        while progressed:
            progressed = False
            waiting = self._parked
            self._parked = []
            for task in waiting:
                effect = task.waiting_on
                assert isinstance(effect, WaitUntil)
                if effect.predicate():
                    progressed = True
                    task.waiting_on = None
                    self._advance(task)  # may re-park into self._parked
                else:
                    self._parked.append(task)

    # -- running ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When the queue runs dry before ``until``, the clock still advances
        to exactly ``until`` so follow-up scheduling stays consistent.
        """
        while self._queue:
            time = self._queue[0][0]
            if until is not None and time > until:
                break
            self.now = time
            # Process *every* event scheduled at this instant before
            # waking tasks: this models the paper's atomic receive substep
            # (a process receives the full set of available messages in
            # one step), and avoids spurious wake-ups between deliveries
            # that happen "at the same time".
            while self._queue and self._queue[0][0] == time:
                _, _, action = heapq.heappop(self._queue)
                action()
                self._events_processed += 1
                if self._events_processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; livelock suspected"
                    )
            self._poll_parked()
        if until is not None and self.now < until:
            self.now = until
            self._poll_parked()

    def run_to_completion(
        self, strict: bool = True, max_events: int = 1_000_000
    ) -> None:
        """Drain the queue; with ``strict`` raise if tasks remain blocked.

        In an asynchronous execution it is legitimate for operations to
        block forever (no correct quorum); pass ``strict=False`` there and
        inspect :meth:`blocked_tasks`.
        """
        self.run(until=None, max_events=max_events)
        if strict and self.blocked_tasks():
            names = [t.name for t in self.blocked_tasks()]
            raise DeadlockError(
                f"event queue drained with blocked tasks: {names}"
            )

    # -- introspection ----------------------------------------------------------

    def blocked_tasks(self) -> Tuple[Task, ...]:
        return tuple(self._parked)

    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed
