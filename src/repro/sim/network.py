"""Point-to-point message transport with scriptable timing.

The paper's model (Section 3.1) has reliable point-to-point channels, an
asynchronous system that may be synchronous during intervals (all
messages between correct processes delivered within ``Δ``), and — for
consensus — lossy channels with eventual synchrony after ``GST``.

This module models all of that with a single mechanism: a network holds a
*default* latency and an ordered list of :class:`Rule` overrides.  Each
rule matches messages by sender/receiver/payload/send-time and either
delays them by a fixed amount, holds them **in transit forever** (the
asynchrony device used by every indistinguishability proof), or drops
them (lossy channels before GST).  The first matching rule wins.

Held messages are recorded (:attr:`Network.in_transit`) so experiments
can assert what the adversary withheld, and can later be *released* to
model "delayed until after round K" schedules.

Two hot-path knobs keep large-``n`` runs fast:

* **Rule partitioning** — rule resolution caches, per ``(src, dst)``
  pair, the (ordered) sub-list of rules that could ever match that
  channel, so the per-send scan only evaluates time windows and payload
  predicates of relevant rules.  Rule-free networks skip matching
  entirely.  The cache is invalidated by :meth:`Network.add_rule`.
* **Trace levels** — :class:`TraceLevel` controls how much message
  history is retained.  ``FULL`` (the default) keeps the complete
  :attr:`Network.log` for verdicts, fingerprints and proof replays;
  ``METRICS`` drops delivered/dropped message records once consumed and
  keeps only counters, bounding memory on long workloads.  Held
  messages are always tracked — they must remain releasable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.sim.simulator import Simulator

ProcessId = Hashable


class TraceLevel(enum.IntEnum):
    """How much message history a network retains.

    ``METRICS``
        Counters only: delivered and dropped message records are
        discarded after the receiver consumes them.  ``Network.log``
        stays empty and :meth:`Network.messages_between` raises instead
        of silently returning partial data.  Use for big sweeps and
        benchmarks where only metrics/verdict-free results matter.
    ``FULL``
        Keep every :class:`Message` record (the historical behaviour).
        Required by proof replays, ``messages_between`` assertions and
        per-message test inspection.
    """

    METRICS = 1
    FULL = 2

    @classmethod
    def of(cls, value: Union["TraceLevel", str]) -> "TraceLevel":
        """Coerce a level or its (case-insensitive) name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                pass
        raise SimulationError(
            f"unknown trace level {value!r}; "
            f"valid: {', '.join(level.name.lower() for level in cls)}"
        )


@dataclass(slots=True)
class Message:
    """A message in flight (or delivered, or held)."""

    src: ProcessId
    dst: ProcessId
    payload: Any
    send_time: float
    deliver_time: Optional[float] = None
    held: bool = False
    dropped: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "held" if self.held else "dropped" if self.dropped
            else f"@{self.deliver_time}"
        )
        return f"Message({self.src}->{self.dst}, {self.payload!r}, {state})"


#: Sentinel outcomes for rules.
HOLD = "hold"
DROP = "drop"


@dataclass
class Rule:
    """A latency override.

    Matches when every provided criterion holds:

    * ``src`` / ``dst`` — sets of process ids (``None`` = any),
    * ``after`` / ``until`` — send-time window ``[after, until)``,
    * ``payload_predicate`` — arbitrary predicate on the payload.

    ``action`` is a float delay, :data:`HOLD` (in transit forever, until
    released), or :data:`DROP` (lost; consensus-model channels only).
    """

    action: Any
    src: Optional[FrozenSet[ProcessId]] = None
    dst: Optional[FrozenSet[ProcessId]] = None
    after: float = float("-inf")
    until: float = float("inf")
    payload_predicate: Optional[Callable[[Any], bool]] = None
    label: str = ""

    def matches(self, src: ProcessId, dst: ProcessId, payload: Any, time: float) -> bool:
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        if not (self.after <= time < self.until):
            return False
        if self.payload_predicate is not None and not self.payload_predicate(payload):
            return False
        return True


def hold_rule(
    src: Optional[Any] = None,
    dst: Optional[Any] = None,
    after: float = float("-inf"),
    until: float = float("inf"),
    payload_predicate: Optional[Callable[[Any], bool]] = None,
    label: str = "",
) -> Rule:
    """A rule keeping matching messages in transit (asynchrony device)."""
    return Rule(
        HOLD,
        src=frozenset(src) if src is not None else None,
        dst=frozenset(dst) if dst is not None else None,
        after=after,
        until=until,
        payload_predicate=payload_predicate,
        label=label,
    )


def delay_rule(
    delay: float,
    src: Optional[Any] = None,
    dst: Optional[Any] = None,
    after: float = float("-inf"),
    until: float = float("inf"),
    payload_predicate: Optional[Callable[[Any], bool]] = None,
    label: str = "",
) -> Rule:
    """A rule applying a fixed delay to matching messages."""
    return Rule(
        float(delay),
        src=frozenset(src) if src is not None else None,
        dst=frozenset(dst) if dst is not None else None,
        after=after,
        until=until,
        payload_predicate=payload_predicate,
        label=label,
    )


def drop_rule(
    src: Optional[Any] = None,
    dst: Optional[Any] = None,
    after: float = float("-inf"),
    until: float = float("inf"),
    payload_predicate: Optional[Callable[[Any], bool]] = None,
    label: str = "",
) -> Rule:
    """A rule losing matching messages (consensus lossy-channel model)."""
    return Rule(
        DROP,
        src=frozenset(src) if src is not None else None,
        dst=frozenset(dst) if dst is not None else None,
        after=after,
        until=until,
        payload_predicate=payload_predicate,
        label=label,
    )


class Network:
    """The message transport shared by all processes of an execution."""

    def __init__(
        self,
        sim: Simulator,
        delta: float = 1.0,
        rules: Optional[List[Rule]] = None,
        trace_level: Union[TraceLevel, str] = TraceLevel.FULL,
    ):
        if delta <= 0:
            raise SimulationError(f"Δ must be positive, got {delta}")
        self.sim = sim
        self.delta = delta
        self.trace_level = TraceLevel.of(trace_level)
        self._rules: List[Rule] = list(rules or [])
        self._processes: Dict[ProcessId, "object"] = {}
        self.log: List[Message] = []
        self.in_transit: List[Message] = []
        self.dropped: List[Message] = []
        # Monotone counters, maintained at every trace level — the
        # portable replacement for len(log)/len(dropped) in fingerprints
        # and metrics.
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.held_count = 0
        # Per-register traffic tally, maintained on the send path only
        # under METRICS (where the log records that would carry the
        # keys are discarded); at FULL the same numbers are derived
        # from the retained log on demand, keeping the hot path free of
        # per-message bookkeeping.  Read via :meth:`sent_by_key`.
        self._sent_by_key: Dict[Hashable, int] = {}
        # Rule resolution fast path: per-(src, dst) ordered sub-list of
        # rules that could match that channel; invalidated by add_rule.
        self._rule_index: Dict[Tuple[ProcessId, ProcessId], Tuple[Rule, ...]] = {}

    # -- wiring ---------------------------------------------------------------

    def register(self, process: Any) -> None:
        """Attach a process (anything with ``.pid`` and ``.receive``)."""
        pid = process.pid
        if pid in self._processes:
            raise SimulationError(f"duplicate process id {pid!r}")
        self._processes[pid] = process

    def process(self, pid: ProcessId) -> Any:
        return self._processes[pid]

    @property
    def process_ids(self):
        return tuple(self._processes)

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """The delivery rules, first-match-wins.

        Read-only: rule resolution caches per-``(src, dst)`` candidate
        lists, so all mutation must go through :meth:`add_rule` (which
        invalidates the cache).
        """
        return tuple(self._rules)

    def add_rule(self, rule: Rule) -> None:
        """Prepend a rule (later-added rules take precedence)."""
        self._rules.insert(0, rule)
        self._rule_index.clear()

    # -- transport --------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> Message:
        """Send ``payload`` from ``src`` to ``dst``; returns the record."""
        if dst not in self._processes:
            raise SimulationError(f"unknown destination {dst!r}")
        message = Message(src, dst, payload, send_time=self.sim.now)
        self.sent_count += 1
        if self.trace_level >= TraceLevel.FULL:
            self.log.append(message)
        else:
            key = getattr(payload, "key", None)
            if key is not None:
                self._sent_by_key[key] = self._sent_by_key.get(key, 0) + 1
        action = self._resolve(message)
        if action == HOLD:
            message.held = True
            self.held_count += 1
            self.in_transit.append(message)
            return message
        if action == DROP:
            message.dropped = True
            self.dropped_count += 1
            if self.trace_level >= TraceLevel.FULL:
                self.dropped.append(message)
            return message
        self._schedule_delivery(message, float(action))
        return message

    def _resolve(self, message: Message) -> Any:
        rules = self._rules
        if not rules:
            return self.delta
        key = (message.src, message.dst)
        candidates = self._rule_index.get(key)
        if candidates is None:
            candidates = tuple(
                rule
                for rule in rules
                if (rule.src is None or message.src in rule.src)
                and (rule.dst is None or message.dst in rule.dst)
            )
            self._rule_index[key] = candidates
        for rule in candidates:
            if rule.matches(
                message.src, message.dst, message.payload, message.send_time
            ):
                return rule.action
        return self.delta

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        message.deliver_time = self.sim.now + delay
        self.sim.call_at(
            message.deliver_time, lambda m=message: self._deliver(m)
        )

    def _deliver(self, message: Message) -> None:
        receiver = self._processes.get(message.dst)
        self.delivered_count += 1
        if receiver is None:
            return
        receiver.receive(message)

    # -- adversarial schedule control ---------------------------------------------

    def release_held(
        self,
        predicate: Optional[Callable[[Message], bool]] = None,
        delay: float = 0.0,
    ) -> int:
        """Deliver held messages matching ``predicate`` after ``delay``.

        Returns the number of messages released.  Used by proof replays
        that delay messages "until after round K" and then let them land.
        """
        released = 0
        remaining: List[Message] = []
        for message in self.in_transit:
            if predicate is None or predicate(message):
                message.held = False
                self._schedule_delivery(message, delay)
                released += 1
            else:
                remaining.append(message)
        self.in_transit = remaining
        return released

    def sent_by_key(self) -> Dict[Hashable, int]:
        """Per-register sent-message counts (payloads carrying ``key``).

        Available at *both* trace levels: derived from the retained log
        at ``FULL``, from the send-path tally at ``METRICS`` — so soak
        runs still report per-key message volume after the log records
        are gone.
        """
        if self.trace_level >= TraceLevel.FULL:
            counts: Dict[Hashable, int] = {}
            for message in self.log:
                key = getattr(message.payload, "key", None)
                if key is not None:
                    counts[key] = counts.get(key, 0) + 1
            return counts
        return dict(self._sent_by_key)

    def messages_between(
        self, src: ProcessId, dst: ProcessId
    ) -> List[Message]:
        """All logged messages from ``src`` to ``dst`` (any state).

        Requires :attr:`trace_level` ``FULL`` — under ``METRICS`` the
        log is not retained, and silently returning a partial list
        would corrupt whatever assertion the caller is making.
        """
        if self.trace_level < TraceLevel.FULL:
            raise SimulationError(
                "messages_between needs the full message log, but this "
                "network runs at TraceLevel.METRICS (delivered records "
                "are dropped once consumed); build it with "
                "trace_level=TraceLevel.FULL"
            )
        return [m for m in self.log if m.src == src and m.dst == dst]
