"""E10 — Figure 16: the Theorem 6 impossibility construction."""

from benchmarks.conftest import report
from repro.experiments.theorem6 import (
    run_experiment,
    violation_demonstrated,
)


def test_theorem6_construction(benchmark):
    outcome = benchmark.pedantic(
        run_experiment, rounds=2, iterations=1, warmup_rounds=0
    )
    report("Theorem 6 (E10)", outcome.rows())
    assert violation_demonstrated(outcome)
