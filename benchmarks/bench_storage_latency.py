"""E5 — the storage latency table: 1/2/3 rounds by quorum class."""

from benchmarks.conftest import report
from repro.experiments.storage_latency import (
    PAPER_CLAIM,
    matches_paper,
    run_experiment,
)


def test_storage_latency_table(benchmark):
    rows = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1, warmup_rounds=1
    )
    report(
        "Storage latency (E5) — paper claims "
        + ", ".join(f"class {c}: {w}/{r}" for c, (w, r) in PAPER_CLAIM.items()),
        [row.row() for row in rows],
    )
    assert matches_paper(rows)
