"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (see the README's experiment
index), asserts the paper-claimed shape, and reports timing through
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def report(title, rows):
    """Print a paper-shaped block under -s / in captured output."""
    print(f"\n=== {title} ===")
    for row in rows:
        print(f"  {row}")
