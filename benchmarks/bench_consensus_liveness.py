"""E9 — Theorem 12: termination under eventual synchrony + contention."""

from benchmarks.conftest import report
from repro.analysis.consensus_check import check_consensus
from repro.core.constructions import threshold_rqs
from repro.consensus.system import ConsensusSystem
from repro.experiments.stress import consensus_liveness


def contended_run():
    rqs = threshold_rqs(8, 3, 1, 1, 2)
    system = ConsensusSystem(rqs, n_proposers=2, n_learners=3)
    system.propose_at(0.0, "A", proposer_index=0)
    system.propose_at(0.0, "B", proposer_index=1)
    system.run(until=600.0)
    return check_consensus(
        system.operations(),
        correct_learners=[l.pid for l in system.learners],
    )


def test_consensus_liveness(benchmark):
    gst_outcome, contended = benchmark.pedantic(
        lambda: (consensus_liveness(gst=40.0), contended_run()),
        rounds=1,
        iterations=1,
    )
    report(
        "Consensus liveness (E9)",
        [gst_outcome.row(), f"contended: learned={dict(contended.learned)}"],
    )
    assert gst_outcome.terminated and gst_outcome.agreement_ok
    assert contended.ok
