"""E11 — tightness of the Example 5/6 size inequalities."""

from benchmarks.conftest import report
from repro.experiments.bounds import minimal_system_sizes, run_sweep


def test_threshold_bound_tightness(benchmark):
    result = benchmark.pedantic(
        lambda: run_sweep(max_n=7), rounds=1, iterations=1
    )
    sizes = minimal_system_sizes(4)
    report(
        "Threshold bounds (E11)",
        [result.row()]
        + [f"pbft-style minimal n for t={t}: {n} (= 3t+1)" for t, n in sizes],
    )
    assert result.tight
    assert sizes == [(1, 4), (2, 7), (3, 10), (4, 13)]
