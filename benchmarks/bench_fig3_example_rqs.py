"""E3 — Figure 3: the eight-element k=1 refined quorum system."""

from benchmarks.conftest import report
from repro.core.constructions import figure3_named_quorums, figure3_rqs


def validate():
    rqs = figure3_rqs()
    named = figure3_named_quorums()
    classes = {name: rqs.quorum_class(q) for name, q in named.items()}
    return rqs.is_valid(), classes, rqs


def test_figure3_rqs(benchmark):
    valid, classes, rqs = benchmark(validate)
    named = figure3_named_quorums()
    q, qp, q2, q1 = named["Q"], named["Q'"], named["Q2"], named["Q1"]
    report(
        "Figure 3 (E3)",
        [f"{name}: class {cls}" for name, cls in sorted(classes.items())]
        + [
            f"|Q2∩Q'| = {len(q2 & qp)} (= 2k+1)",
            f"|Q2∩Q1| = {len(q2 & q1)} (= 2k+1)",
            f"|Q2∩Q∩Q1| = {len(q2 & q & q1)} (= k+1)",
        ],
    )
    assert valid
    assert classes == {"Q": 3, "Q'": 3, "Q2": 2, "Q1": 1}
    # The caption's stated intersection cardinalities (k = 1):
    assert len(q2 & qp) == 3 and len(q2 & q1) == 3
    assert len(q2 & q & q1) == 2
