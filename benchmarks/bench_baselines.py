"""E12 — RQS algorithms versus ABD / fast-ABD / Paxos / PBFT-lite."""

from benchmarks.conftest import report
from repro.experiments.baselines import matches_paper, run_experiment


def test_baseline_comparison(benchmark):
    results = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1, warmup_rounds=1
    )
    report(
        "Baselines (E12)",
        [r.row() for r in results["storage"]]
        + [r.row() for r in results["consensus"]],
    )
    assert matches_paper(results)
