"""E8 — the consensus latency table: 2/3/4 message delays by class."""

from benchmarks.conftest import report
from repro.experiments.consensus_latency import (
    PAPER_CLAIM,
    matches_paper,
    run_experiment,
)


def test_consensus_latency_table(benchmark):
    rows = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1, warmup_rounds=1
    )
    report(
        "Consensus latency (E8) — paper claims "
        + ", ".join(f"class {c}: {d}" for c, d in PAPER_CLAIM.items()),
        [row.row() for row in rows],
    )
    assert matches_paper(rows)
