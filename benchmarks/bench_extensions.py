"""E14 — Section 5/6 extensions: regular semantics + asymmetric quorums.

Not a paper table; an ablation of the directions the paper's concluding
section names.  Shapes asserted:

* regular reads are single-round even on class-3 quorums (the whole
  price of atomicity is the write-back);
* asymmetric write/read sizing walks the AP1 boundary
  (write + read = n + k + 1), trading write load against read
  availability monotonically.
"""

from benchmarks.conftest import report
from repro.analysis.regularity import check_swmr_regularity
from repro.core.asymmetric import threshold_asymmetric, write_read_tradeoff
from repro.core.constructions import threshold_rqs
from repro.storage.regular import RegularStorageSystem
from repro.storage.system import StorageSystem


def regular_vs_atomic():
    rows = []
    for crashes in (0, 2, 3):
        rqs = threshold_rqs(8, 3, 1, 1, 2)
        crash_times = {sid: 0.0 for sid in range(1, crashes + 1)}
        atomic = StorageSystem(rqs, n_readers=1, crash_times=dict(crash_times))
        atomic.write("v")
        atomic_read = atomic.read()
        regular = RegularStorageSystem(
            rqs, n_readers=1, crash_times=dict(crash_times)
        )
        regular.write("v")
        regular_read = regular.read()
        ok = check_swmr_regularity(regular.operations()).regular
        rows.append((crashes, atomic_read.rounds, regular_read.rounds, ok))
    return rows


def test_regular_semantics_ablation(benchmark):
    rows = benchmark.pedantic(regular_vs_atomic, rounds=2, iterations=1)
    report(
        "Extensions (E14a): regular vs atomic read rounds",
        [
            f"{crashes} crashed: atomic={a}r regular={r}r "
            f"({'regular' if ok else 'VIOLATION'})"
            for crashes, a, r, ok in rows
        ],
    )
    for _, _, regular_rounds, ok in rows:
        assert regular_rounds == 1 and ok


def test_asymmetric_tradeoff(benchmark):
    rows = benchmark(lambda: write_read_tradeoff(8, 1, [0.1]))
    report(
        "Extensions (E14b): asymmetric write/read trade-off (n=8, k=1, p=0.1)",
        [
            f"write={w} read={r}: write-load={load:.3f} "
            f"read-avail={avail:.3f}"
            for w, r, load, avail in rows
        ],
    )
    loads = [load for _, _, load, _ in rows]
    avails = [avail for _, _, _, avail in rows]
    assert loads == sorted(loads) and avails == sorted(avails)
    system = threshold_asymmetric(8, 1, write_size=5, read_size=5)
    assert system.is_valid()
