"""E13 — load/availability ablation + RQS search cost."""

from benchmarks.conftest import report
from repro.experiments.metrics_ablation import search_cost, sweep


def test_metrics_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep((0.0, 0.05, 0.1, 0.2, 0.3)), rounds=1, iterations=1
    )
    search_rows = search_cost((4, 5, 6))
    report(
        "Metrics ablation (E13)",
        [row.row() for row in rows]
        + [f"search |S|={n}: {q} quorums, {q1} class-1" for n, q, q1 in search_rows],
    )
    # Shapes: class-1 quorums are bigger => more load, less availability;
    # expected best-case latency degrades monotonically with p.
    assert rows[0].load_class1 > rows[0].load_class3
    for earlier, later in zip(rows, rows[1:]):
        assert later.avail_class1 <= earlier.avail_class1
        assert later.expected_latency >= earlier.expected_latency
    assert all(q >= 1 for _, q, _ in search_rows)
