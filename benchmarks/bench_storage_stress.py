"""E6 — Theorems 7/8: atomicity + wait-freedom under adversity."""

from benchmarks.conftest import report
from repro.experiments.stress import run_storage_stress


def test_storage_stress(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_storage_stress(range(6)),
        rounds=1,
        iterations=1,
    )
    report("Storage stress (E6)", [o.row() for o in outcomes])
    assert all(o.ok for o in outcomes)
