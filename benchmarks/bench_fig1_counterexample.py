"""E1 — Figure 1: greedy 3-of-5 fast operations violate atomicity."""

from benchmarks.conftest import report
from repro.experiments.fig1 import run_experiment, run_fastabd, run_naive


def test_fig1_counterexample(benchmark):
    naive, fastabd = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1, warmup_rounds=1
    )
    report("Figure 1 (E1)", [naive.row(), fastabd.row()])
    assert not naive.report.atomic, "the greedy algorithm must violate"
    assert {v.rule for v in naive.report.violations} == {"read-inversion"}
    assert fastabd.report.atomic, "the 4-of-5 algorithm must stay atomic"
