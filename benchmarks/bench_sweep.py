"""The sweep-engine bench: a protocol × fault-plan × seed grid.

Regenerates ``BENCH_sweep.json`` through the aggregator
(:func:`repro.scenarios.write_bench_json`) so the perf trajectory of the
grid runner is recorded as a canonical, diffable artifact.  Also
asserts the engine's core guarantee: the multiprocessing backend
aggregates byte-identically to the serial one.

Run under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) or
directly (``python -m benchmarks.bench_sweep``) to just emit the JSON.
"""

from pathlib import Path

from benchmarks.conftest import report
from repro.scenarios import (
    Crash,
    FaultPlan,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    labeled,
    run_grid,
    write_bench_json,
)

#: 2 protocols × 2 fault plans × 3 seeds — the acceptance-shaped grid.
GRID = SweepSpec(
    name="sweep",
    axes={
        "protocol": ("abd", "fastabd"),
        "faults": (
            labeled("none", FaultPlan()),
            labeled("one-crash", FaultPlan(crashes=(Crash(1, 0.0),))),
        ),
        "seed": (0, 1, 2),
    },
    base=ScenarioSpec(
        protocol="abd",
        readers=1,
        workload=(Write(0.0, "v"), Read(5.0)),
    ),
)


def emit(directory=None) -> Path:
    """Run the grid and write ``BENCH_sweep.json`` via the aggregator."""
    result = run_grid(GRID)
    assert result.verdict_counts() == {"atomic": 12}
    return write_bench_json(
        result, directory or Path(__file__).resolve().parent.parent
    )


def test_sweep_grid(benchmark, tmp_path):
    path = benchmark.pedantic(
        emit, args=(tmp_path,), rounds=3, iterations=1, warmup_rounds=1
    )
    serial = run_grid(GRID)
    parallel = run_grid(GRID, executor="multiprocessing", processes=2)
    assert serial.to_json() == parallel.to_json()
    report(
        "Sweep engine (grid runner) — 2 protocols × 2 fault plans × 3 seeds",
        serial.table() + [f"emitted {path.name}"],
    )


if __name__ == "__main__":
    print(f"wrote {emit()}")
