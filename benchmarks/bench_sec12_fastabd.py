"""E2 — Section 1.2: the 4-of-5 fast-quorum crash algorithm."""

from benchmarks.conftest import report
from repro.analysis.atomicity import check_swmr_atomicity
from repro.storage.fastabd import FastAbdSystem


def scenario():
    rows = []
    system = FastAbdSystem(n_readers=2)
    write = system.write("a")
    read = system.read()
    rows.append(("all up", write.rounds, read.rounds, read.result))
    degraded = FastAbdSystem(n_readers=2, crash_times={4: 0.0, 5: 0.0})
    write2 = degraded.write("b")
    read2 = degraded.read()
    rows.append(("t=2 crashed", write2.rounds, read2.rounds, read2.result))
    atomic = (
        check_swmr_atomicity(system.trace.records).atomic
        and check_swmr_atomicity(degraded.trace.records).atomic
    )
    return rows, atomic


def test_section12_fast_abd(benchmark):
    rows, atomic = benchmark.pedantic(
        scenario, rounds=3, iterations=1, warmup_rounds=1
    )
    report(
        "Section 1.2 fast-ABD (E2)",
        [f"{name}: write={w}r read={r}r -> {v!r}" for name, w, r, v in rows],
    )
    (_, w1, r1, v1), (_, w2, r2, v2) = rows
    assert (w1, r1, v1) == (1, 1, "a"), "best case must be single-round"
    assert (w2, v2) == (2, "b") and r2 <= 2, "degraded case caps at 2 rounds"
    assert atomic
