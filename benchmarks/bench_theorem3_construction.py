"""E7 — Figure 8: the Theorem 3 impossibility construction."""

from benchmarks.conftest import report
from repro.core.properties import negate_property3
from repro.experiments.theorem3 import (
    run_experiment,
    violation_demonstrated,
)
from repro.core.constructions import threshold_rqs


def test_theorem3_construction(benchmark):
    outcome = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1, warmup_rounds=1
    )
    report("Theorem 3 (E7)", outcome.rows())
    assert violation_demonstrated(outcome)
    # Control: the valid sibling family admits no witness at all.
    control = threshold_rqs(8, 3, 1, 1, 2)
    assert (
        negate_property3(
            control.adversary, control.qc1, control.qc2, control.quorums
        )
        is None
    )
