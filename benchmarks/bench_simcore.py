"""The simulator-core bench: events/sec of the condition-indexed event loop.

Measures the wake-up refactor (``condition -> waiters`` index, PR 3)
against the legacy re-poll-every-parked-task fixpoint loop (kept as
``wakeup="scan"``), on scenario-layer workloads engineered to stress
exactly the cost the refactor removes:

* **storage** — ``n`` reader clients parked through an *asynchronous
  interval* (their ``rd_ack`` channels held in transit — the paper's
  standard adversary device) while a saturated writer churns the event
  queue over fully heterogeneous per-link latencies.  The legacy loop
  re-evaluates every parked reader's quorum predicate after every one
  of those instants — O(parked × instants) wasted polls; the indexed
  loop re-polls nobody (no reader condition is ever signalled).
* **consensus** — a contended two-proposer run (views change, suspect
  timers fire) scaled by learner count.  Consensus acceptors/learners
  are event-driven (nothing parks but the consult phase), so this row
  documents that the refactor is neutral where the old loop was never
  hot.

Both wake-up modes must process the *identical* execution — asserted on
the deterministic event count — so the ratio is a pure scheduler
measurement.  A third **micro** row tracks raw hot-path events/sec on a
50-client keyed storage mix (no adversary, nothing parked) — the
allocation cost of messages, operation records and per-op condition
containers, which the ``__slots__``/pooling work targets.  Emits
``BENCH_simcore.json`` (events/sec, wall seconds, speedups); schema +
regression checks live in ``tools/check_simcore.py`` and run in CI's
perf-smoke job.

Run directly (``python -m benchmarks.bench_simcore``) to regenerate the
artifact, or under pytest for the determinism smoke.
"""

import json
import time
from pathlib import Path

from repro.experiments import keyed_mix_spec
from repro.scenarios import (
    Delay,
    FaultPlan,
    Hold,
    Propose,
    Read,
    ScenarioSpec,
    Write,
    run,
)
from repro.sim.simulator import wakeup_mode

SCHEMA_VERSION = 2

#: Scale axis: number of reader clients (storage) / learners (consensus).
STORAGE_NS = (10, 50)
CONSENSUS_NS = (3, 50)

#: The acceptance row: the n=50 storage run must show >= 5x events/sec.
TARGET_STORAGE_N = 50
TARGET_SPEEDUP = 5.0

#: The micro row: a 50-client keyed storage mix with no adversary —
#: pure hot-path allocation + dispatch throughput.
MICRO_CLIENTS = 50
MICRO_KEYS = 16
MICRO_WRITES = 2_000
MICRO_READS = 3_000

SERVERS = range(1, 9)  # example6 is an 8-server RQS


def storage_spec(n: int, horizon: float = 600.0) -> ScenarioSpec:
    """``n`` readers blocked by asynchrony while the writer saturates."""
    reader_pids = tuple(f"reader{r + 1}" for r in range(n))
    holds = tuple(Hold(src=(s,), dst=reader_pids) for s in SERVERS)
    delays = tuple(
        Delay(1.0 + 0.07 * s, dst=(s,)) for s in SERVERS
    ) + tuple(
        Delay(1.0 + 0.11 * s, src=(s,)) for s in SERVERS
    )
    writes = int(horizon / 2.5) + 10
    workload = tuple(
        Write(0.1 * i, i + 1) for i in range(writes)
    ) + tuple(
        Read(1.0 + 0.01 * r, reader=r) for r in range(n)
    )
    return ScenarioSpec(
        protocol="rqs-storage",
        rqs="example6",
        readers=n,
        faults=FaultPlan(asynchrony=holds + delays),
        workload=workload,
        horizon=horizon,
        trace_level="metrics",
    )


def consensus_spec(n: int) -> ScenarioSpec:
    """A contended proposer pair over ``n`` learners."""
    return ScenarioSpec(
        protocol="rqs-consensus",
        rqs="example6",
        learners=n,
        workload=(
            Propose(0.0, "A", proposer=0),
            Propose(0.0, "B", proposer=1),
        ),
        horizon=300.0,
        trace_level="metrics",
    )


def micro_spec() -> ScenarioSpec:
    """The allocation-lean hot-path exhibit: 50 reader clients on a
    seeded 16-register ABD mix, fault-free, METRICS tracing — every
    event is real protocol work, so events/sec moves with the cost of
    a message/record/condition allocation and nothing else."""
    return keyed_mix_spec(
        "abd", MICRO_KEYS, writes=MICRO_WRITES, reads=MICRO_READS,
        readers=MICRO_CLIENTS, seed=5, trace_level="metrics",
    )


def micro_row(rounds: int = 3) -> dict:
    wall = float("inf")
    for _ in range(rounds):
        result = run(micro_spec())
        wall = min(wall, result.execute_seconds)
    events = result.adapter.sim.events_processed
    return {
        "workload": "storage-mix",
        "clients": MICRO_CLIENTS,
        "n_keys": MICRO_KEYS,
        "operations": result.ops_begun(),
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
    }


def run_case(spec: ScenarioSpec, wakeup: str, rounds: int = 3) -> dict:
    """Execute one spec under one wake-up mode.

    Times the event loop proper (``RunResult.execute_seconds`` — wiring
    and RQS construction excluded), best of ``rounds``: the execution
    is deterministic, so repeats only shave interpreter warm-up and
    allocator noise.
    """
    wall = float("inf")
    for _ in range(rounds):
        with wakeup_mode(wakeup):
            result = run(spec)
        wall = min(wall, result.execute_seconds)
    events = result.adapter.sim.events_processed
    return {
        "wakeup": wakeup,
        "events": events,
        "blocked": len(result.blocked),
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
    }


def collect() -> dict:
    """Run the full grid and assemble the artifact payload."""
    cases = []
    speedups = {"storage": {}, "consensus": {}}
    for workload, ns, build in (
        ("storage", STORAGE_NS, storage_spec),
        ("consensus", CONSENSUS_NS, consensus_spec),
    ):
        for n in ns:
            spec = build(n)
            indexed = run_case(spec, "indexed")
            scan = run_case(spec, "scan")
            # Same execution, different scheduler — or the ratio is
            # meaningless.
            assert indexed["events"] == scan["events"], (workload, n)
            assert indexed["blocked"] == scan["blocked"], (workload, n)
            for outcome in (indexed, scan):
                cases.append({"workload": workload, "n": n, **outcome})
            speedups[workload][str(n)] = round(
                indexed["events_per_sec"] / scan["events_per_sec"], 2
            )
    return {
        "name": "simcore",
        "schema_version": SCHEMA_VERSION,
        "target": {
            "workload": "storage",
            "n": TARGET_STORAGE_N,
            "min_speedup": TARGET_SPEEDUP,
        },
        "cases": cases,
        "speedups": speedups,
        "micro": micro_row(),
    }


def emit(directory=None) -> Path:
    """Regenerate ``BENCH_simcore.json`` (repo root by default)."""
    payload = collect()
    path = (
        Path(directory or Path(__file__).resolve().parent.parent)
        / "BENCH_simcore.json"
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# -- pytest smoke (determinism only; wall-clock checks live in CI) ----------

def test_simcore_modes_run_identical_executions():
    spec = storage_spec(10, horizon=60.0)
    indexed = run_case(spec, "indexed")
    scan = run_case(spec, "scan")
    assert indexed["events"] == scan["events"] > 0
    assert indexed["blocked"] == scan["blocked"]


def test_micro_row_is_deterministic():
    first, second = micro_row(rounds=1), micro_row(rounds=1)
    assert first["events"] == second["events"] > 0
    assert first["operations"] == second["operations"] == (
        MICRO_WRITES + MICRO_READS
    )


if __name__ == "__main__":
    path = emit()
    payload = json.loads(path.read_text())
    for case in payload["cases"]:
        print(
            f"{case['workload']:>9} n={case['n']:<3} {case['wakeup']:>7}: "
            f"{case['events']} events, {case['wall_s']}s, "
            f"{case['events_per_sec']} ev/s"
        )
    print("speedups:", json.dumps(payload["speedups"]))
    micro = payload["micro"]
    print(
        f"micro: {micro['operations']} ops / {micro['events']} events "
        f"across {micro['clients']} clients in {micro['wall_s']}s "
        f"({micro['events_per_sec']} ev/s)"
    )
    print(f"wrote {path}")
