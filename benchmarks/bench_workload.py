"""The workload bench: ops/sec of the keyed register space.

Measures the keyed-register workload engine end to end — scenario
expansion, per-writer/per-reader client tasks, keyed protocol rounds —
on an ``n_keys × clients`` grid of seeded :class:`RandomMix` cells over
the ABD baseline (the cheapest atomic protocol, so the bench tracks the
workload engine rather than RQS predicate evaluation), plus one
**soak** row: a ≥10k-operation multi-register mix at
``TraceLevel.METRICS`` whose history is then atomicity-checked with the
per-key verdict partition (the sum-of-per-key-checks fast path).

Executions are deterministic, so ``operations``/``completed``/``events``
are exact across machines; only the wall-clock figures vary.  Emits
``BENCH_workload.json``; schema/determinism/budget checks live in
``tools/check_workload.py`` and run in CI's soak-smoke job.

Run directly (``python -m benchmarks.bench_workload``) to regenerate
the artifact, or under pytest for the determinism smoke.
"""

import json
import time
from pathlib import Path

from repro.scenarios import RandomMix, ScenarioSpec, run

SCHEMA_VERSION = 1

#: The grid axes: keyspace width × reader-client count.
N_KEYS_AXIS = (1, 4, 16)
CLIENTS_AXIS = (2, 8)

#: Per-cell operation budget (writes + reads).
CELL_WRITES = 300
CELL_READS = 700

#: The soak row: >= 10k operations, 16 registers, METRICS tracing.
SOAK_WRITES = 4000
SOAK_READS = 6000
SOAK_KEYS = 16
SOAK_CLIENTS = 8


def workload_spec(
    n_keys: int,
    clients: int,
    writes: int = CELL_WRITES,
    reads: int = CELL_READS,
) -> ScenarioSpec:
    """One bench cell: a uniform multi-register mix on ABD."""
    return ScenarioSpec(
        protocol="abd",
        readers=clients,
        n_keys=n_keys,
        workload=(
            RandomMix(writes, reads, horizon=float(writes + reads)),
        ),
        seed=5,
        trace_level="metrics",
    )


def soak_spec() -> ScenarioSpec:
    return workload_spec(
        SOAK_KEYS, SOAK_CLIENTS, writes=SOAK_WRITES, reads=SOAK_READS
    )


def run_case(spec: ScenarioSpec, rounds: int = 3) -> dict:
    """Execute one spec; wall time is best-of-``rounds`` on the
    deterministic execution (repeats only shave warm-up noise)."""
    wall = float("inf")
    for _ in range(rounds):
        result = run(spec)
        wall = min(wall, result.execute_seconds)
    completed = len(result.completed)
    return {
        "operations": len(result.records),
        "completed": completed,
        "events": result.adapter.sim.events_processed,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(completed / wall, 1),
    }


def collect() -> dict:
    """Run the grid + soak and assemble the artifact payload."""
    cases = []
    for n_keys in N_KEYS_AXIS:
        for clients in CLIENTS_AXIS:
            outcome = run_case(workload_spec(n_keys, clients))
            cases.append({"n_keys": n_keys, "clients": clients, **outcome})
    soak_result = run(soak_spec())
    check_start = time.perf_counter()
    report = soak_result.atomicity
    check_seconds = time.perf_counter() - check_start
    completed = len(soak_result.completed)
    soak = {
        "n_keys": SOAK_KEYS,
        "clients": SOAK_CLIENTS,
        "operations": len(soak_result.records),
        "completed": completed,
        "events": soak_result.adapter.sim.events_processed,
        "wall_s": round(soak_result.execute_seconds, 4),
        "ops_per_sec": round(
            completed / soak_result.execute_seconds, 1
        ),
        "check_s": round(check_seconds, 4),
        "atomic": report.atomic,
        "keys_checked": len(report.by_key),
    }
    return {
        "name": "workload",
        "schema_version": SCHEMA_VERSION,
        "cases": cases,
        "soak": soak,
    }


def emit(directory=None) -> Path:
    """Regenerate ``BENCH_workload.json`` (repo root by default)."""
    payload = collect()
    path = (
        Path(directory or Path(__file__).resolve().parent.parent)
        / "BENCH_workload.json"
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# -- pytest smoke (determinism only; wall-clock checks live in CI) ----------

def test_workload_cells_are_deterministic():
    spec = workload_spec(4, 2, writes=40, reads=60)
    first, second = run_case(spec, rounds=1), run_case(spec, rounds=1)
    for field in ("operations", "completed", "events"):
        assert first[field] == second[field] > 0


def test_soak_history_is_atomic_per_key():
    spec = workload_spec(8, 4, writes=200, reads=300)
    result = run(spec)
    report = result.atomicity
    assert report.atomic
    assert len(report.by_key) == 8
    assert all(rep.atomic for rep in report.by_key.values())


if __name__ == "__main__":
    path = emit()
    payload = json.loads(path.read_text())
    for case in payload["cases"]:
        print(
            f"n_keys={case['n_keys']:<3} clients={case['clients']:<2} "
            f"{case['completed']} ops, {case['wall_s']}s, "
            f"{case['ops_per_sec']} ops/s"
        )
    soak = payload["soak"]
    print(
        f"soak: {soak['completed']} ops over {soak['n_keys']} keys in "
        f"{soak['wall_s']}s ({soak['ops_per_sec']} ops/s), "
        f"atomic={soak['atomic']} (checked {soak['keys_checked']} keys "
        f"in {soak['check_s']}s)"
    )
    print(f"wrote {path}")
