"""The workload bench: ops/sec and memory of the keyed register space.

Measures the keyed-register workload engine end to end — scenario
expansion, per-writer/per-reader client tasks, keyed protocol rounds —
on an ``n_keys × clients`` grid of seeded :class:`RandomMix` cells over
the ABD baseline (the cheapest atomic protocol, so the bench tracks the
workload engine rather than RQS predicate evaluation), plus two soak
sections:

* **soak** — the closed-loop ≥10k-operation multi-register mix at
  ``TraceLevel.METRICS``; its safety verdict now comes from the
  *windowed online checker* that runs as operations complete (records
  are streamed, never retained).
* **stream** — horizon-free open-loop soaks (``max_ops`` stopping rule,
  up to one million operations) executed in a fresh subprocess each so
  ``ru_maxrss`` isolates that run's peak memory: the exhibit is peak
  RSS staying flat (sublinear) while the op count grows 10×.

Executions are deterministic, so ``operations``/``completed``/``events``
are exact across machines; only the wall-clock/RSS figures vary.  Emits
``BENCH_workload.json``; schema/determinism/budget checks live in
``tools/check_workload.py`` and run in CI's soak-smoke job (which
regenerates the grid, the closed soak and the 100k stream row — the
million-op row is recorded from a full local run and schema/ratio
checked against the committed artifact).

Run directly (``python -m benchmarks.bench_workload``) to regenerate
the artifact (``--full-stream`` includes the million-op row), or under
pytest for the determinism smoke.
"""

import argparse
import json
import os
import resource
import subprocess
import sys
from pathlib import Path

import repro
from repro.experiments import keyed_mix_spec
from repro.scenarios import ScenarioSpec, run

SCHEMA_VERSION = 2

#: The grid axes: keyspace width × reader-client count.
N_KEYS_AXIS = (1, 4, 16)
CLIENTS_AXIS = (2, 8)

#: Per-cell operation budget (writes + reads).
CELL_WRITES = 300
CELL_READS = 700

#: The soak rows: >= 10k operations, 16 registers, METRICS tracing.
SOAK_WRITES = 4000
SOAK_READS = 6000
SOAK_KEYS = 16
SOAK_CLIENTS = 8

#: Open-loop (horizon-free) stream soak sizes.  CI regenerates the
#: smaller row; the million-op row is recorded by full local runs.
STREAM_OPS_CI = 100_000
STREAM_OPS_FULL = 1_000_000
STREAM_SEED = 5


def workload_spec(
    n_keys: int,
    clients: int,
    writes: int = CELL_WRITES,
    reads: int = CELL_READS,
) -> ScenarioSpec:
    """One bench cell: a uniform multi-register mix on ABD."""
    return keyed_mix_spec(
        "abd", n_keys, writes=writes, reads=reads, readers=clients,
        seed=5, trace_level="metrics",
    )


def soak_spec() -> ScenarioSpec:
    return workload_spec(
        SOAK_KEYS, SOAK_CLIENTS, writes=SOAK_WRITES, reads=SOAK_READS
    )


def stream_spec(max_ops: int) -> ScenarioSpec:
    """One horizon-free open-loop soak (the E15 cell shape)."""
    return keyed_mix_spec(
        "abd", SOAK_KEYS, writes=SOAK_WRITES, reads=SOAK_READS,
        readers=SOAK_CLIENTS, seed=STREAM_SEED, trace_level="metrics",
        max_ops=max_ops,
    )


def run_case(spec: ScenarioSpec, rounds: int = 3) -> dict:
    """Execute one spec; wall time is best-of-``rounds`` on the
    deterministic execution (repeats only shave warm-up noise)."""
    wall = float("inf")
    for _ in range(rounds):
        result = run(spec)
        wall = min(wall, result.execute_seconds)
    completed = result.ops_completed()
    return {
        "operations": result.ops_begun(),
        "completed": completed,
        "events": result.adapter.sim.events_processed,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(completed / wall, 1),
    }


def peak_rss_kb() -> int:
    """This process's peak resident set in KiB (ru_maxrss is KiB on
    Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return peak


def stream_probe(max_ops: int) -> dict:
    """Run one open-loop soak in *this* process and report counters,
    wall clock, the online verdict and peak RSS.  Meant to run in a
    fresh subprocess per row (see :func:`measure_stream_row`) so the
    monotone ``ru_maxrss`` measures exactly one run."""
    result = run(stream_spec(max_ops))
    online = result.online
    completed = result.ops_completed()
    wall = result.execute_seconds
    online_metrics = (
        online.as_metrics() if online is not None
        else {"atomic": False, "violations": 0, "keys_checked": 0,
              "checker_max_retained": 0}
    )
    return {
        "max_ops": max_ops,
        "n_keys": SOAK_KEYS,
        "clients": SOAK_CLIENTS,
        "operations": result.ops_begun(),
        "completed": completed,
        "events": result.adapter.sim.events_processed,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(completed / wall, 1),
        **online_metrics,
        "peak_rss_kb": peak_rss_kb(),
    }


def measure_stream_row(max_ops: int) -> dict:
    """One stream row, measured in an isolated subprocess."""
    src = str(Path(repro.__file__).resolve().parent.parent)
    root = str(Path(__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    probe = subprocess.run(
        [sys.executable, "-m", "benchmarks.bench_workload",
         "--stream-probe", str(max_ops)],
        capture_output=True, text=True, cwd=root, env=env, check=True,
    )
    return json.loads(probe.stdout)


def collect(stream_ops=(STREAM_OPS_CI,)) -> dict:
    """Run the grid + soaks and assemble the artifact payload.

    ``stream_ops`` selects which horizon-free rows to (re)measure —
    CI regenerates only the 100k row; ``--full-stream`` runs the
    million-op acceptance row too.
    """
    cases = []
    for n_keys in N_KEYS_AXIS:
        for clients in CLIENTS_AXIS:
            outcome = run_case(workload_spec(n_keys, clients))
            cases.append({"n_keys": n_keys, "clients": clients, **outcome})
    soak_result = run(soak_spec())
    # The online checker runs inline during execution, so the verdict
    # is free at read time — wall_s already includes the checking.
    online = soak_result.online
    completed = soak_result.ops_completed()
    soak = {
        "n_keys": SOAK_KEYS,
        "clients": SOAK_CLIENTS,
        "operations": soak_result.ops_begun(),
        "completed": completed,
        "events": soak_result.adapter.sim.events_processed,
        "wall_s": round(soak_result.execute_seconds, 4),
        "ops_per_sec": round(
            completed / soak_result.execute_seconds, 1
        ),
        "atomic": online is not None and online.atomic,
        "keys_checked": 0 if online is None else len(online.keys),
    }
    stream = [measure_stream_row(max_ops) for max_ops in stream_ops]
    return {
        "name": "workload",
        "schema_version": SCHEMA_VERSION,
        "cases": cases,
        "soak": soak,
        "stream": stream,
    }


def emit(directory=None, stream_ops=(STREAM_OPS_CI,)) -> Path:
    """Regenerate ``BENCH_workload.json`` (repo root by default).

    Defaults to the CI-sized stream row only, like the CLI; pass
    ``stream_ops=(STREAM_OPS_CI, STREAM_OPS_FULL)`` (the CLI's
    ``--full-stream``) to record the million-op acceptance row."""
    payload = collect(stream_ops=stream_ops)
    path = (
        Path(directory or Path(__file__).resolve().parent.parent)
        / "BENCH_workload.json"
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# -- pytest smoke (determinism only; wall-clock checks live in CI) ----------

def test_workload_cells_are_deterministic():
    spec = workload_spec(4, 2, writes=40, reads=60)
    first, second = run_case(spec, rounds=1), run_case(spec, rounds=1)
    for field in ("operations", "completed", "events"):
        assert first[field] == second[field] > 0


def test_soak_history_is_online_checked_per_key():
    spec = workload_spec(8, 4, writes=200, reads=300)
    result = run(spec)
    online = result.online
    assert online is not None and online.atomic
    assert len(online.keys) == 8
    assert online.checked_ops == 500


def test_stream_probe_is_deterministic_and_bounded():
    first = run(stream_spec(2000))
    second = run(stream_spec(2000))
    assert first.ops_begun() == second.ops_begun() == 2000
    assert (
        first.adapter.sim.events_processed
        == second.adapter.sim.events_processed
    )
    assert first.online is not None and first.online.atomic
    # Bounded retained checker state: orders of magnitude below op count.
    assert first.online.max_retained < 100


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--stream-probe", type=int, default=None, metavar="MAX_OPS",
        help="internal: run one open-loop soak in-process and print its "
             "JSON row (used via subprocess for RSS isolation)",
    )
    parser.add_argument(
        "--full-stream", action="store_true",
        help="measure the million-op stream row too (slow; used to "
             "record the committed artifact)",
    )
    args = parser.parse_args()
    if args.stream_probe is not None:
        print(json.dumps(stream_probe(args.stream_probe)))
        sys.exit(0)
    ops = (
        (STREAM_OPS_CI, STREAM_OPS_FULL) if args.full_stream
        else (STREAM_OPS_CI,)
    )
    path = emit(stream_ops=ops)
    payload = json.loads(path.read_text())
    for case in payload["cases"]:
        print(
            f"n_keys={case['n_keys']:<3} clients={case['clients']:<2} "
            f"{case['completed']} ops, {case['wall_s']}s, "
            f"{case['ops_per_sec']} ops/s"
        )
    soak = payload["soak"]
    print(
        f"soak: {soak['completed']} ops over {soak['n_keys']} keys in "
        f"{soak['wall_s']}s ({soak['ops_per_sec']} ops/s), "
        f"atomic={soak['atomic']} (online-checked {soak['keys_checked']} "
        f"keys)"
    )
    for row in payload["stream"]:
        print(
            f"stream: {row['completed']}/{row['max_ops']} ops open-loop, "
            f"{row['wall_s']}s ({row['ops_per_sec']} ops/s), "
            f"atomic={row['atomic']}, peak RSS {row['peak_rss_kb']} KiB, "
            f"checker retained<={row['checker_max_retained']}"
        )
    print(f"wrote {path}")
