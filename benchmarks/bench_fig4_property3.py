"""E4 — Figure 4: the Property-3 executions under a general adversary."""

from benchmarks.conftest import report
from repro.experiments.fig4 import matches_paper, run_experiment


def test_figure4_executions(benchmark):
    outcome = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1, warmup_rounds=1
    )
    report("Figure 4 (E4)", outcome.rows())
    assert matches_paper(outcome)
