#!/usr/bin/env python3
"""Byzantine consensus scenario: state-machine replication front-end.

Models the paper's consensus framework (proposers / acceptors /
learners) under three regimes, each a declarative scenario spec:

  1. best case — one correct proposer, synchrony: learners learn in
     2 message delays through a class-1 quorum;
  2. contention — two proposers race in the initial view; the election
     module converges on a single decision;
  3. a Byzantine proposer equivocates; the view change recovers and
     agreement holds.

Run:  python examples/byzantine_consensus.py
"""

from repro.scenarios import (
    PROPOSER,
    ByzantineRole,
    FaultPlan,
    Propose,
    ScenarioSpec,
    run,
)


def regime_best_case() -> None:
    print("1. Best case (single proposer, full synchrony):")
    result = run(ScenarioSpec(
        protocol="rqs-consensus",
        rqs="example6",
        workload=(Propose(0.0, ("put", "x", 1)),),
        horizon=60.0,
    ))
    for learner, delay in sorted(result.learner_delays.items()):
        print(f"   {learner}: learned in {delay} message delays")


def regime_contention() -> None:
    print("\n2. Contention (two proposers race):")
    result = run(ScenarioSpec(
        protocol="rqs-consensus",
        rqs="example6",
        workload=(
            Propose(0.0, "cmd-A", proposer=0),
            Propose(0.0, "cmd-B", proposer=1),
        ),
        horizon=600.0,
    ))
    print(f"   learned: {result.learned}")
    report = result.consensus
    print(f"   agreement: {'OK' if report.agreement_ok else 'VIOLATED'}, "
          f"validity: {'OK' if report.validity_ok else 'VIOLATED'}")
    assert report.ok


def regime_byzantine_proposer() -> None:
    print("\n3. Byzantine proposer equivocates (A to half, B to half):")
    result = run(ScenarioSpec(
        protocol="rqs-consensus",
        rqs="example6",
        faults=FaultPlan(
            byzantine=(ByzantineRole(0, "equivocating", role=PROPOSER),),
        ),
        workload=(
            Propose(0.0, "EVIL", proposer=0),
            Propose(1.0, "GOOD", proposer=1),
        ),
        horizon=600.0,
    ))
    learned = result.learned
    values = set(learned.values())
    print(f"   learned: {learned}")
    print(f"   single decision despite equivocation: {len(values) == 1}")
    assert len(values) == 1 and len(learned) == 3


def main() -> None:
    regime_best_case()
    regime_contention()
    regime_byzantine_proposer()


if __name__ == "__main__":
    main()
