#!/usr/bin/env python3
"""Byzantine consensus scenario: state-machine replication front-end.

Models the paper's consensus framework (proposers / acceptors /
learners) under three regimes:

  1. best case — one correct proposer, synchrony: learners learn in
     2 message delays through a class-1 quorum;
  2. contention — two proposers race in the initial view; the election
     module converges on a single decision;
  3. a Byzantine proposer equivocates; the view change recovers and
     agreement holds.

Run:  python examples/byzantine_consensus.py
"""

from repro.analysis.consensus_check import check_consensus
from repro.core.constructions import threshold_rqs
from repro.consensus.proposer import EquivocatingProposer
from repro.consensus.system import ConsensusSystem


def regime_best_case(rqs) -> None:
    print("1. Best case (single proposer, full synchrony):")
    system = ConsensusSystem(rqs, n_proposers=2, n_learners=3)
    delays = system.run_best_case(("put", "x", 1))
    for learner, delay in sorted(delays.items()):
        print(f"   {learner}: learned in {delay} message delays")


def regime_contention(rqs) -> None:
    print("\n2. Contention (two proposers race):")
    system = ConsensusSystem(rqs, n_proposers=2, n_learners=3)
    system.propose_at(0.0, "cmd-A", proposer_index=0)
    system.propose_at(0.0, "cmd-B", proposer_index=1)
    system.run(until=600.0)
    learned = system.learned_values()
    print(f"   learned: {learned}")
    report = check_consensus(
        system.operations(),
        correct_learners=[l.pid for l in system.learners],
    )
    print(f"   agreement: {'OK' if report.agreement_ok else 'VIOLATED'}, "
          f"validity: {'OK' if report.validity_ok else 'VIOLATED'}")
    assert report.ok


def regime_byzantine_proposer(rqs) -> None:
    print("\n3. Byzantine proposer equivocates (A to half, B to half):")
    system = ConsensusSystem(
        rqs,
        n_proposers=2,
        n_learners=3,
        proposer_factories={0: EquivocatingProposer},
    )
    system.propose_at(0.0, "EVIL", proposer_index=0)
    system.propose_at(1.0, "GOOD", proposer_index=1)
    system.run(until=600.0)
    learned = system.learned_values()
    values = set(learned.values())
    print(f"   learned: {learned}")
    print(f"   single decision despite equivocation: {len(values) == 1}")
    assert len(values) == 1 and len(learned) == 3


def main() -> None:
    rqs = threshold_rqs(n=8, t=3, k=1, q=1, r=2)
    regime_best_case(rqs)
    regime_contention(rqs)
    regime_byzantine_proposer(rqs)


if __name__ == "__main__":
    main()
