#!/usr/bin/env python3
"""Parameter sweep: a whole grid of executions from one literal.

Declares a protocol × fault-plan × seed grid over the storage
algorithms, runs it on the serial backend *and* the multiprocessing
backend, shows that both aggregate to byte-identical JSON, and prints
the degradation staircase that falls out of the verdict/latency table —
the sweeps-layer version of the paper's "graceful degradation" story.

Run:  python examples/parameter_sweep.py
"""

from repro.scenarios import (
    Crash,
    FaultPlan,
    Read,
    ScenarioSpec,
    SweepSpec,
    Write,
    crashes,
    labeled,
    run_grid,
)

#: Crash schedules leaving the Example 6 RQS a class-1/2/3 best quorum.
FAULT_LADDER = (
    labeled("all-up", FaultPlan()),
    labeled("class-2", FaultPlan(
        crashes=crashes({1: 0.0, 2: 0.0}))),
    labeled("class-3", FaultPlan(
        crashes=crashes({1: 0.0, 2: 0.0, 3: 0.0}))),
)

GRID = SweepSpec(
    name="degradation-staircase",
    axes={
        "protocol": ("rqs-storage",),
        "faults": FAULT_LADDER,
        "seed": (0, 1, 2),
    },
    base=ScenarioSpec(
        protocol="rqs-storage",
        rqs="example6",
        readers=1,
        workload=(Write(0.0, "v"), Read(10.0)),
    ),
)


def main() -> None:
    # 1. Same grid, two backends — the aggregated artifact is identical.
    serial = run_grid(GRID)
    parallel = run_grid(GRID, executor="multiprocessing", processes=2)
    assert serial.to_json() == parallel.to_json()
    print(f"{len(serial)} cells, serial == multiprocessing byte-for-byte")

    # 2. Every cell is atomic whatever the fault plan did.
    assert serial.verdict_counts() == {"atomic": 9}
    print(f"verdicts: {serial.verdict_counts()}")

    # 3. The staircase: worst completed-operation rounds per fault rung.
    print("\nwrite rounds by available quorum class:")
    for rung in ("all-up", "class-2", "class-3"):
        stats = serial.summarize("rounds.max", faults=rung)
        print(f"  {rung:<8} -> {stats['max']:.0f} round(s) worst case")

    # 4. The whole study exports as one diffable table.
    print(f"\nCSV header: {serial.to_csv().splitlines()[0]}")


if __name__ == "__main__":
    main()
