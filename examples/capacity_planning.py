#!/usr/bin/env python3
"""Capacity planning with the quorum algebra and the strategy engine.

Builds the 2×3 grid quorum system from the expression ``a*b*c + d*e*f``
with heterogeneous node capacities (one fast row, one slow row),
computes the *load-optimal* access strategy — an exact-rational LP over
quorum distributions — across the read-fraction spectrum, prints the
predicted peak load and sustainable capacity next to the uniform
strategy's, and then runs one rate-limited scenario to confirm the
planning-level prediction against a measured execution.

Run:  python examples/capacity_planning.py
"""

from fractions import Fraction

from repro.core.algebra import Node, QuorumSystem
from repro.scenarios import RandomMix, ScenarioSpec, run

# A 2×3 grid: row ``a b c`` is fast hardware (capacity 10), row
# ``d e f`` is slow (2 reads or 1 write per time unit).  A quorum is a
# full row; the expression's dual supplies the write quorums (one node
# per row — every column).
fast = [Node(name, read_capacity=10, write_capacity=10) for name in "abc"]
slow = [Node(name, read_capacity=2, write_capacity=1) for name in "def"]
a, b, c = fast
d, e, f = slow

GRID = a * b * c + d * e * f


def main() -> None:
    system = QuorumSystem(reads=GRID)
    print(f"expression : {GRID}")
    print(f"read quorums : {sorted(map(sorted, system.read_quorums()))}")
    print(f"write quorums: {sorted(map(sorted, system.write_quorums()))}")

    # 1. The planning table: optimal vs uniform across read fractions.
    print("\nread-fraction sweep (load = peak per-node utilisation,"
          " capacity = 1/load ops per time unit):")
    print(f"  {'fr':>4}  {'optimal load':>12} {'capacity':>8}"
          f"  {'uniform load':>12} {'capacity':>8}")
    for percent in (10, 30, 50, 70, 90):
        fr = Fraction(percent, 100)
        opt = system.strategy(read_fraction=fr)
        uni = system.uniform(read_fraction=fr)
        print(f"  {float(fr):>4.1f}  {str(opt.load):>12}"
              f" {float(opt.capacity):>8.2f}"
              f"  {str(uni.load):>12} {float(uni.capacity):>8.2f}")

    # 2. The winning distribution at the balanced point: the optimal
    # strategy concentrates work on the fast row instead of spreading
    # it evenly across both.
    half = system.strategy(read_fraction=Fraction(1, 2))
    print("\noptimal read distribution at fr=1/2:")
    for quorum, weight in half.read_weights:
        print(f"  {''.join(sorted(quorum))}: {weight}")

    # 3. Measure: run the lifted system with rate-limited servers under
    # both strategies and compare completed operations.  The registered
    # "grid-hetero" scenario system is exactly this expression.
    print("\nmeasured (rate-limited servers, 90 time units):")
    measured = {}
    for strategy in ("uniform", "optimal"):
        result = run(ScenarioSpec(
            protocol="rqs-storage",
            rqs="grid-hetero",
            readers=8,
            n_writers=4,
            n_keys=4,
            workload=(RandomMix(120, 120, horizon=60.0),),
            horizon=90.0,
            quorum_strategy=strategy,
            params={"capacity_model": True},
        ))
        assert result.atomicity.atomic
        measured[strategy] = result.ops_completed()
        print(f"  {strategy:<8} completed {measured[strategy]:>4} ops"
              f" (atomic)")
    assert measured["optimal"] > measured["uniform"]
    print("\nload-optimal beats uniform, as the LP predicted")


if __name__ == "__main__":
    main()
