#!/usr/bin/env python3
"""Quickstart: refined quorum systems in five minutes.

Builds an RQS, validates its properties, then runs the Byzantine atomic
storage and the consensus algorithm over it through the unified scenario
API — one declarative spec per execution — and shows the best-case
latencies the paper promises (1 round / 2 message delays with a class-1
quorum).

Run:  python examples/quickstart.py
"""

from repro.core.constructions import threshold_rqs
from repro.scenarios import (
    FaultPlan,
    Propose,
    Read,
    ScenarioSpec,
    Write,
    crashes,
    run,
)


def main() -> None:
    # 1. A refined quorum system: 8 servers, tolerating t=3 unresponsive
    #    servers of which k=1 may be Byzantine.  Quorums miss at most 3
    #    servers; class-2 quorums miss at most 2; class-1 at most 1.
    #    (The scenario layer also knows this instance as rqs="example6".)
    rqs = threshold_rqs(n=8, t=3, k=1, q=1, r=2)
    print("A refined quorum system (Example 6 of the paper):")
    print(f"  |S|={len(rqs.ground_set)}  |RQS|={len(rqs.quorums)}  "
          f"|QC2|={len(rqs.qc2)}  |QC1|={len(rqs.qc1)}")
    print(f"  Properties 1-3 valid: {rqs.is_valid()}")

    # 2. Atomic storage over the RQS: single-round reads and writes when
    #    a class-1 quorum of correct servers responds.
    print("\nAtomic storage (Figures 5-7):")
    result = run(ScenarioSpec(
        protocol="rqs-storage",
        rqs=rqs,
        readers=2,
        workload=(Write(0.0, "hello rqs"), Read(5.0)),
    ))
    write, read = result.write(), result.read()
    print(f"  write('hello rqs') -> {write.rounds} round(s)")
    print(f"  read() -> {read.result!r} in {read.rounds} round(s)")
    print(f"  atomic: {result.atomicity.atomic}")

    # 3. Crash two servers: the system degrades gracefully to 2 rounds.
    degraded = run(ScenarioSpec(
        protocol="rqs-storage",
        rqs=rqs,
        readers=1,
        faults=FaultPlan(crashes=crashes({1: 0.0, 2: 0.0})),
        workload=(Write(0.0, "degraded"),),
    ))
    print(f"  after 2 crashes: write -> {degraded.write().rounds} round(s)")

    # 4. Consensus over the same RQS: learners learn in 2 message delays
    #    with a class-1 quorum (3 with class 2, 4 with class 3).
    print("\nConsensus (Figures 9-15):")
    consensus = run(ScenarioSpec(
        protocol="rqs-consensus",
        rqs=rqs,
        proposers=2,
        learners=3,
        workload=(Propose(0.0, "decided-value"),),
        horizon=60.0,
    ))
    for learner, delay in sorted(consensus.learner_delays.items()):
        print(f"  {learner} learned {consensus.learned[learner]!r} "
              f"in {delay} message delays")


if __name__ == "__main__":
    main()
