#!/usr/bin/env python3
"""Non-IID failures: refined quorums under a general adversary structure.

The paper's key modelling generalization is replacing "any k servers may
be Byzantine" with an arbitrary subset-closed *adversary structure* —
capturing correlated failures (same rack, same firmware, same operator).

This example models a six-server deployment where:
  * s1 and s2 share a rack (can fail together),
  * s3 and s4 run the same firmware (can be compromised together),
  * s2 and s4 share an operator (can be misconfigured together),

i.e. exactly the Example 7 adversary of the paper.  It then:
  1. validates the published RQS for that structure,
  2. *discovers* an RQS automatically with the search tooling,
  3. runs the storage algorithm through a correlated-failure scenario
     (a declarative spec over the RQS name "example7").

Run:  python examples/general_adversary.py
"""

from repro.core import describe
from repro.core.constructions import (
    example7_adversary,
    example7_named_quorums,
)
from repro.core.search import search_rqs
from repro.scenarios import (
    FaultPlan,
    Read,
    ScenarioSpec,
    Write,
    crashes,
    resolve_rqs,
    run,
)


def main() -> None:
    adversary = example7_adversary()
    print("Adversary structure (maximal corruptible sets):")
    for maximal in adversary.maximal_sets():
        print(f"  {sorted(maximal)}")

    print("\nThe paper's RQS for this structure (Example 7):")
    rqs = resolve_rqs("example7")
    print(describe(rqs))

    named = example7_named_quorums()
    q2, q2p = named["Q2"], named["Q'2"]
    print("\nWhy Property 3 is subtle here (the Figure 4 story):")
    b12 = frozenset({"s1", "s2"})
    b34 = frozenset({"s3", "s4"})
    print(f"  P3a(Q2, Q'2, {{s1,s2}}) = {rqs.p3a(q2, q2p, b12)} "
          f"(Q2∩Q'2 minus the rack is the firmware pair — corruptible)")
    print(f"  P3b(Q2, Q'2, {{s3,s4}}) = {rqs.p3b(q2, q2p, b34)} "
          f"(the class-1 quorum still pins a witness: s2)")

    print("\nAutomatically discovered RQS for the same adversary:")
    found = search_rqs(adversary, min_quorum_size=4)
    print(f"  {len(found.quorums)} quorums, {len(found.qc1)} class-1, "
          f"valid: {found.is_valid()}")

    print("\nCorrelated-failure run: s1 (rack) and s3 (firmware) die,")
    print("leaving exactly the class-1 quorum Q1 = {s2,s4,s5,s6} alive.")
    result = run(ScenarioSpec(
        protocol="rqs-storage",
        rqs="example7",
        readers=1,
        faults=FaultPlan(crashes=crashes({"s1": 0.0, "s3": 0.0})),
        workload=(Write(0.0, "survives-rack-loss"), Read(5.0)),
    ))
    write, read = result.write(), result.read()
    print(f"  write -> {write.rounds} round(s); "
          f"read -> {read.result!r} in {read.rounds} round(s)")
    assert read.result == "survives-rack-loss"


if __name__ == "__main__":
    main()
