#!/usr/bin/env python3
"""Graceful degradation: the three-latency staircase, live.

The paper's central performance claim is that optimally-resilient
implementations have exactly three best-case latencies, selected by the
class of the quorum that happens to be available:

  storage:    1 round   -> 2 rounds  -> 3 rounds
  consensus:  2 delays  -> 3 delays  -> 4 delays

This example walks one deployment down the staircase — every step is the
same scenario spec with a different crash schedule — and prints the
measured latency at each step next to the paper's claim.

Run:  python examples/graceful_degradation.py
"""

from repro.scenarios import (
    Crash,
    FaultPlan,
    Hold,
    Propose,
    Read,
    ScenarioSpec,
    Write,
    crashes,
    run,
)


def storage_staircase() -> None:
    print("Storage staircase (n=8, t=3, k=1, q=1, r=2):")
    for n_crashes, claim in ((1, 1), (2, 2), (3, 3)):
        result = run(ScenarioSpec(
            protocol="rqs-storage",
            rqs="example6",
            readers=1,
            faults=FaultPlan(
                crashes=crashes(
                    {sid: 0.0 for sid in range(1, n_crashes + 1)}
                )
            ),
            workload=(Write(0.0, f"v{n_crashes}"),),
        ))
        record = result.write()
        cls = ("class-1", "class-2", "class-3")[claim - 1]
        print(f"  {n_crashes} crashed ({cls} quorum left): "
              f"write took {record.rounds} round(s), paper claims {claim}")
        assert record.rounds == claim

    print("\nRead staircase (after a 1-round write that missed server 1):")
    for extra, claim in ((0, 1), (2, 2), (3, 3)):
        result = run(ScenarioSpec(
            protocol="rqs-storage",
            rqs="example6",
            readers=1,
            faults=FaultPlan(
                # the write completes at 2Δ; crash before the read starts.
                crashes=tuple(
                    Crash(sid, 5.0) for sid in range(2, 2 + extra)
                ),
                asynchrony=(Hold(src=("writer",), dst=(1,)),),
            ),
            workload=(Write(0.0, "v"), Read(5.0)),
        ))
        record = result.read()
        print(f"  {extra + 1} servers unavailable to the reader: "
              f"read took {record.rounds} round(s), paper claims {claim}")
        assert record.rounds == claim


def consensus_staircase() -> None:
    print("\nConsensus staircase (same RQS):")
    for n_crashes, claim in ((0, 2.0), (2, 3.0), (3, 4.0)):
        result = run(ScenarioSpec(
            protocol="rqs-consensus",
            rqs="example6",
            faults=FaultPlan(
                crashes=crashes(
                    {sid: 0.0 for sid in range(1, n_crashes + 1)}
                )
            ),
            workload=(Propose(0.0, "v"),),
            horizon=60.0,
        ))
        worst = result.worst_learner_delay
        print(f"  {n_crashes} crashed: learners learn in {worst} "
              f"message delays, paper claims {claim}")
        assert worst == claim


def main() -> None:
    storage_staircase()
    consensus_staircase()
    print("\nEvery step matches the paper's (m, QCm)-fast claims.")


if __name__ == "__main__":
    main()
