#!/usr/bin/env python3
"""Graceful degradation: the three-latency staircase, live.

The paper's central performance claim is that optimally-resilient
implementations have exactly three best-case latencies, selected by the
class of the quorum that happens to be available:

  storage:    1 round   -> 2 rounds  -> 3 rounds
  consensus:  2 delays  -> 3 delays  -> 4 delays

This example walks one deployment down the staircase, crashing servers
between steps, and prints the measured latency at each step next to the
paper's claim.

Run:  python examples/graceful_degradation.py
"""

from repro.core.constructions import threshold_rqs
from repro.sim.network import hold_rule
from repro.consensus.system import ConsensusSystem
from repro.storage.system import StorageSystem


def storage_staircase() -> None:
    print("Storage staircase (n=8, t=3, k=1, q=1, r=2):")
    for crashes, claim in ((1, 1), (2, 2), (3, 3)):
        rqs = threshold_rqs(8, 3, 1, 1, 2)
        system = StorageSystem(
            rqs,
            n_readers=1,
            crash_times={sid: 0.0 for sid in range(1, crashes + 1)},
        )
        record = system.write(f"v{crashes}")
        cls = ("class-1", "class-2", "class-3")[claim - 1]
        print(f"  {crashes} crashed ({cls} quorum left): "
              f"write took {record.rounds} round(s), paper claims {claim}")
        assert record.rounds == claim

    print("\nRead staircase (after a 1-round write that missed server 1):")
    for extra, claim in ((0, 1), (2, 2), (3, 3)):
        rqs = threshold_rqs(8, 3, 1, 1, 2)
        system = StorageSystem(
            rqs,
            n_readers=1,
            rules=[hold_rule(src={"writer"}, dst={1})],
        )
        system.write("v")
        for sid in range(2, 2 + extra):
            system.servers[sid].crash()
        record = system.read()
        print(f"  {extra + 1} servers unavailable to the reader: "
              f"read took {record.rounds} round(s), paper claims {claim}")
        assert record.rounds == claim


def consensus_staircase() -> None:
    print("\nConsensus staircase (same RQS):")
    for crashes, claim in ((0, 2.0), (2, 3.0), (3, 4.0)):
        rqs = threshold_rqs(8, 3, 1, 1, 2)
        system = ConsensusSystem(
            rqs,
            crash_times={sid: 0.0 for sid in range(1, crashes + 1)},
        )
        delays = system.run_best_case("v")
        worst = max(delays.values())
        print(f"  {crashes} crashed: learners learn in {worst} "
              f"message delays, paper claims {claim}")
        assert worst == claim


def main() -> None:
    storage_staircase()
    consensus_staircase()
    print("\nEvery step matches the paper's (m, QCm)-fast claims.")


if __name__ == "__main__":
    main()
