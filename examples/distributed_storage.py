#!/usr/bin/env python3
"""Distributed storage scenario: a replicated commodity-disk array.

Models the paper's motivating application (FAB-style distributed storage
built from fault-prone commodity servers): one writer streams versioned
records while several readers poll, servers crash and one misbehaves —
the array must stay atomic and fast.

The whole deployment — disks, fault schedule, workload — is one
declarative :class:`~repro.scenarios.ScenarioSpec`.

Demonstrates:
  * single-round reads/writes while the array is healthy,
  * graceful degradation as servers fail,
  * a fabricating Byzantine server being ignored,
  * the atomicity checker validating the full history.

Run:  python examples/distributed_storage.py
"""

from repro.scenarios import (
    ByzantineRole,
    Crash,
    FaultPlan,
    RandomMix,
    Read,
    ScenarioSpec,
    Write,
    run,
)


def main() -> None:
    # An 8-disk array tolerating 3 unresponsive disks, one of which may
    # be arbitrarily faulty (firmware bug, bit rot, compromise).
    spec = ScenarioSpec(
        protocol="rqs-storage",
        rqs="example6",
        readers=3,
        faults=FaultPlan(
            # disks 1 and 2 die mid-run.
            crashes=(Crash(1, 30.0), Crash(2, 55.0)),
            # disk 8 lies about its contents: it advertises a bogus
            # record with an absurdly high version number on every read.
            byzantine=(
                ByzantineRole(8, "fabricating",
                              params={"ts": 10_000, "value": "CORRUPT"}),
            ),
        ),
        workload=(
            Write(0.0, ("block-0", "genesis")),
            Read(5.0, reader=0),
            # 6 more versions streamed while disks fail at t=30 and t=55,
            # with 12 polling reads spread over the readers.
            RandomMix(writes=6, reads=12, horizon=72.0, start=8.0),
            # one final read after everything settled.
            Read(100.0, reader=1),
        ),
        seed=42,
    )
    result = run(spec)

    print("Healthy array:")
    record, read = result.write(0), result.read(0)
    print(f"  write -> {record.rounds} round(s)")
    print(f"  read  -> {read.result!r} in {read.rounds} round(s)")

    print("\nStreaming 6 more versions while disks fail at t=30 and t=55:")
    writes = result.latency("write")
    reads = result.latency("read")
    print(f"  {writes.row()}")
    print(f"  {reads.row()}")

    report = result.atomicity
    print(f"\nAtomicity check over {len(result.records)} operations: "
          f"{'PASS' if report.atomic else 'FAIL'}")
    for violation in report.violations:
        print(f"  {violation}")
    assert report.atomic

    final = max(
        (r for r in result.reads if r.complete),
        key=lambda r: r.completed_at,
    )
    print(f"Final read: {final.result!r} "
          f"(the fabricated 'CORRUPT' record never surfaced)")
    assert final.result != "CORRUPT"
    assert all(r.result != "CORRUPT" for r in result.reads if r.complete)


if __name__ == "__main__":
    main()
