#!/usr/bin/env python3
"""Distributed storage scenario: a replicated commodity-disk array.

Models the paper's motivating application (FAB-style distributed storage
built from fault-prone commodity servers): one writer streams versioned
records while several readers poll, servers crash and one misbehaves —
the array must stay atomic and fast.

Demonstrates:
  * single-round reads/writes while the array is healthy,
  * graceful degradation (2 then 3 rounds) as servers fail,
  * a fabricating Byzantine server being ignored,
  * the atomicity checker validating the full history.

Run:  python examples/distributed_storage.py
"""

from repro.analysis.atomicity import check_swmr_atomicity
from repro.analysis.latency import summarize_rounds
from repro.core.constructions import threshold_rqs
from repro.storage.server import FabricatingServer
from repro.storage.system import StorageSystem


def main() -> None:
    # An 8-disk array tolerating 3 unresponsive disks, one of which may
    # be arbitrarily faulty (firmware bug, bit rot, compromise).
    rqs = threshold_rqs(n=8, t=3, k=1, q=1, r=2)
    system = StorageSystem(
        rqs,
        n_readers=3,
        # disk 8 lies about its contents: it advertises a bogus record
        # with an absurdly high version number on every read.
        server_factories={
            8: lambda pid: FabricatingServer(pid, 10_000, "CORRUPT")
        },
        # disks 1 and 2 die mid-run.
        crash_times={1: 30.0, 2: 55.0},
    )

    print("Healthy array:")
    record = system.write(("block-0", "genesis"))
    print(f"  write -> {record.rounds} round(s)")
    read = system.read(0)
    print(f"  read  -> {read.result!r} in {read.rounds} round(s)")

    print("\nStreaming 6 more versions while disks fail at t=30 and t=55:")
    system.random_workload(n_writes=6, n_reads=12, horizon=80.0, seed=42)
    system.run_to_completion()

    writes = summarize_rounds(system.operations(), "write")
    reads = summarize_rounds(system.operations(), "read")
    print(f"  {writes.row()}")
    print(f"  {reads.row()}")

    report = check_swmr_atomicity(system.operations())
    print(f"\nAtomicity check over {len(system.operations())} operations: "
          f"{'PASS' if report.atomic else 'FAIL'}")
    for violation in report.violations:
        print(f"  {violation}")
    assert report.atomic

    final = system.read(1)
    print(f"Final read: {final.result!r} "
          f"(the fabricated 'CORRUPT' record never surfaced)")
    assert final.result != "CORRUPT"


if __name__ == "__main__":
    main()
